"""ARRIVE-F throughput experiment (paper section II).

Naive vs relocation-enabled scheduling of a mixed job batch on a
heterogeneous DCC+Vayu farm; the paper's cited result is "up to 33%"
improvement in average job waiting times.
"""


def test_arrivef(run_and_report):
    """Regenerate the ARRIVE-F wait-time comparison."""
    result = run_and_report("arrivef")
    assert result.experiment_id == "arrivef"
    best = result.comparisons[0][1]
    assert best > 0.0, "relocation should improve waits on some workload"
