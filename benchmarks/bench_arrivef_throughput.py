"""ARRIVE-F throughput experiment plus engine-throughput microbenchmarks.

The first test regenerates the paper's section-II result (naive vs
relocation-enabled scheduling of a mixed job batch on a heterogeneous
DCC+Vayu farm; cited as "up to 33%" improvement in average waiting
times).

The remaining tests measure the simulation engine itself — events
dispatched per second on the :mod:`repro.perf.enginebench` workloads
(timeout-heavy, point-to-point ping-pong, the fast-forwarded
compute/allreduce cadence, and the replay-enabled NPB steady loop) — so
the sim-layer fast paths have dedicated before/after numbers.  Results are written to
``BENCH_engine.json`` in the working directory at session end; the same
rows come from ``python -m repro bench engine``.
"""

from __future__ import annotations

import pytest

from repro.perf.enginebench import (
    WORKLOADS,
    collective_event_counts,
    replay_event_counts,
    run_workload,
    write_rows,
)

#: Accumulates {workload: {events, seconds, events_per_sec, ...}} rows.
_ENGINE_ROWS: dict[str, dict[str, float]] = {}


def test_arrivef(run_and_report):
    """Regenerate the ARRIVE-F wait-time comparison."""
    result = run_and_report("arrivef")
    assert result.experiment_id == "arrivef"
    best = result.comparisons[0][1]
    assert best > 0.0, "relocation should improve waits on some workload"


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_engine_throughput(workload):
    """Dispatch rate of the engine on one archetypal workload."""
    row = run_workload(workload)  # raises if too small to measure
    if workload == "replay":
        row.update(replay_event_counts())
        # The headline acceptance figure: fast-forwarding a steady
        # 16-iteration NPB loop must eliminate >= 3x the engine events.
        assert row["events_ratio"] >= 3.0, (
            f"replay eliminated only {row['events_ratio']:.2f}x events"
        )
        assert row["replayed_iters"] > 0, "replay never engaged"
    elif workload == "collectives":
        row.update(collective_event_counts())
        # The collective fast-forward's acceptance figure: the analytic
        # path must eliminate >= 3x the engine events of the per-op path.
        assert row["events_ratio"] >= 3.0, (
            f"fastcollect eliminated only {row['events_ratio']:.2f}x events"
        )
        assert row["fast_ops"] > 0, "fastcollect never engaged"
    _ENGINE_ROWS[workload] = row


def teardown_module(_module) -> None:
    """Write ``BENCH_engine.json`` once all throughput rows exist."""
    if not _ENGINE_ROWS:
        return
    write_rows(_ENGINE_ROWS, "BENCH_engine.json")
    rates = ", ".join(
        f"{k}={v['events_per_sec']:,.0f} ev/s" for k, v in sorted(_ENGINE_ROWS.items())
    )
    print(f"\n[engine-throughput] {rates} -> BENCH_engine.json")
