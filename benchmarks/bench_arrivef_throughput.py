"""ARRIVE-F throughput experiment plus engine-throughput microbenchmarks.

The first test regenerates the paper's section-II result (naive vs
relocation-enabled scheduling of a mixed job batch on a heterogeneous
DCC+Vayu farm; cited as "up to 33%" improvement in average waiting
times).

The remaining tests measure the simulation engine itself — events
dispatched per second on three archetypal workloads (timeout-heavy,
point-to-point ping-pong, allreduce collectives) — so the sim-layer fast
path has a dedicated before/after number.  Results are written to
``BENCH_engine.json`` in the working directory at session end.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

#: Accumulates {workload: {events, seconds, events_per_sec}} rows.
_ENGINE_ROWS: dict[str, dict[str, float]] = {}


def test_arrivef(run_and_report):
    """Regenerate the ARRIVE-F wait-time comparison."""
    result = run_and_report("arrivef")
    assert result.experiment_id == "arrivef"
    best = result.comparisons[0][1]
    assert best > 0.0, "relocation should improve waits on some workload"


# ---------------------------------------------------------------------------
# Engine throughput workloads
# ---------------------------------------------------------------------------
# Each returns a finished Engine; the harness divides ``engine.dispatched``
# by wall time.  Sizes are tuned so each workload runs a few hundred
# milliseconds — long enough to swamp setup cost, short enough for CI.


def _workload_timeouts() -> "object":
    """Many processes doing nothing but numeric-yield sleeps."""
    from repro.sim import Engine

    def sleeper(reps: int, delay: float):
        for _ in range(reps):
            yield delay

    engine = Engine(seed=7)
    for i in range(200):
        engine.process(sleeper(500, 1.0 + i * 1e-3), name=f"s{i}")
    engine.run()
    return engine


def _workload_p2p() -> "object":
    """Two ranks ping-ponging small messages."""
    from repro.platforms import get_platform
    from repro.smpi.world import MpiWorld

    def pingpong(comm, reps: int, nbytes: int):
        peer = 1 - comm.rank
        for _ in range(reps):
            if comm.rank == 0:
                yield from comm.send(peer, nbytes)
                yield from comm.recv(peer)
            else:
                yield from comm.recv(peer)
                yield from comm.send(peer, nbytes)

    world = MpiWorld(get_platform("vayu"), 2, seed=7)
    world.launch(pingpong, 2000, 1024)
    return world.engine


def _workload_collectives() -> "object":
    """Eight ranks in an allreduce loop."""
    from repro.platforms import get_platform
    from repro.smpi.world import MpiWorld

    def loop(comm, reps: int, nbytes: int):
        for _ in range(reps):
            yield from comm.allreduce(nbytes, value=1.0)

    world = MpiWorld(get_platform("vayu"), 8, seed=7)
    world.launch(loop, 4000, 4096)
    return world.engine


#: workload -> (runner, minimum events for a meaningful rate).  A
#: collective dispatches only a couple of engine events per operation
#: (its cost is analytic), so its floor is lower than the p2p/timeout
#: workloads where every hop is an event.
_WORKLOADS = {
    "timeouts": (_workload_timeouts, 10_000),
    "p2p": (_workload_p2p, 10_000),
    "collectives": (_workload_collectives, 4_000),
}


@pytest.mark.parametrize("workload", sorted(_WORKLOADS))
def test_engine_throughput(workload):
    """Dispatch rate of the engine on one archetypal workload."""
    fn, min_events = _WORKLOADS[workload]
    t0 = time.perf_counter()  # lint-ok: DET001 host-side throughput timer
    engine = fn()
    seconds = time.perf_counter() - t0  # lint-ok: DET001 host-side throughput timer
    events = engine.dispatched
    assert events > min_events, f"{workload} workload too small to measure"
    _ENGINE_ROWS[workload] = {
        "events": events,
        "seconds": seconds,
        "events_per_sec": events / seconds if seconds else float("inf"),
    }


def teardown_module(_module) -> None:
    """Write ``BENCH_engine.json`` once all throughput rows exist."""
    if not _ENGINE_ROWS:
        return
    out = pathlib.Path("BENCH_engine.json")
    out.write_text(json.dumps(_ENGINE_ROWS, indent=2, sort_keys=True) + "\n")
    rates = ", ".join(
        f"{k}={v['events_per_sec']:,.0f} ev/s" for k, v in sorted(_ENGINE_ROWS.items())
    )
    print(f"\n[engine-throughput] {rates} -> {out}")
