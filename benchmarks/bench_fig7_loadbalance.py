"""Fig 7 — UM per-process time breakdown.

ATM_STEP compute/comm(user/system) bars per rank on Vayu and DCC.
"""

def test_fig7(run_and_report):
    """Regenerate fig7 and record paper-vs-measured deltas."""
    result = run_and_report("fig7")
    assert result.experiment_id == "fig7"
