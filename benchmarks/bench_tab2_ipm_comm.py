"""Table II — IPM communication percentages.

Percentage of wall time in MPI for CG, FT and IS vs process count.
"""

def test_tab2(run_and_report):
    """Regenerate tab2 and record paper-vs-measured deltas."""
    result = run_and_report("tab2")
    assert result.experiment_id == "tab2"
