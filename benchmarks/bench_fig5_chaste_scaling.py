"""Fig 5 — Chaste total and KSp speedups.

Vayu vs DCC scaling of the cardiac simulation and its KSp solver section.
"""

def test_fig5(run_and_report):
    """Regenerate fig5 and record paper-vs-measured deltas."""
    result = run_and_report("fig5")
    assert result.experiment_id == "fig5"
