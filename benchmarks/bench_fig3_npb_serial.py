"""Fig 3 — NPB class B single-process times.

Absolute DCC wall times (the calibration anchors) plus EC2/Vayu
normalised to DCC.
"""

def test_fig3(run_and_report):
    """Regenerate fig3 and record paper-vs-measured deltas."""
    result = run_and_report("fig3")
    assert result.experiment_id == "fig3"
