"""Fig 1 — OSU MPI bandwidth on DCC/EC2/Vayu.

Windowed streaming-bandwidth sweep; checks the ~190/~560 MB/s Ethernet peaks
and Vayu's order-of-magnitude InfiniBand margin.
"""

def test_fig1(run_and_report):
    """Regenerate fig1 and record paper-vs-measured deltas."""
    result = run_and_report("fig1")
    assert result.experiment_id == "fig1"
