"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one mechanism of the platform model and measures
the effect on the paper observation that mechanism exists to reproduce:

* NUMA masking (DCC)  -> CG's single-node collapse (Fig 4 / Table II);
* HyperThreading (EC2) -> the 16-core performance drop (Fig 4);
* Ethernet incast congestion (DCC) -> the multi-node FT/IS penalty;
* ESX vSwitch latency tail (DCC)  -> the fluctuating OSU latency (Fig 2).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.npb import get_benchmark
from repro.osu import osu_latency
from repro.platforms import DCC, EC2
from repro.virt.hypervisor import NoHypervisor


def _cg8_dcc_comm(masked: bool) -> float:
    spec = DCC if masked else dataclasses.replace(
        DCC, hypervisor_factory=NoHypervisor
    )
    return get_benchmark("cg").run(spec, 8, seed=1).comm_percent


def test_ablation_numa_masking(benchmark, report_sink):
    """Without NUMA masking, DCC's CG@8 communication share collapses."""

    def run():
        return _cg8_dcc_comm(True), _cg8_dcc_comm(False)

    with_mask, without_mask = benchmark.pedantic(run, iterations=1, rounds=1)
    report_sink.append(
        f"=== ablation: NUMA masking ===\nCG@8 DCC %comm: masked "
        f"{with_mask:.1f} vs unmasked {without_mask:.1f}"
    )
    assert with_mask > 2.0 * without_mask


def test_ablation_hyperthreading(benchmark, report_sink):
    """With HT hidden (8 slots/node), EP@16 spans nodes and scales on."""

    def run():
        ht = get_benchmark("ep").run(EC2, 16, seed=1).projected_time
        cpu = dataclasses.replace(EC2.node.cpu, smt_enabled=False)
        node = dataclasses.replace(EC2.node, cpu=cpu)
        no_ht_spec = dataclasses.replace(EC2, node=node)
        no_ht = get_benchmark("ep").run(no_ht_spec, 16, seed=1).projected_time
        return ht, no_ht

    ht, no_ht = benchmark.pedantic(run, iterations=1, rounds=1)
    report_sink.append(
        f"=== ablation: HyperThreading ===\nEP.B.16 on EC2: HT-subscribed "
        f"{ht:.1f}s vs 8-per-node {no_ht:.1f}s"
    )
    assert ht > 1.3 * no_ht  # HT oversubscription costs ~1.6x per rank


def test_ablation_congestion(benchmark, report_sink):
    """Without incast congestion the FT@16 DCC penalty shrinks."""

    def run():
        base = get_benchmark("ft").run(DCC, 16, seed=1).projected_time
        fabric = dataclasses.replace(DCC.fabric, congestion_factor=1.0)
        spec = dataclasses.replace(DCC, fabric=fabric)
        no_congestion = get_benchmark("ft").run(spec, 16, seed=1).projected_time
        return base, no_congestion

    base, no_cong = benchmark.pedantic(run, iterations=1, rounds=1)
    report_sink.append(
        f"=== ablation: Ethernet congestion ===\nFT.B.16 on DCC: "
        f"{base:.1f}s vs congestion-free {no_cong:.1f}s"
    )
    assert base > no_cong


def test_ablation_vswitch_jitter(benchmark, report_sink):
    """Without the ESX vSwitch, DCC's small-message latency stabilises."""

    def run():
        sizes = [2**k for k in range(0, 17)]
        with_hv = osu_latency(DCC, sizes, iterations=30, seed=1)
        bare = dataclasses.replace(DCC, hypervisor_factory=NoHypervisor)
        without_hv = osu_latency(bare, sizes, iterations=30, seed=1)

        def spread(curve):
            vals = np.array(list(curve.values()))
            return float((vals.max() - vals.min()) / vals.mean())

        return spread(with_hv), spread(without_hv), with_hv[1], without_hv[1]

    s_hv, s_bare, lat_hv, lat_bare = benchmark.pedantic(run, iterations=1, rounds=1)
    report_sink.append(
        "=== ablation: ESX vSwitch ===\n"
        f"DCC 1B latency: {lat_hv * 1e6:.1f}us vs bare {lat_bare * 1e6:.1f}us; "
        f"sub-128KB relative spread {s_hv:.2f} vs {s_bare:.2f}"
    )
    assert lat_hv > 1.5 * lat_bare
