"""Table I — experimental platform inventory.

Renders the three platform specifications exactly as Table I lays them out.
"""

def test_tab1(run_and_report):
    """Regenerate tab1 and record paper-vs-measured deltas."""
    result = run_and_report("tab1")
    assert result.experiment_id == "tab1"
