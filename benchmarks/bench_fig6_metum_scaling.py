"""Fig 6 — MetUM warmed-time speedups.

Vayu, DCC, EC2 (min-nodes) and EC2-4 (four-node) series.
"""

def test_fig6(run_and_report):
    """Regenerate fig6 and record paper-vs-measured deltas."""
    result = run_and_report("fig6")
    assert result.experiment_id == "fig6"
