"""Fig 4 — NPB class B speedup curves.

Speedup panels per benchmark across the three platforms (quick mode
runs a representative subset; pass quick=False for all eight).
"""

def test_fig4(run_and_report):
    """Regenerate fig4 and record paper-vs-measured deltas."""
    result = run_and_report("fig4")
    assert result.experiment_id == "fig4"
