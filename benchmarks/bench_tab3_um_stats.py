"""Table III — UM statistics at 32 cores.

time / rcomp / rcomm / %comm / %imbal / I/O per platform, Vayu-relative.
"""

def test_tab3(run_and_report):
    """Regenerate tab3 and record paper-vs-measured deltas."""
    result = run_and_report("tab3")
    assert result.experiment_id == "tab3"
