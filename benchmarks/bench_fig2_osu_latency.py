"""Fig 2 — OSU MPI latency on DCC/EC2/Vayu.

Ping-pong latency sweep; DCC's vSwitch jitter produces the paper's
fluctuating sub-512KB curve.
"""

def test_fig2(run_and_report):
    """Regenerate fig2 and record paper-vs-measured deltas."""
    result = run_and_report("fig2")
    assert result.experiment_id == "fig2"
