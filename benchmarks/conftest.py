"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artefact via the experiment
registry and prints the paper-vs-measured rendering once, so a
``pytest benchmarks/ --benchmark-only`` run doubles as the full
reproduction report.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def report_sink():
    """Collects experiment renderings; printed at session end."""
    outputs: list[str] = []
    yield outputs
    if outputs:
        print("\n\n" + "\n\n".join(outputs))


@pytest.fixture()
def run_and_report(benchmark, report_sink):
    """Benchmark one experiment and stash its rendering."""

    def _run(experiment_id: str, quick: bool = True):
        from repro.harness import run_experiment

        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"quick": quick, "seed": 1},
            iterations=1,
            rounds=1,
        )
        report_sink.append(result.render())
        return result

    return _run
