#!/usr/bin/env python3
"""Quickstart: write an MPI program, run it on three platforms.

The public API in three steps:

1. write an SPMD program as a generator over the :class:`Comm` handle;
2. run it with :func:`repro.run_program` on a calibrated platform model;
3. read the IPM-style report.

Run:  python examples/quickstart.py
"""

from repro import DCC, EC2, VAYU, run_program
from repro.smpi import Placement


def stencil_program(comm, iterations=50):
    """A toy bulk-synchronous stencil: compute, halo swap, reduce."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    residual = None
    with comm.region("solve"):
        for _ in range(iterations):
            # 20 Mflop of stencil updates streaming 16 MB per sweep.
            yield from comm.compute(flops=2e7, mem_bytes=1.6e7, working_set=1.6e7)
            if comm.size > 1:
                yield from comm.sendrecv(right, 64 * 1024, left)
            residual = yield from comm.allreduce(8, value=1.0 / comm.size)
    return residual


def main():
    print(f"{'platform':>10} {'wall(s)':>9} {'comm%':>7} {'imbal%':>7}  residual")
    for spec in (VAYU, DCC, EC2):
        result = run_program(
            spec, 16, stencil_program,
            placement=Placement(strategy="block"),
            seed=42,
        )
        report = result.report("solve")
        print(
            f"{spec.name:>10} {result.wall_time:9.3f} {report.comm_percent:7.1f} "
            f"{report.imbalance_percent:7.1f}  {result.rank_results[0]:.3f}"
        )
    print("\nSame program, same seed — the platform model is the only variable.")


if __name__ == "__main__":
    main()
