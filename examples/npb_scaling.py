#!/usr/bin/env python3
"""NPB scaling study — regenerate a panel of the paper's Fig 4.

Runs one NPB benchmark (default CG, class B) across process counts on
all three platforms, prints the speedup table, the Table-II-style
communication percentages, and an ASCII speedup plot.

Run:  python examples/npb_scaling.py [bench] [class]
      python examples/npb_scaling.py ft B
"""

import sys

from repro import DCC, EC2, VAYU
from repro.core import ScalingStudy
from repro.harness.figures import render_series_table, render_speedup_plot
from repro.npb import get_benchmark


def main():
    bench = sys.argv[1] if len(sys.argv) > 1 else "cg"
    klass = sys.argv[2] if len(sys.argv) > 2 else "B"
    counts = [p for p in (1, 2, 4, 8, 16, 32, 64)
              if get_benchmark(bench).valid_nprocs(p)]
    if not counts:
        counts = [1, 4, 16, 36, 64]  # BT/SP square counts

    curves = {}
    comm = {}
    for spec in (DCC, EC2, VAYU):
        study = ScalingStudy.npb(bench, platform=spec, klass=klass)
        curve = study.run(counts, seed=7)
        curves[spec.name] = curve.speedups(base_procs=counts[0])
        comm[spec.name] = curve.comm_percents()

    rows = {p: [curves[n][p] for n in ("DCC", "EC2", "Vayu")] for p in counts}
    print(render_series_table(
        f"{bench.upper()}.{klass} speedup (base np={counts[0]})",
        ["DCC", "EC2", "Vayu"], rows, "{:.2f}", row_label="np",
    ))
    print()
    comm_rows = {p: [comm[n][p] for n in ("DCC", "EC2", "Vayu")] for p in counts}
    print(render_series_table(
        "steady-state %comm (Table II style)",
        ["DCC", "EC2", "Vayu"], comm_rows, "{:.1f}", row_label="np",
    ))
    print()
    print(render_speedup_plot(f"{bench.upper()}.{klass} speedup", curves))


if __name__ == "__main__":
    main()
