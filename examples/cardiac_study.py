#!/usr/bin/env python3
"""Cardiac-model study — Chaste on Vayu vs DCC (paper Fig 5).

Reproduces the Chaste analysis: total and KSp-section speedups on the
two platforms the paper could run it on, plus the section-level IPM
findings (KSp communication is entirely 4-byte all-reduces; DCC spends
~half its time communicating at 32 cores).

Run:  python examples/cardiac_study.py
"""

from repro.apps.chaste import ChasteBenchmark
from repro.apps.chaste.model import KSP_REGION
from repro.harness.figures import render_speedup_plot
from repro.platforms import DCC, VAYU


def main():
    bench = ChasteBenchmark(sim_steps=3)
    series = {}
    results32 = {}
    for spec in (VAYU, DCC):
        totals, ksps = {}, {}
        for p in (8, 16, 32, 48, 64):
            r = bench.run(spec, p, seed=7)
            totals[p] = r.total_time
            ksps[p] = r.ksp_time
            if p == 32:
                results32[spec.name] = r
        series[f"{spec.name} total"] = {p: totals[8] / t for p, t in totals.items()}
        series[f"{spec.name} KSp"] = {p: ksps[8] / t for p, t in ksps.items()}
        print(f"{spec.name:>5}: t8 total = {totals[8]:7.1f} s, KSp = {ksps[8]:7.1f} s")

    print()
    print(render_speedup_plot("Chaste speedup over 8 cores (Fig 5)", series))
    print()

    for name, r in results32.items():
        ksp = r.monitor[0].regions[KSP_REGION]
        sizes = sorted(ksp.call_sizes("MPI_Allreduce"))
        print(
            f"{name} @32: step comm {r.comm_percent():.0f}%, KSp comm "
            f"{r.comm_percent(KSP_REGION):.0f}%, KSp all-reduce sizes: {sizes} bytes"
        )
    print("\n(The paper: KSp communication consists entirely of 4-byte "
          "all-reduce operations; 48% comm on DCC vs 11% on Vayu.)")


if __name__ == "__main__":
    main()
