#!/usr/bin/env python3
"""Climate-model study — MetUM across the platforms (Fig 6 + Table III).

Reproduces the paper's UM analysis: the four speedup series, the 32-core
statistics table with Vayu-relative computation/communication ratios,
and a per-process Fig-7 breakdown showing DCC's system-time-dominated
communication.

Run:  python examples/climate_study.py
"""

from repro.apps.metum import MetumBenchmark
from repro.core.analysis import render_stats_table, table3_stats
from repro.harness.figures import render_speedup_plot
from repro.ipm.report import render_fig7_ascii
from repro.platforms import DCC, EC2, VAYU


def main():
    bench = MetumBenchmark(sim_steps=3)
    variants = [("Vayu", VAYU, None), ("DCC", DCC, None),
                ("EC2", EC2, None), ("EC2-4", EC2, 4)]

    # --- Fig 6: warmed-time speedups over 8 cores ---------------------------
    series = {}
    for label, spec, nodes in variants:
        times = {}
        for p in (8, 16, 32, 64):
            nn = nodes if nodes else (max(2, -(-p // 16)) if label == "EC2" else None)
            times[p] = bench.run(spec, p, num_nodes=nn, seed=7).warmed_time
        series[label] = {p: times[8] / t for p, t in times.items()}
        print(f"{label:>6}: t8 = {times[8]:7.1f} s")
    print()
    print(render_speedup_plot("UM warmed-time speedup over 8 cores", series))
    print()

    # --- Table III: 32-core statistics --------------------------------------
    at32 = {}
    for label, spec, nodes in variants:
        nn = nodes if nodes else (2 if label == "EC2" else None)
        at32[label] = bench.run(spec, 32, num_nodes=nn, seed=7)
    print("UM statistics at 32 cores (Table III):")
    print(render_stats_table(table3_stats(at32, reference_platform="Vayu")))
    print()

    # --- Fig 7: per-process breakdown ---------------------------------------
    for label in ("Vayu", "DCC"):
        print(f"--- {label} ATM_STEP breakdown (Fig 7) ---")
        print(render_fig7_ascii(at32[label].monitor, "ATM_STEP", width=44))
        print()


if __name__ == "__main__":
    main()
