#!/usr/bin/env python3
"""Cloudbursting demo — the paper's operational motivation, end to end.

A contended ANUPBS-style facility accumulates a queue; the cloudburst
policy profiles the queued jobs (ARRIVE-F style), offloads the
cloud-suitable ones to a StarCluster on simulated EC2 (spot instances
when the market is cheap), and reports queue relief and dollar cost.

Run:  python examples/cloudburst_demo.py
"""

import numpy as np

from repro.cloud import ClusterTemplate, Ec2Api, StarCluster
from repro.cloud.ec2api import CC1_4XLARGE
from repro.sched import AnupbsScheduler, CloudBurstPolicy, Job, JobProfile


def synthetic_workload(n_jobs: int, seed: int) -> list[Job]:
    rng = np.random.default_rng(seed)
    jobs, t = [], 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(150.0))
        jobs.append(Job(
            job_id=i,
            user=f"user{i % 7}",
            cores=int(rng.choice([8, 16, 32, 64])),
            runtime_estimate=float(rng.uniform(1800, 10800)),
            submit_time=t,
            priority=int(rng.random() < 0.08),
            profile=JobProfile(
                comm_fraction=float(rng.uniform(0.02, 0.5)),
                msg_small_fraction=float(rng.uniform(0.05, 0.95)),
                mem_boundedness=float(rng.uniform(0.1, 0.9)),
            ),
        ))
    return jobs


def main():
    api = Ec2Api(seed=11)
    policy = CloudBurstPolicy(wait_threshold=1800.0, spot_market=api.spot_market)

    sched = AnupbsScheduler(total_cores=256)
    jobs = synthetic_workload(60, seed=3)
    for job in jobs:
        sched.submit(job)

    queued = [j for j in jobs if j.state.value == "queued"]
    decisions = policy.apply(sched, queued)
    bursted = [d for d in decisions if d.burst]
    print(f"queue at submission end: {len(queued)} jobs; bursting {len(bursted)}")
    for d in bursted[:5]:
        kind = "spot" if d.use_spot else "on-demand"
        print(f"  job {d.job_id}: {d.reason} ({kind}, ~${d.predicted_cost_usd:.0f})")

    # Launch one shared burst cluster sized for the largest bursted job.
    if bursted:
        biggest = max(
            (j for j in jobs if j.job_id in {d.job_id for d in bursted}),
            key=lambda j: j.cores,
        )
        nodes = policy.nodes_for(biggest)
        sc = StarCluster(api)
        cluster = sc.start(ClusterTemplate("burst", size=nodes,
                                           instance_type=CC1_4XLARGE))
        print(f"\nStarCluster 'burst': {cluster.size}x {CC1_4XLARGE.name} up in "
              f"{cluster.launch_seconds:.0f} s")
        sc.terminate("burst")

    sched.run_until_drained()
    print(f"\nlocal facility after burst: {sched.metrics()}")
    print(f"cloud bill so far: ${api.billed_usd():.2f}")

    # Counterfactual: same workload without bursting.
    sched2 = AnupbsScheduler(total_cores=256)
    for job in synthetic_workload(60, seed=3):
        sched2.submit(job)
    sched2.run_until_drained()
    print(f"without bursting:          {sched2.metrics()}")


if __name__ == "__main__":
    main()
