#!/usr/bin/env python3
"""The paper's packaging workflow: HPC environment -> VM image -> cloud.

Builds MetUM-like and Chaste-like applications inside a Vayu-style
``modules`` environment, packages their dependency closure into a VM
image (the rsync workflow of paper section IV), and deploys to the
private cloud and EC2 — demonstrating both the success path and the
SSE4 incident the paper reports ("the use of non-ubiquitous features
such as SSE4 ... can be avoided by the selection of suitable compilation
switches").

Run:  python examples/package_hpc_env.py
"""

from repro.cloud import BuildRecipe, HpcEnvironment, ModulesEnvironment, PackagingError
from repro.cloud.modulesenv import ModuleDef
from repro.cloud.packaging import deploy_check
from repro.platforms import DCC, EC2, VAYU


def build_vayu_environment() -> HpcEnvironment:
    mods = ModulesEnvironment()
    mods.install(ModuleDef("intel-fc", "11.1.072", size_bytes=900 << 20))
    mods.install(ModuleDef("intel-cc", "11.1.046", size_bytes=900 << 20))
    mods.install(ModuleDef("openmpi", "1.4.3", requires=("intel-fc",)))
    mods.install(ModuleDef("netcdf", "4.1.1", requires=("intel-fc",)))
    mods.install(ModuleDef("petsc", "3.1", requires=("intel-cc", "openmpi")))
    mods.install(ModuleDef("boost", "1.44", requires=("intel-cc",)))
    return HpcEnvironment(VAYU, mods)


def main():
    env = build_vayu_environment()
    print("modules available on the facility:", ", ".join(env.modules.avail()))

    # First attempt: aggressive flags, as the paper's users initially did.
    env.build(BuildRecipe("metum", "7.8", "intel-fc",
                          compiler_flags=("-O3", "-xHost"),
                          module_deps=("openmpi", "netcdf")))
    image = env.package("hpc-stack-v1", ["metum"])
    print(f"\npackaged {image.name}: {len(image.packages)} packages, "
          f"{image.size_bytes / 2**30:.1f} GiB, rsync ~{env.rsync_seconds(image):.0f} s")

    for target in (DCC, EC2):
        try:
            deploy_check(image, target)
            print(f"  deploy to {target.name}: OK")
        except PackagingError as exc:
            print(f"  deploy to {target.name}: REFUSED — {exc}")

    # Second attempt: conservative switches, as the paper recommends.
    env2 = build_vayu_environment()
    env2.build(BuildRecipe("metum", "7.8", "intel-fc",
                           compiler_flags=("-O3", "-msse3"),
                           module_deps=("openmpi", "netcdf")))
    env2.build(BuildRecipe("chaste", "2.1", "intel-cc",
                           compiler_flags=("-O2", "-msse3"),
                           module_deps=("petsc", "boost")))
    image2 = env2.package("hpc-stack-v2", ["metum", "chaste"])
    print(f"\nrepackaged {image2.name} with -msse3:")
    for target in (DCC, EC2):
        deploy_check(image2, target)
        print(f"  deploy to {target.name}: OK")
    print("\nSame binaries now run on the HPC system, the private cloud "
          "and EC2 — the paper's portability goal.")


if __name__ == "__main__":
    main()
