"""Simulated MPI runtime.

Programs are written against :class:`~repro.smpi.comm.Comm` — an API
deliberately close to mpi4py's lowercase object interface — as Python
generator functions, and executed in *virtual time* on a
:class:`~repro.platforms.base.Platform` model by
:class:`~repro.smpi.world.MpiWorld`::

    def program(comm):
        yield from comm.compute(flops=1e9, mem_bytes=4e8)
        total = yield from comm.allreduce(8, value=comm.rank)
        return total

    result = run_program(VAYU, 8, program)
    print(result.wall_time, result.report().comm_percent)

Two things distinguish this from a functional MPI:

* every operation *costs* virtual time, derived from the platform's
  fabric, hypervisor and CPU models (point-to-point messages are
  simulated individually with eager/rendezvous protocols and NIC
  serialisation; collectives use topology-aware algorithm cost models);
* payloads are optional — a skeleton benchmark passes only byte counts,
  while validation-mode programs pass real values/arrays and get real
  reductions and data movement.
"""

from repro.smpi.comm import ANY_SOURCE, ANY_TAG, Comm
from repro.smpi.mapping import Placement, place_ranks
from repro.smpi.message import Message, Request
from repro.smpi.world import MpiWorld, RunResult, run_program

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "Message",
    "MpiWorld",
    "Placement",
    "Request",
    "RunResult",
    "place_ranks",
    "run_program",
]
