"""Rank-to-node placement policies.

Placement is a first-order performance factor in the paper:

* NPB runs fill nodes in *block* order, so a 16-process job on DCC's
  8-core nodes spans two nodes (the GigE cliff at 16 in Fig 4) and on
  EC2's 16-slot nodes stays on one node but hits HyperThreading;
* the UM EC2 runs distribute processes "evenly across the nodes"
  (*cyclic* over a chosen node count), and the EC2-4 series fixes four
  nodes to avoid oversubscription.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.platforms.base import Platform


@dataclasses.dataclass(frozen=True, slots=True)
class Placement:
    """A placement policy.

    Parameters
    ----------
    strategy:
        ``"block"`` fills each node to its limit before the next;
        ``"cyclic"`` deals ranks round-robin over the selected nodes.
    num_nodes:
        Use exactly this many nodes (ranks spread over them); ``None``
        lets block placement use as few nodes as possible and makes
        cyclic placement use all nodes of the platform.
    ranks_per_node:
        Cap on ranks per node; ``None`` means the node's schedulable
        slot count.
    """

    strategy: str = "block"
    num_nodes: int | None = None
    ranks_per_node: int | None = None

    def __post_init__(self) -> None:
        if self.strategy not in ("block", "cyclic"):
            raise ConfigError(f"unknown placement strategy {self.strategy!r}")
        if self.num_nodes is not None and self.num_nodes < 1:
            raise ConfigError(f"num_nodes must be >= 1: {self.num_nodes}")
        if self.ranks_per_node is not None and self.ranks_per_node < 1:
            raise ConfigError(f"ranks_per_node must be >= 1: {self.ranks_per_node}")


def place_ranks(platform: Platform, nprocs: int, placement: Placement | None = None) -> None:
    """Assign ``nprocs`` ranks to the platform's nodes and sockets.

    Fills each :class:`~repro.hardware.node.Node`'s resident-rank census,
    registers ranks with the topology, and resolves the per-rank compute
    models (:meth:`Platform.finalize_placement`).
    """
    placement = placement or Placement()
    if nprocs < 1:
        raise ConfigError(f"nprocs must be >= 1, got {nprocs}")
    spec = platform.spec
    slots = spec.node.cpu.schedulable_slots
    per_node_cap = placement.ranks_per_node or slots

    if placement.strategy == "block":
        nodes_needed = -(-nprocs // per_node_cap)  # ceil
        use_nodes = placement.num_nodes or nodes_needed
    else:
        use_nodes = placement.num_nodes or spec.num_nodes

    if use_nodes > spec.num_nodes:
        raise ConfigError(
            f"placement needs {use_nodes} nodes but {spec.name} has only "
            f"{spec.num_nodes}"
        )
    if use_nodes * per_node_cap < nprocs:
        raise ConfigError(
            f"cannot place {nprocs} ranks on {use_nodes} node(s) with "
            f"{per_node_cap} ranks/node"
        )

    nodes = platform.nodes[:use_nodes]
    if placement.strategy == "block":
        node_idx = 0
        for rank in range(nprocs):
            while nodes[node_idx].nranks >= per_node_cap:
                node_idx += 1
            node = nodes[node_idx]
            node.place_rank(rank)
            platform.topology.register(rank, node)
    else:  # cyclic
        for rank in range(nprocs):
            node = nodes[rank % use_nodes]
            node.place_rank(rank)
            platform.topology.register(rank, node)

    platform.finalize_placement()


def ranks_per_node_used(platform: Platform) -> int:
    """Largest resident-rank count over the platform's occupied nodes."""
    return max((node.nranks for node in platform.nodes if node.nranks), default=0)
