"""The rank-facing communicator API.

A :class:`Comm` is what simulated programs receive as their first
argument.  All blocking operations are generators — call them with
``yield from``::

    def program(comm):
        with comm.region("solve"):
            yield from comm.compute(flops=1e8, mem_bytes=8e6)
            s = yield from comm.allreduce(8, value=comm.rank)
        return s

Naming follows mpi4py's lowercase convenience methods (``send``,
``recv``, ``bcast``, ``allreduce``, ...), with explicit byte counts
instead of buffers: this simulator prices messages, it does not move
memory — though every collective and point-to-point call *can* carry a
real payload, which the small-class NPB validation kernels use to do
genuine distributed arithmetic.
"""

from __future__ import annotations

import contextlib
import typing as _t

from repro.errors import MpiError
from repro.smpi.collectives import algorithms as _alg
from repro.smpi.message import Message, Request

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.world import MpiWorld

ANY_SOURCE = -1
ANY_TAG = -1


def _sum_op(a: _t.Any, b: _t.Any) -> _t.Any:
    return a + b


class Comm:
    """A communicator handle bound to one rank.

    ``group`` lists the *world* ranks of the members; ``rank`` is this
    member's index within the group (its rank in this communicator).
    """

    def __init__(self, world: "MpiWorld", group: list[int], rank: int, comm_id: int) -> None:
        self.world = world
        self.group = group
        self.rank = rank
        self.comm_id = comm_id
        self._seq = 0
        #: Free-form per-rank scratch space for program state (e.g. the
        #: sub-communicators a benchmark builds during setup).  Each rank
        #: has its own Comm instance, so this is rank-private.
        self.cache: dict[str, _t.Any] = {}

    # -- identity ------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self.group)

    @property
    def world_rank(self) -> int:
        """This member's rank in ``MPI_COMM_WORLD``."""
        return self.group[self.rank]

    @property
    def engine(self):
        return self.world.engine

    def wtime(self) -> float:
        """Current virtual time (``MPI_Wtime``)."""
        return self.world.engine.now

    def _bump_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _world_rank_of(self, local: int) -> int:
        if not (0 <= local < self.size):
            raise MpiError(f"rank {local} out of range for size {self.size}")
        return self.group[local]

    # -- local time consumption -------------------------------------------------
    def compute(
        self,
        flops: float = 0.0,
        mem_bytes: float = 0.0,
        working_set: float = 0.0,
        access: str = "stream",
    ) -> _t.Generator:
        """Burn virtual CPU time per the platform's roofline model.

        ``working_set`` (bytes actually touched per sweep) enables the
        cache-residency model: traffic for working sets near the rank's
        cache share is served from cache rather than DRAM.  ``access``
        ("stream" or "random") selects how exposed the burst is to
        NUMA-masking stalls on virtualised platforms.
        """
        world = self.world
        fc = world.fastcollect
        if fc is not None and fc.active:
            duration = fc.compute_seconds(
                self.world_rank, flops, mem_bytes, working_set, access
            )
        else:
            duration = world.platform.compute_seconds(
                self.world_rank, flops, mem_bytes, working_set, access
            )
        t0 = self.engine.now
        if duration > 0:
            yield duration
        world.monitor[self.world_rank].record_compute(duration)
        world.record_interval(self.world_rank, t0, t0 + duration, "compute", "compute")
        return duration

    def delay(self, seconds: float, account: str = "compute") -> _t.Generator:
        """Spend a fixed amount of virtual time (``account``: compute|io)."""
        if seconds < 0:
            raise MpiError(f"negative delay: {seconds}")
        t0 = self.engine.now
        if seconds > 0:
            yield seconds
        profile = self.world.monitor[self.world_rank]
        kind = "io" if account == "io" else "compute"
        if account == "io":
            profile.record_io(seconds)
        else:
            profile.record_compute(seconds)
        self.world.record_interval(self.world_rank, t0, t0 + seconds, kind, "delay")
        return seconds

    def io_read(self, nbytes: float, concurrent: int | None = None) -> _t.Generator:
        """Read from the platform's shared filesystem."""
        clients = concurrent if concurrent is not None else self.size
        duration = self.world.platform.fs.read_time(nbytes, clients)
        t0 = self.engine.now
        yield duration
        self.world.monitor[self.world_rank].record_io(duration)
        self.world.record_interval(self.world_rank, t0, t0 + duration, "io", "read")
        return duration

    def io_write(self, nbytes: float, concurrent: int | None = None) -> _t.Generator:
        """Write to the platform's shared filesystem."""
        clients = concurrent if concurrent is not None else self.size
        duration = self.world.platform.fs.write_time(nbytes, clients)
        t0 = self.engine.now
        yield duration
        self.world.monitor[self.world_rank].record_io(duration)
        self.world.record_interval(self.world_rank, t0, t0 + duration, "io", "write")
        return duration

    def checkpoint(self, nbytes: float = 0.0, concurrent: int | None = None) -> _t.Generator:
        """Declare an application checkpoint (a fault-tolerance cut).

        Writes ``nbytes`` to the shared filesystem (when > 0) and
        records the completion time with the fault layer: on an injected
        crash, only work since the last checkpoint *all* ranks completed
        is counted as wasted by the restart harness
        (:func:`repro.faults.run_with_restarts`).  Zero-cost and
        side-effect-free when no fault schedule is installed and
        ``nbytes`` is 0.
        """
        duration = 0.0
        if nbytes > 0:
            duration = yield from self.io_write(nbytes, concurrent)
        injector = self.world.fault_injector
        if injector is not None:
            injector.note_checkpoint(self.world_rank, self.engine.now)
        return duration

    # -- IPM regions ---------------------------------------------------------------
    @contextlib.contextmanager
    def region(self, name: str) -> _t.Iterator[None]:
        """Mark an IPM code region (``MPI_Pcontrol`` style)."""
        profile = self.world.monitor[self.world_rank]
        profile.enter(name, self.engine.now)
        try:
            yield
        finally:
            profile.exit(name, self.engine.now)

    # -- steady-loop marking (iteration replay) ------------------------------------
    def iteration_scope(
        self,
        it: int,
        total: int,
        body: _t.Callable[[], _t.Generator],
        label: str = "steady",
    ) -> _t.Generator:
        """Run iteration ``it`` of a ``total``-iteration steady loop.

        ``body`` is a zero-argument callable returning the iteration's
        generator; with no replay recorder attached this is exactly
        ``yield from body()``.  With an active recorder
        (:class:`~repro.perf.replay.ReplayRecorder`) the first few
        iterations are simulated and captured, and once every rank's
        consecutive captures match, the remaining iterations are
        fast-forwarded analytically — see :mod:`repro.perf.replay`.
        ``label`` keys the loop (so e.g. an OSU warm-up phase and its
        timed phase are judged independently); all ranks of the
        communicator must mark the same loops with the same labels.
        """
        recorder = self.world.replay
        if recorder is None or not recorder.active:
            yield from body()
            return None
        session = recorder.session(self, label, total)
        action = session.begin(self, it)
        if action == "skip":
            return None
        if action == "replay":
            yield from session.fast_forward(self, it)
            return None
        result = yield from body()
        session.capture(self, it)
        return result

    # -- point-to-point ---------------------------------------------------------------
    def isend(
        self, dest: int, nbytes: int, tag: int = 0, payload: _t.Any = None
    ) -> Request:
        """Non-blocking send of ``nbytes`` to local rank ``dest``."""
        return self.world.post_send(
            self.world_rank, self._world_rank_of(dest), nbytes, tag, payload
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive."""
        src_world = source if source == ANY_SOURCE else self._world_rank_of(source)
        return self.world.post_recv(self.world_rank, src_world, tag)

    def wait(self, request: Request, _call: str | None = None) -> _t.Generator:
        """Block until ``request`` completes; returns the Message for recvs."""
        t0 = self.engine.now
        value = yield request.event
        call = _call or ("MPI_Wait")
        nbytes = value.nbytes if isinstance(value, Message) else request.nbytes
        self.world.monitor[self.world_rank].record_mpi(call, nbytes, self.engine.now - t0)
        self.world.record_interval(self.world_rank, t0, self.engine.now, "mpi", call)
        return value

    def waitall(self, requests: _t.Sequence[Request]) -> _t.Generator:
        """Block until every request completes; returns their values."""
        t0 = self.engine.now
        values = yield self.engine.all_of([r.event for r in requests])
        nbytes = sum(
            v.nbytes if isinstance(v, Message) else r.nbytes
            for v, r in zip(values, requests)
        )
        self.world.monitor[self.world_rank].record_mpi(
            "MPI_Waitall", nbytes, self.engine.now - t0
        )
        self.world.record_interval(self.world_rank, t0, self.engine.now, "mpi", "MPI_Waitall")
        return values

    def send(
        self, dest: int, nbytes: int, tag: int = 0, payload: _t.Any = None
    ) -> _t.Generator:
        """Blocking send."""
        req = self.isend(dest, nbytes, tag, payload)
        t0 = self.engine.now
        yield req.event
        self.world.monitor[self.world_rank].record_mpi(
            "MPI_Send", nbytes, self.engine.now - t0
        )
        self.world.record_interval(self.world_rank, t0, self.engine.now, "mpi", "MPI_Send")
        return None

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> _t.Generator:
        """Blocking receive; returns the delivered :class:`Message`."""
        req = self.irecv(source, tag)
        t0 = self.engine.now
        msg: Message = yield req.event
        self.world.monitor[self.world_rank].record_mpi(
            "MPI_Recv", msg.nbytes, self.engine.now - t0
        )
        self.world.record_interval(self.world_rank, t0, self.engine.now, "mpi", "MPI_Recv")
        return msg

    def sendrecv(
        self,
        dest: int,
        send_bytes: int,
        source: int,
        recv_tag: int = 0,
        send_tag: int = 0,
        payload: _t.Any = None,
    ) -> _t.Generator:
        """Simultaneous send+receive (the halo-exchange workhorse)."""
        rreq = self.irecv(source, recv_tag)
        sreq = self.isend(dest, send_bytes, send_tag, payload)
        t0 = self.engine.now
        values = yield self.engine.all_of([rreq.event, sreq.event])
        msg: Message = values[0]
        self.world.monitor[self.world_rank].record_mpi(
            "MPI_Sendrecv", send_bytes + msg.nbytes, self.engine.now - t0
        )
        self.world.record_interval(self.world_rank, t0, self.engine.now, "mpi", "MPI_Sendrecv")
        return msg

    # -- collectives -------------------------------------------------------------------
    # Each method returns the dispatched generator from
    # ``MpiWorld.collective`` directly (callers ``yield from`` it either
    # way), which keeps one generator frame off the per-operation path.
    # ``null_ok=True`` asserts the finisher maps all-``None``
    # contributions to all-``None`` results, so the fast path may skip
    # it for value-free steady loops; gather/allgather return lists even
    # for ``None`` contributions and must keep the default.

    def barrier(self) -> _t.Generator:
        """Synchronise all ranks."""
        return self.world.collective(
            self, "MPI_Barrier", 0, lambda ctx, n: _alg.barrier_time(ctx),
            memo_key="barrier",
        )

    def bcast(self, nbytes: float, root: int = 0, value: _t.Any = None) -> _t.Generator:
        """Broadcast ``nbytes`` from ``root``; returns root's ``value``."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            v = contribs.get(root)
            return {r: v for r in contribs}

        return self.world.collective(
            self, "MPI_Bcast", nbytes, _alg.bcast_time,
            contribution=value if self.rank == root else None,
            finisher=finisher, memo_key="bcast", root=root, null_ok=True,
        )

    def reduce(
        self,
        nbytes: float,
        root: int = 0,
        value: _t.Any = None,
        op: _t.Callable[[_t.Any, _t.Any], _t.Any] = _sum_op,
    ) -> _t.Generator:
        """Reduce to ``root``; non-roots receive ``None``."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            total = _combine(contribs, op)
            return {r: (total if r == root else None) for r in contribs}

        return self.world.collective(
            self, "MPI_Reduce", nbytes, _alg.reduce_time,
            contribution=value, finisher=finisher, memo_key="reduce", root=root,
            null_ok=True,
        )

    def allreduce(
        self,
        nbytes: float,
        value: _t.Any = None,
        op: _t.Callable[[_t.Any, _t.Any], _t.Any] = _sum_op,
    ) -> _t.Generator:
        """All-reduce; every rank receives the combined value."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            total = _combine(contribs, op)
            return {r: total for r in contribs}

        return self.world.collective(
            self, "MPI_Allreduce", nbytes, _alg.allreduce_time,
            contribution=value, finisher=finisher, memo_key="allreduce",
            null_ok=True,
        )

    def gather(self, nbytes: float, root: int = 0, value: _t.Any = None) -> _t.Generator:
        """Gather per-rank contributions to ``root`` (list in rank order)."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            ordered = [contribs[r] for r in sorted(contribs)]
            return {r: (ordered if r == root else None) for r in contribs}

        return self.world.collective(
            self, "MPI_Gather", nbytes, _alg.gather_time,
            contribution=value, finisher=finisher, memo_key="gather", root=root,
        )

    def allgather(self, nbytes: float, value: _t.Any = None) -> _t.Generator:
        """All-gather; every rank receives the full list."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            ordered = [contribs[r] for r in sorted(contribs)]
            return {r: ordered for r in contribs}

        return self.world.collective(
            self, "MPI_Allgather", nbytes, _alg.allgather_time,
            contribution=value, finisher=finisher, memo_key="allgather",
        )

    def scatter(
        self, nbytes: float, root: int = 0, values: _t.Sequence[_t.Any] | None = None
    ) -> _t.Generator:
        """Scatter ``values`` (given at root) to all ranks."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            vals = contribs.get(root)
            if vals is None:
                return {r: None for r in contribs}
            if len(vals) != len(contribs):
                raise MpiError(
                    f"scatter needs {len(contribs)} values, got {len(vals)}"
                )
            return {r: vals[r] for r in contribs}

        return self.world.collective(
            self, "MPI_Scatter", nbytes, _alg.scatter_time,
            contribution=values if self.rank == root else None,
            finisher=finisher, memo_key="scatter", root=root, null_ok=True,
        )

    def alltoall(
        self, nbytes_total: float, values: _t.Sequence[_t.Any] | None = None
    ) -> _t.Generator:
        """All-to-all; ``nbytes_total`` is the payload each rank sends in
        total (NPB convention).  With ``values`` (length ``size``), rank
        ``i`` receives ``[values_j[i] for j]``."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            if all(v is None for v in contribs.values()):
                return {r: None for r in contribs}
            out: dict[int, _t.Any] = {}
            for r in contribs:
                out[r] = [
                    (contribs[s][r] if contribs[s] is not None else None)
                    for s in sorted(contribs)
                ]
            return out

        return self.world.collective(
            self, "MPI_Alltoall", nbytes_total, _alg.alltoall_time,
            contribution=values, finisher=finisher, memo_key="alltoall",
            null_ok=True,
        )

    def alltoallv(
        self,
        total_send: float,
        max_pair: float | None = None,
        values: _t.Sequence[_t.Any] | None = None,
    ) -> _t.Generator:
        """Irregular all-to-all (bucketed key redistribution in NPB IS)."""

        def time_fn(ctx: _alg.CollectiveContext, n: float) -> float:
            return _alg.alltoallv_time(ctx, n, max_pair)

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            if all(v is None for v in contribs.values()):
                return {r: None for r in contribs}
            return {
                r: [
                    (contribs[s][r] if contribs[s] is not None else None)
                    for s in sorted(contribs)
                ]
                for r in contribs
            }

        return self.world.collective(
            self, "MPI_Alltoallv", total_send, time_fn,
            contribution=values, finisher=finisher,
            memo_key=("alltoallv", max_pair), null_ok=True,
        )

    def reduce_scatter(self, nbytes_total: float, value: _t.Any = None) -> _t.Generator:
        """Reduce-scatter of an ``nbytes_total`` buffer."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            total = _combine(contribs, _sum_op)
            return {r: total for r in contribs}

        return self.world.collective(
            self, "MPI_Reduce_scatter", nbytes_total,
            lambda ctx, n: _alg.reduce_scatter_time(ctx, n),
            contribution=value, finisher=finisher, memo_key="reduce_scatter",
            null_ok=True,
        )

    def scan(
        self,
        nbytes: float,
        value: _t.Any = None,
        op: _t.Callable[[_t.Any, _t.Any], _t.Any] = _sum_op,
    ) -> _t.Generator:
        """Inclusive prefix reduction: rank ``i`` receives the fold of
        contributions from ranks ``0..i`` (``MPI_Scan``)."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            out: dict[int, _t.Any] = {}
            acc: _t.Any = None
            for r in sorted(contribs):
                v = contribs[r]
                if v is not None:
                    acc = v if acc is None else op(acc, v)
                out[r] = acc
            return out

        return self.world.collective(
            self, "MPI_Scan", nbytes, _alg.allreduce_time,
            contribution=value, finisher=finisher, memo_key="allreduce",
            null_ok=True,
        )

    def exscan(
        self,
        nbytes: float,
        value: _t.Any = None,
        op: _t.Callable[[_t.Any, _t.Any], _t.Any] = _sum_op,
    ) -> _t.Generator:
        """Exclusive prefix reduction: rank ``i`` receives the fold of
        ranks ``0..i-1`` (``None`` on rank 0), as ``MPI_Exscan``."""

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            out: dict[int, _t.Any] = {}
            acc: _t.Any = None
            for r in sorted(contribs):
                out[r] = acc
                v = contribs[r]
                if v is not None:
                    acc = v if acc is None else op(acc, v)
            return out

        return self.world.collective(
            self, "MPI_Exscan", nbytes, _alg.allreduce_time,
            contribution=value, finisher=finisher, memo_key="allreduce",
            null_ok=True,
        )

    def prime_collectives(self, op: str, sizes: _t.Sequence[float]) -> int:
        """Vector-price collective ``op`` for every size in ``sizes``.

        With an active collective fast-forward this evaluates the
        vectorized cost model (:mod:`repro.smpi.collectives.vectorized`)
        once for the whole size sweep and seeds the results into the
        memo and this communicator's duration cache; otherwise it is a
        no-op.  Returns the number of sizes newly priced.  A plain call
        (no ``yield``): priming consumes no virtual time.
        """
        fc = self.world.fastcollect
        if fc is None:
            return 0
        return fc.prime(self, op, sizes)

    # -- Cartesian topology helpers -----------------------------------------
    def cart_coords(self, dims: _t.Sequence[int], rank: int | None = None) -> tuple[int, ...]:
        """Coordinates of ``rank`` (default: this rank) on a row-major
        Cartesian grid of shape ``dims`` (``MPI_Cart_coords``)."""
        import math

        if math.prod(dims) != self.size:
            raise MpiError(f"dims {tuple(dims)} do not tile {self.size} ranks")
        r = self.rank if rank is None else rank
        coords = []
        for extent in reversed(dims):
            coords.append(r % extent)
            r //= extent
        return tuple(reversed(coords))

    def cart_rank(self, dims: _t.Sequence[int], coords: _t.Sequence[int]) -> int:
        """Rank at ``coords`` on the grid (periodic wrap per dimension)."""
        import math

        if math.prod(dims) != self.size:
            raise MpiError(f"dims {tuple(dims)} do not tile {self.size} ranks")
        rank = 0
        for extent, c in zip(dims, coords):
            rank = rank * extent + (c % extent)
        return rank

    def cart_shift(
        self, dims: _t.Sequence[int], axis: int, displacement: int = 1
    ) -> tuple[int, int]:
        """(source, destination) ranks for a periodic shift along ``axis``
        (``MPI_Cart_shift`` with periodic boundaries)."""
        coords = list(self.cart_coords(dims))
        if not (0 <= axis < len(dims)):
            raise MpiError(f"axis {axis} out of range for dims {tuple(dims)}")
        ahead = list(coords)
        behind = list(coords)
        ahead[axis] += displacement
        behind[axis] -= displacement
        return self.cart_rank(dims, behind), self.cart_rank(dims, ahead)

    def composite(
        self,
        name: str,
        nbytes: float,
        time_fn: _t.Callable[[_alg.CollectiveContext, float], float],
        memo_key: _t.Hashable = None,
    ) -> _t.Generator:
        """A custom synchronising composite operation.

        Workloads with communication phases too fine-grained to simulate
        message-by-message (e.g. LU's pipelined wavefront sweeps, BT/SP's
        ADI line solves) model the phase analytically: all ranks
        synchronise and ``time_fn(ctx, nbytes)`` prices the whole phase.
        The accounting is identical to a collective's.  A ``memo_key``
        that uniquely pins down ``time_fn`` (including every closed-over
        parameter) opts the phase cost into the collective memo cache.
        """
        return self.world.collective(self, name, nbytes, time_fn, memo_key=memo_key)

    # -- communicator management ---------------------------------------------------------
    def split(self, color: int, key: int | None = None) -> _t.Generator:
        """Split into sub-communicators by ``color`` (collective).

        Returns a new :class:`Comm` for this rank's ``color`` group, with
        members ordered by ``(key, parent rank)``.
        """
        sort_key = key if key is not None else self.rank

        def finisher(contribs: dict[int, _t.Any]) -> dict[int, _t.Any]:
            # contribs: local rank -> (color, key)
            out: dict[int, _t.Any] = {}
            groups: dict[int, list[tuple[int, int]]] = {}
            for r, (c, k) in contribs.items():
                groups.setdefault(c, []).append((k, r))
            base_id = self.world.alloc_comm_id()
            for idx, c in enumerate(sorted(groups)):
                members = [r for _k, r in sorted(groups[c])]
                for pos, r in enumerate(members):
                    out[r] = (base_id + idx, members, pos)
            # Reserve ids for every group deterministically.
            for _ in range(len(groups) - 1):
                self.world.alloc_comm_id()
            return out

        cid, members, pos = yield from self.world.collective(
            self, "MPI_Comm_split", 16, lambda ctx, n: _alg.allgather_time(ctx, 16),
            contribution=(color, sort_key), finisher=finisher,
            memo_key="comm_split",
        )
        world_group = [self.group[m] for m in members]
        return Comm(self.world, world_group, pos, cid)

    def dup(self) -> _t.Generator:
        """Duplicate this communicator (collective)."""
        new = yield from self.split(0, key=self.rank)
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm id={self.comm_id} rank={self.rank}/{self.size}>"


def _combine(
    contribs: dict[int, _t.Any], op: _t.Callable[[_t.Any, _t.Any], _t.Any]
) -> _t.Any:
    """Fold non-``None`` contributions in rank order (deterministic)."""
    total: _t.Any = None
    for r in sorted(contribs):
        v = contribs[r]
        if v is None:
            continue
        total = v if total is None else op(total, v)
    return total
