"""Message envelopes and non-blocking request handles."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.sim.events import Event


@dataclasses.dataclass(slots=True)
class Message:
    """An in-flight or delivered point-to-point message."""

    source: int
    dest: int
    tag: int
    nbytes: int
    payload: _t.Any = None
    #: Virtual time the message became available at the receiver.
    arrival_time: float = 0.0
    #: True for a rendezvous RTS control envelope (matching only).
    is_rts: bool = False
    #: For RTS envelopes: event the receiver triggers to release the data.
    cts_event: Event | None = None
    #: For RTS envelopes: event the sender triggers when the data lands.
    data_ready: Event | None = None


@dataclasses.dataclass(slots=True)
class Request:
    """Handle for a non-blocking operation (isend/irecv).

    ``event`` fires when the operation completes; its value is the
    delivered :class:`Message` for receives and ``None`` for sends.
    ``start_time`` is when the operation was posted — the wait-time the
    caller later observes is charged to MPI from the *wait* call, exactly
    as a PMPI profiler like IPM would see it.
    """

    kind: str  # "send" | "recv"
    event: Event
    start_time: float
    nbytes: int
    peer: int
    tag: int

    @property
    def complete(self) -> bool:
        """True once the underlying transfer has finished."""
        return self.event.triggered and self.event.callbacks is None
