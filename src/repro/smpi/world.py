"""The MPI world: rank processes, transfers, collectives, launching.

:class:`MpiWorld` ties a :class:`~repro.platforms.base.Platform` runtime,
an :class:`~repro.ipm.monitor.IpmMonitor` and the per-rank mailboxes
together, and implements the point-to-point wire protocol (eager /
rendezvous with NIC serialisation) and the synchronising collective
mechanism described in :mod:`repro.smpi.collectives`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError, MpiError
from repro.ipm.monitor import IpmMonitor
from repro.ipm.report import IpmReport, summarize
from repro.perf.memo import CollectiveMemo, default_memo
from repro.platforms.base import Platform, PlatformSpec
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Store
from repro.smpi.collectives.algorithms import CollectiveContext
from repro.smpi.mapping import Placement, place_ranks
from repro.smpi.message import Message, Request

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitizer import SanitizerReport
    from repro.faults.report import ResilienceReport
    from repro.faults.schedule import FaultSchedule
    from repro.perf.fastcollect import FastCollectReport
    from repro.perf.replay import ReplayReport
    from repro.smpi.comm import Comm


class _CollState:
    """In-flight state of one collective operation instance."""

    __slots__ = ("expected", "arrivals", "contributions", "event", "nbytes_seen")

    def __init__(self, expected: int, event: Event) -> None:
        self.expected = expected
        self.arrivals: dict[int, float] = {}  # local rank -> arrival time
        self.contributions: dict[int, _t.Any] = {}
        self.event = event
        self.nbytes_seen: float = 0.0


class MpiWorld:
    """One simulated MPI execution context.

    Parameters
    ----------
    platform:
        A :class:`PlatformSpec` (a fresh engine and runtime platform are
        built) or an existing :class:`Platform` runtime.
    nprocs:
        World size.
    placement:
        Rank placement policy (default: block, minimal nodes).
    seed:
        Engine seed (ignored when an existing platform is passed).
    memo:
        Collective-cost cache (default: the process-wide shared cache
        from :mod:`repro.perf`); pass a disabled
        :class:`~repro.perf.memo.CollectiveMemo` to opt out.
    sanitize:
        Attach the runtime MPI sanitizer
        (:class:`~repro.analysis.sanitizer.MpiSanitizer`): wait-for-graph
        deadlock reports, collective-sequence mismatch detection,
        unmatched-send/message-leak checks at finalize and tag/peer
        validation.  ``None`` (the default) defers to the scope/env
        default (:func:`repro.analysis.sanitizer.sanitize_enabled`).
        The sanitizer observes without scheduling events, so sanitized
        runs keep bit-identical virtual timestamps.
    faults:
        A :class:`~repro.faults.FaultSchedule`, a spec string (see
        :mod:`repro.faults.schedule`), or ``None`` to defer to the
        ``REPRO_FAULTS`` environment variable.  A non-empty schedule
        installs a :class:`~repro.faults.FaultInjector`; with no
        schedule every fault hook is a pure pass-through and the run is
        bit-identical to one built before the fault layer existed.
    replay:
        Attach the steady-state iteration recorder
        (:class:`~repro.perf.replay.ReplayRecorder`): marked steady
        loops whose iterations prove stationary on a draw-free platform
        are fast-forwarded analytically instead of re-simulated.
        ``None`` (the default) defers to the scope/env default
        (:func:`repro.perf.replay.replay_enabled`).  The recorder
        auto-falls-back to full simulation whenever the sanitizer, the
        fault injector, tracing or a stochastic platform model is
        present — replay is a pure optimization, never a semantics
        change.
    fastcollect:
        Attach the analytic collective fast-forward
        (:class:`~repro.perf.fastcollect.FastCollect`): collectives on a
        draw-free, unobserved world complete through one pre-triggered
        event priced from per-communicator caches instead of the
        per-operation path, with byte-identical wake times and IPM
        counters.  ``None`` (the default) defers to the scope/env
        default (:func:`repro.perf.fastcollect.fastcollect_enabled`).
        Shares replay's auto-fallback discipline (sanitizer, faults,
        tracing, stochastic platforms ⇒ per-operation path with a
        recorded reason).
    """

    def __init__(
        self,
        platform: PlatformSpec | Platform,
        nprocs: int,
        placement: Placement | None = None,
        seed: int = 0,
        timeline: bool = False,
        memo: CollectiveMemo | None = None,
        sanitize: bool | None = None,
        faults: "FaultSchedule | str | None" = None,
        replay: bool | None = None,
        fastcollect: bool | None = None,
    ) -> None:
        if isinstance(platform, PlatformSpec):
            self.engine = Engine(seed=seed)
            self.platform = Platform(platform, self.engine)
        else:
            self.platform = platform
            self.engine = platform.engine
        if nprocs < 1:
            raise ConfigError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        place_ranks(self.platform, nprocs, placement)
        self.monitor = IpmMonitor(nprocs)
        self.monitor.system_time_share = self.platform.hypervisor.system_time_share
        self.mailboxes = [Store(self.engine, f"mbox{r}") for r in range(nprocs)]
        self.memo = memo if memo is not None else default_memo()
        self._coll_states: dict[tuple[int, str, int], _CollState] = {}
        self._next_comm_id = 1
        # Imported lazily: repro.analysis pulls in the linter, which in
        # turn reads the collective registry from this package.
        from repro.analysis.sanitizer import MpiSanitizer, sanitize_enabled

        if sanitize is None:
            sanitize = sanitize_enabled()
        self.sanitizer = MpiSanitizer(self) if sanitize else None
        # The injector chains its deadlock factory over the sanitizer's,
        # so it must be installed after the sanitizer.
        from repro.faults.injector import FaultInjector
        from repro.faults.schedule import resolve_schedule

        schedule = resolve_schedule(faults)
        self.fault_injector = (
            FaultInjector(self, schedule) if schedule is not None else None
        )
        #: Optional per-rank interval trace (memory-heavy; off by default).
        from repro.ipm.timeline import Timeline

        self.timeline = Timeline(nprocs) if timeline else None
        # The replay recorder is constructed last so every disqualifier
        # (sanitizer, injector, timeline, engine tracer) is already known.
        from repro.perf.replay import ReplayRecorder, replay_enabled

        if replay is None:
            replay = replay_enabled()
        self.replay = ReplayRecorder(self) if replay else None
        # The collective fast-forward shares the recorder's disqualifier
        # and is likewise constructed after every observer/perturber.
        from repro.perf.fastcollect import FastCollect, fastcollect_enabled

        if fastcollect is None:
            fastcollect = fastcollect_enabled()
        self.fastcollect = FastCollect(self) if fastcollect else None

    def record_interval(
        self, rank: int, start: float, end: float, kind: str, label: str
    ) -> None:
        """Record an activity interval when timeline tracing is enabled."""
        if self.timeline is not None:
            self.timeline.record(rank, start, end, kind, label)

    # -- communicator factory ----------------------------------------------
    def comm_world(self, rank: int) -> "Comm":
        """The ``MPI_COMM_WORLD`` handle for ``rank``."""
        from repro.smpi.comm import Comm

        return Comm(self, list(range(self.nprocs)), rank, comm_id=0)

    def alloc_comm_id(self) -> int:
        """Allocate a fresh communicator id (deterministic sequence)."""
        cid = self._next_comm_id
        self._next_comm_id += 1
        return cid

    # -- point-to-point wire protocol ----------------------------------------
    def post_send(
        self, src: int, dst: int, nbytes: int, tag: int, payload: _t.Any
    ) -> Request:
        """Start a send; returns a request whose event fires at local
        completion (data handed to the network/receiver)."""
        if not (0 <= dst < self.nprocs):
            raise MpiError(f"send to invalid rank {dst} (world size {self.nprocs})")
        if nbytes < 0:
            raise MpiError(f"negative message size: {nbytes}")
        eng = self.engine
        topo = self.platform.topology
        start = eng.now
        if topo.same_node(src, dst):
            done = self._send_intranode(src, dst, nbytes, tag, payload)
        else:
            done = eng.process(
                self._send_internode(src, dst, nbytes, tag, payload),
                name=f"send:{src}->{dst}",
            )
        req = Request(kind="send", event=done, start_time=start, nbytes=nbytes, peer=dst, tag=tag)
        if self.sanitizer is not None:
            self.sanitizer.on_send(src, dst, nbytes, tag, req)
        return req

    def _send_intranode(
        self, src: int, dst: int, nbytes: int, tag: int, payload: _t.Any
    ) -> Event:
        """Shared-memory copy: cheap enough to implement with callbacks."""
        eng = self.engine
        topo = self.platform.topology
        shm = self.platform.spec.shm
        bw = shm.bw.at(nbytes) * self.platform.shm_pressure(topo.node_of(src).index)
        if topo.cross_socket(src, dst):
            bw *= topo.cross_socket_bw_factor
        copy = nbytes / bw if nbytes > 0 else 0.0
        # Large intra-node messages still need the receiver to drain the
        # copy loop; model the handshake as one extra shm latency.
        handshake = shm.latency if nbytes > shm.eager_threshold else 0.0
        sender_busy = shm.o_send + copy + handshake
        arrival = eng.now + sender_busy + shm.latency
        msg = Message(source=src, dest=dst, tag=tag, nbytes=nbytes, payload=payload,
                      arrival_time=arrival)
        eng.call_at(arrival, lambda: self.mailboxes[dst].put(msg))
        return eng.timeout(sender_busy)

    def _send_internode(
        self, src: int, dst: int, nbytes: int, tag: int, payload: _t.Any
    ) -> _t.Generator:
        """Eager/rendezvous transfer through the NIC and fabric."""
        eng = self.engine
        plat = self.platform
        fabric = plat.spec.fabric
        src_node = plat.topology.node_of(src)
        yield eng.timeout(fabric.o_send)

        rendezvous = fabric.uses_rendezvous(nbytes)
        msg = Message(source=src, dest=dst, tag=tag, nbytes=nbytes, payload=payload)
        if rendezvous:
            msg.is_rts = True
            msg.cts_event = eng.event(f"cts:{src}->{dst}")
            msg.data_ready = eng.event(f"data:{src}->{dst}")
            rts_arrival = eng.now + fabric.latency + plat.net_extra_latency()
            eng.call_at(rts_arrival, lambda: self.mailboxes[dst].put(msg))
            matched_at = yield msg.cts_event  # receiver matched the RTS
            cts_arrival = matched_at + fabric.latency + plat.net_extra_latency()
            if cts_arrival > eng.now:
                yield eng.timeout(cts_arrival - eng.now)

        # Serialise the data through the (possibly shared) NIC.
        yield src_node.nic_tx.request()
        try:
            yield eng.timeout(plat.net_serialize(nbytes))
        finally:
            src_node.nic_tx.release()
        arrival = eng.now + fabric.latency + plat.net_extra_latency()
        msg.arrival_time = arrival
        if rendezvous:
            data_ready = msg.data_ready
            assert data_ready is not None
            eng.call_at(arrival, lambda: data_ready.succeed(arrival))
        else:
            eng.call_at(arrival, lambda: self.mailboxes[dst].put(msg))
        return None

    def post_recv(self, rank: int, source: int, tag: int) -> Request:
        """Start a receive; the request event fires with the Message."""
        eng = self.engine
        proc = eng.process(self._recv_process(rank, source, tag), name=f"recv:{rank}")
        req = Request(kind="recv", event=proc, start_time=eng.now, nbytes=0, peer=source, tag=tag)
        if self.sanitizer is not None:
            self.sanitizer.on_recv(rank, source, tag, req)
        return req

    def _recv_process(self, rank: int, source: int, tag: int) -> _t.Generator:
        from repro.smpi.comm import ANY_SOURCE, ANY_TAG

        def match(m: Message) -> bool:
            return (source == ANY_SOURCE or m.source == source) and (
                tag == ANY_TAG or m.tag == tag
            )

        msg: Message = yield self.mailboxes[rank].get(match)
        fabric = self.platform.topology.fabric_between(msg.source, rank)
        if msg.is_rts:
            assert msg.cts_event is not None and msg.data_ready is not None
            msg.cts_event.succeed(self.engine.now)
            yield msg.data_ready
        if fabric.o_recv > 0:
            yield self.engine.timeout(fabric.o_recv)
        return msg

    # -- collectives ------------------------------------------------------------
    def collective(
        self,
        comm: "Comm",
        name: str,
        nbytes: float,
        time_fn: _t.Callable[[CollectiveContext, float], float],
        contribution: _t.Any = None,
        finisher: _t.Callable[[dict[int, _t.Any]], dict[int, _t.Any]] | None = None,
        memo_key: _t.Hashable = None,
        root: int | None = None,
        null_ok: bool = False,
    ) -> _t.Generator:
        """One synchronising collective for the calling rank (dispatch).

        ``time_fn(ctx, nbytes)`` supplies the algorithm cost;
        ``finisher`` maps the {local rank: contribution} dict to a
        {local rank: result} dict once everyone has arrived (identity
        results of ``None`` when omitted).  The returned generator
        yields until completion and returns this rank's result.

        ``memo_key`` opts the cost into the world's
        :class:`~repro.perf.memo.CollectiveMemo`: it must uniquely
        identify ``time_fn`` (including anything it closes over) so the
        cache key ``(memo_key, ctx, nbytes)`` fully determines the cost.
        Leave it ``None`` for ad-hoc composite phases whose cost depends
        on state outside the context.

        ``root`` is purely diagnostic: rooted collectives pass it so the
        sanitizer can detect cross-rank root divergence.  ``null_ok``
        marks finishers that map all-``None`` contributions to
        all-``None`` results (see
        :meth:`repro.perf.fastcollect.FastCollect.collective`).

        With an active :class:`~repro.perf.fastcollect.FastCollect` and
        a ``memo_key``, the operation takes the closed-form fast path;
        otherwise the per-operation path below.
        """
        fc = self.fastcollect
        if fc is not None and fc.active and memo_key is not None:
            return fc.collective(
                comm, name, nbytes, time_fn, contribution, finisher, memo_key, null_ok
            )
        return self._collective_slow(
            comm, name, nbytes, time_fn, contribution, finisher, memo_key, root
        )

    def _collective_slow(
        self,
        comm: "Comm",
        name: str,
        nbytes: float,
        time_fn: _t.Callable[[CollectiveContext, float], float],
        contribution: _t.Any,
        finisher: _t.Callable[[dict[int, _t.Any]], dict[int, _t.Any]] | None,
        memo_key: _t.Hashable,
        root: int | None,
    ) -> _t.Generator:
        """The per-operation collective path (sanitizer-aware)."""
        eng = self.engine
        my_local = comm.rank
        seq = comm._bump_seq()
        key = (comm.comm_id, name, seq)
        state = self._coll_states.get(key)
        if state is None:
            state = _CollState(comm.size, eng.event(f"coll:{name}:{seq}"))
            self._coll_states[key] = state
        if my_local in state.arrivals:
            raise MpiError(
                f"rank {my_local} entered collective {name} seq {seq} twice"
            )
        if self.sanitizer is not None:
            self.sanitizer.on_collective(
                comm, name, seq, root, nbytes, my_local, state.event
            )
        arrival = eng.now
        state.arrivals[my_local] = arrival
        state.contributions[my_local] = contribution
        state.nbytes_seen = max(state.nbytes_seen, nbytes)

        if len(state.arrivals) == state.expected:
            del self._coll_states[key]
            fc = self.fastcollect
            if fc is not None and fc.active:
                fc.slow_ops += 1
            ctx = self._collective_context(comm)
            if memo_key is not None:
                duration = self.memo.time(memo_key, ctx, state.nbytes_seen, time_fn)
            else:
                duration = time_fn(ctx, state.nbytes_seen)
            if duration < 0:
                raise MpiError(f"negative collective time from {name}: {duration}")
            completion = max(state.arrivals.values()) + duration
            results = (
                finisher(state.contributions) if finisher is not None else {}
            )
            eng.call_at(completion, lambda: state.event.succeed(results))

        results = yield state.event
        duration = eng.now - arrival
        world_rank = comm.group[my_local]
        self.monitor[world_rank].record_mpi(name, int(nbytes), duration)
        self.record_interval(world_rank, arrival, eng.now, "mpi", name)
        return results.get(my_local) if results else None

    def _collective_context(self, comm: "Comm") -> CollectiveContext:
        topo = self.platform.topology
        group = comm.group
        hv = self.platform.hypervisor
        nnodes = topo.occupied_nodes(group)
        extra = self.platform.net_extra_latency() if nnodes > 1 else 0.0
        return CollectiveContext(
            p=len(group),
            nnodes=nnodes,
            rpn=topo.max_ranks_per_node(group),
            net=self.platform.spec.fabric,
            shm=self.platform.spec.shm,
            extra_latency=extra,
            net_bw_factor=hv.net_bw_factor(),
            shm_bw_factor=self.platform.worst_shm_pressure(),
        )

    # -- launching ----------------------------------------------------------------
    def launch(
        self,
        program: _t.Callable[..., _t.Generator],
        *args: _t.Any,
        **kwargs: _t.Any,
    ) -> "RunResult":
        """Run ``program(comm, *args, **kwargs)`` on every rank to completion."""
        procs = []
        finish_times = [0.0] * self.nprocs
        for rank in range(self.nprocs):
            comm = self.comm_world(rank)
            gen = program(comm, *args, **kwargs)
            proc = self.engine.process(gen, name=f"rank{rank}")
            proc.add_callback(
                lambda _ev, r=rank: finish_times.__setitem__(r, self.engine.now)
            )
            procs.append(proc)

        injector = self.fault_injector
        if injector is not None:
            injector.arm(procs)
        done = self.engine.all_of(procs)
        self.engine.run(done)
        if injector is not None:
            # The run is over: pull un-fired crash events out of the heap
            # so the drain below cannot advance the clock to their times.
            injector.disarm()
        # Drain any stragglers (e.g. in-flight message arrivals), exactly
        # as a fault-free run would — the sanitizer's finalize checks
        # depend on seeing every delivered message.
        self.engine.run()
        for rank in range(self.nprocs):
            self.monitor[rank].finalize(finish_times[rank])
        if injector is not None and injector.killed_ranks:
            # Raised before sanitizer finalize: unmatched operations
            # involving dead ranks are a consequence of the injected
            # fault, not an application protocol bug.
            raise injector.failure_error()
        report = None
        if self.sanitizer is not None:
            from repro.errors import SanitizerError

            report = self.sanitizer.finalize()
            errors = report.errors()
            if errors:
                raise SanitizerError(
                    "MPI sanitizer found "
                    f"{len(errors)} error(s) at finalize:\n"
                    + "\n".join(f"  {d.render()}" for d in errors),
                    errors,
                )
        return RunResult(
            world=self,
            wall_time=self.engine.now,
            rank_results=[p.value for p in procs],
            sanitizer_report=report,
            resilience=injector.finalize_report() if injector is not None else None,
            replay=(
                self.replay.finalize_report() if self.replay is not None else None
            ),
            fastcollect=(
                self.fastcollect.finalize_report()
                if self.fastcollect is not None
                else None
            ),
        )


@dataclasses.dataclass(slots=True)
class RunResult:
    """Outcome of one :meth:`MpiWorld.launch`."""

    world: MpiWorld
    wall_time: float
    rank_results: list[_t.Any]
    #: Structured sanitizer output (None when the run was unsanitized).
    sanitizer_report: "SanitizerReport | None" = None
    #: What the fault layer injected (None when no schedule was installed).
    resilience: "ResilienceReport | None" = None
    #: What the iteration recorder captured/fast-forwarded (None when
    #: replay was not requested for this world).
    replay: "ReplayReport | None" = None
    #: What the collective fast-forward did (None when not requested).
    fastcollect: "FastCollectReport | None" = None

    @property
    def monitor(self) -> IpmMonitor:
        return self.world.monitor

    def report(self, region: str | None = None) -> IpmReport:
        """IPM summary for ``region`` (default: whole run)."""
        from repro.ipm.monitor import GLOBAL_REGION

        return summarize(self.world.monitor, region or GLOBAL_REGION)


def run_program(
    platform: PlatformSpec,
    nprocs: int,
    program: _t.Callable[..., _t.Generator],
    *args: _t.Any,
    placement: Placement | None = None,
    seed: int = 0,
    reps: int = 1,
    **kwargs: _t.Any,
) -> RunResult:
    """Convenience wrapper: build a world, run, optionally repeat.

    With ``reps > 1`` the run is repeated with distinct seeds and the
    result with the *minimum* wall time is returned — the paper's
    protocol ("each run was repeated 5 times, with the minimum time
    being used").
    """
    best: RunResult | None = None
    for rep in range(max(1, reps)):
        world = MpiWorld(platform, nprocs, placement=placement, seed=seed + 1000 * rep)
        result = world.launch(program, *args, **kwargs)
        if best is None or result.wall_time < best.wall_time:
            best = result
    assert best is not None
    return best
