"""Collective-communication cost models.

Collectives in the simulator are *synchronising composite operations*:
all participating ranks arrive, the completion time is
``max(arrival) + algorithm_time``, and each rank's MPI time is
``completion - its own arrival`` — so compute imbalance surfaces as
communication wait exactly the way IPM reports it on the real systems
(paper sections V-C.1/2).

``algorithm_time`` comes from the standard algorithm models in
:mod:`repro.smpi.collectives.algorithms`, made topology-aware by
splitting rounds into inter-node rounds (paying fabric latency, with the
node link shared by all co-resident ranks) and intra-node rounds (paying
shared-memory costs).
"""

from repro.smpi.collectives.algorithms import (
    CollectiveContext,
    allgather_time,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    gather_time,
    reduce_scatter_time,
    reduce_time,
    scatter_time,
)

#: Canonical registry of the :class:`~repro.smpi.comm.Comm` methods that
#: synchronise every rank of a communicator.  The determinism linter
#: (rule DET006) and the sanitizer docs treat exactly these names as
#: collectives: calling one under rank-dependent control flow deadlocks
#: the ranks that skip it.
COLLECTIVE_METHODS: frozenset[str] = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "alltoallv", "reduce_scatter", "scan",
    "exscan", "split", "dup", "composite", "collective",
})

__all__ = [
    "COLLECTIVE_METHODS",
    "CollectiveContext",
    "allgather_time",
    "allreduce_time",
    "alltoall_time",
    "barrier_time",
    "bcast_time",
    "gather_time",
    "reduce_scatter_time",
    "reduce_time",
    "scatter_time",
]
