"""Analytic cost models for MPI collective algorithms.

Every function returns the elapsed seconds of one collective once all
ranks have arrived, for the standard algorithms used by OpenMPI-era
runtimes:

========== =====================================================
bcast      binomial tree (small), pipelined scatter+allgather (large)
reduce     mirror of bcast plus reduction arithmetic
allreduce  recursive doubling (small), ring reduce-scatter+allgather (large)
allgather  ring
alltoall   pairwise exchange over ``p - 1`` rounds
gather     root-link serialisation
scatter    root-link serialisation
barrier    recursive doubling with minimal messages
========== =====================================================

Topology awareness
------------------
Rounds are split into inter-node and intra-node parts.  An inter-node
round pays fabric latency (plus the hypervisor's per-message extra) and —
crucially — shares the node's NIC among the ``rpn`` ranks resident on the
node, so its transfer term is ``rpn * m / bw(m)``.  This NIC sharing is
what reproduces the paper's GigE cliff when NPB jobs first span two DCC
nodes, and the recovery at higher process counts for All-to-all-bound FT
("the message size for MPI AlltoAll communication decreas[es] with an
increase in the number of processes, resulting in reduced communication
overhead").
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigError
from repro.hardware.interconnect import FabricSpec

#: Reduction arithmetic throughput (bytes/s) — combining buffers runs
#: at streaming memory speed.
_REDUCE_BW = 8.0e9

#: Message size used by barrier control messages.
_BARRIER_BYTES = 8


@dataclasses.dataclass(frozen=True, slots=True)
class CollectiveContext:
    """Topology snapshot a collective executes in.

    ``p`` ranks over ``nnodes`` nodes with at most ``rpn`` ranks on any
    node; ``extra_latency`` is the hypervisor's sampled per-message
    addition for this operation; ``net_bw_factor`` scales fabric
    bandwidth (hypervisor throughput loss).
    """

    p: int
    nnodes: int
    rpn: int
    net: FabricSpec
    shm: FabricSpec
    extra_latency: float = 0.0
    net_bw_factor: float = 1.0
    #: Intra-node copy bandwidth factor (memory pressure / NUMA masking).
    shm_bw_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.p < 1 or self.nnodes < 1 or self.rpn < 1:
            raise ConfigError(f"invalid CollectiveContext: {self}")
        if self.nnodes > self.p or self.rpn > self.p:
            raise ConfigError(f"inconsistent CollectiveContext: {self}")

    # -- per-message costs -------------------------------------------------
    def net_msg(self, nbytes: float, link_share: int = 1) -> float:
        """One inter-node message with ``link_share`` concurrent senders
        on the same NIC.

        Concurrent streams pay the fabric's congestion factor (TCP
        incast on commodity Ethernet), and rendezvous-sized messages add
        the handshake round trip.
        """
        net = self.net
        bw = net.bw.at(nbytes) * self.net_bw_factor
        if nbytes > 0:
            transfer = (nbytes * link_share) / bw
            if link_share > 1:
                transfer *= net.congestion_factor
        else:
            transfer = 0.0
        latency = net.latency + self.extra_latency
        if nbytes > net.eager_threshold:
            latency *= 3.0  # RTS/CTS handshake: two extra traversals
        return net.o_send + latency + transfer + net.o_recv

    def shm_msg(self, nbytes: float) -> float:
        """One intra-node (shared-memory) message."""
        shm = self.shm
        if nbytes > 0:
            transfer = nbytes / (shm.bw.at(nbytes) * self.shm_bw_factor)
        else:
            transfer = 0.0
        return shm.o_send + shm.latency + transfer + shm.o_recv

    # -- round structure -----------------------------------------------------
    def tree_rounds(self) -> tuple[int, int]:
        """(inter-node, intra-node) rounds of a log2-depth tree/doubling."""
        total = math.ceil(math.log2(self.p)) if self.p > 1 else 0
        inter = math.ceil(math.log2(self.nnodes)) if self.nnodes > 1 else 0
        inter = min(inter, total)
        return inter, total - inter

    def ring_pass(self, chunk: float) -> float:
        """One ``p-1``-step ring pass moving ``chunk`` bytes per step.

        All ranks send concurrently each step; with block placement each
        node has exactly one boundary rank sending off-node, so when the
        communicator spans nodes every step is gated by a single
        inter-node message (no NIC sharing), otherwise by the
        shared-memory path.
        """
        steps = self.p - 1
        if steps <= 0:
            return 0.0
        if self.nnodes > 1:
            return steps * self.net_msg(chunk)
        return steps * self.shm_msg(chunk)


def _reduce_cost(nbytes: float, rounds: int) -> float:
    """Arithmetic cost of combining ``nbytes`` buffers ``rounds`` times."""
    return rounds * nbytes / _REDUCE_BW


def barrier_time(ctx: CollectiveContext) -> float:
    """Recursive-doubling barrier."""
    inter, intra = ctx.tree_rounds()
    return inter * ctx.net_msg(_BARRIER_BYTES) + intra * ctx.shm_msg(_BARRIER_BYTES)


def bcast_time(ctx: CollectiveContext, nbytes: float) -> float:
    """Binomial-tree broadcast, pipelined for large messages."""
    inter, intra = ctx.tree_rounds()
    if nbytes <= ctx.net.eager_threshold or ctx.p == 1:
        return inter * ctx.net_msg(nbytes) + intra * ctx.shm_msg(nbytes)
    # Large: scatter + ring allgather ~ two full passes of the data over
    # the slowest link plus the tree latency terms.
    bw = ctx.net.bw.at(nbytes) * ctx.net_bw_factor
    pipeline = 2.0 * nbytes * (ctx.p - 1) / ctx.p / bw
    latency_terms = inter * ctx.net_msg(0.0) + intra * ctx.shm_msg(0.0)
    return pipeline + latency_terms


def reduce_time(ctx: CollectiveContext, nbytes: float) -> float:
    """Reduction to a root: broadcast mirror plus combine arithmetic."""
    inter, intra = ctx.tree_rounds()
    return bcast_time(ctx, nbytes) + _reduce_cost(nbytes, inter + intra)


def allreduce_time(ctx: CollectiveContext, nbytes: float) -> float:
    """Recursive doubling (small) or ring reduce-scatter+allgather (large).

    The small-message path is the one the applications hammer: Chaste's
    KSp section is "entirely 4-byte all-reduce operations" and UM's
    Helmholtz solver is dominated by short all-reduces, so their scaling
    on each platform follows ``log2(nnodes) * (latency + hv_extra)``.
    """
    if ctx.p == 1:
        return 0.0
    inter, intra = ctx.tree_rounds()
    if nbytes <= 2048:
        return (
            inter * ctx.net_msg(nbytes)
            + intra * ctx.shm_msg(nbytes)
            + _reduce_cost(nbytes, inter + intra)
        )
    # Ring: two passes of p-1 steps carrying nbytes/p each.
    chunk = nbytes / ctx.p
    return 2.0 * ctx.ring_pass(chunk) + _reduce_cost(nbytes, 1)


def allgather_time(ctx: CollectiveContext, nbytes_contrib: float) -> float:
    """Ring allgather of a ``nbytes_contrib`` block per rank."""
    return ctx.ring_pass(nbytes_contrib)


def reduce_scatter_time(ctx: CollectiveContext, nbytes_total: float) -> float:
    """Ring reduce-scatter of an ``nbytes_total`` buffer (one pass)."""
    if ctx.p == 1:
        return 0.0
    return ctx.ring_pass(nbytes_total / ctx.p) + _reduce_cost(nbytes_total, 1)


def alltoall_time(ctx: CollectiveContext, nbytes_per_rank: float) -> float:
    """Pairwise-exchange all-to-all.

    ``nbytes_per_rank`` is the *total* payload each rank sends (split
    evenly over the ``p`` destinations, self included, as NPB FT/IS do).
    Each rank runs ``p-1`` exchange rounds: ``p - rpn`` with off-node
    partners (NIC shared by ``rpn`` co-resident ranks) and ``rpn - 1``
    with on-node partners.
    """
    if ctx.p == 1:
        return 0.0
    pair = nbytes_per_rank / ctx.p
    remote_rounds = ctx.p - ctx.rpn
    local_rounds = ctx.rpn - 1
    return remote_rounds * ctx.net_msg(pair, link_share=ctx.rpn) + local_rounds * ctx.shm_msg(
        pair
    )


def alltoallv_time(
    ctx: CollectiveContext, total_send: float, max_pair: float | None = None
) -> float:
    """Irregular all-to-all: like :func:`alltoall_time` but the per-round
    message is the *largest* pairwise block (stragglers gate each round)."""
    if ctx.p == 1:
        return 0.0
    pair = max_pair if max_pair is not None else total_send / ctx.p
    remote_rounds = ctx.p - ctx.rpn
    local_rounds = ctx.rpn - 1
    return remote_rounds * ctx.net_msg(pair, link_share=ctx.rpn) + local_rounds * ctx.shm_msg(
        pair
    )


def gather_time(ctx: CollectiveContext, nbytes_contrib: float) -> float:
    """Gather to a root: the root's link serialises off-node blocks."""
    if ctx.p == 1:
        return 0.0
    off_node = ctx.p - ctx.rpn
    on_node = ctx.rpn - 1
    net = ctx.net
    bw = net.bw.at(nbytes_contrib) * ctx.net_bw_factor
    wire = off_node * nbytes_contrib / bw if off_node else 0.0
    lat = (net.latency + ctx.extra_latency + net.o_recv) if off_node else 0.0
    return lat + wire + on_node * ctx.shm_msg(nbytes_contrib) * 0.5


def scatter_time(ctx: CollectiveContext, nbytes_contrib: float) -> float:
    """Scatter from a root (mirror of :func:`gather_time`)."""
    return gather_time(ctx, nbytes_contrib)
