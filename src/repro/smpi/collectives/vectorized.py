"""Vectorized (numpy) mirrors of the analytic collective cost models.

:meth:`Comm.prime_collectives` prices a whole sweep of message sizes for
one communicator in a single numpy pass and seeds the results into the
:class:`~repro.perf.memo.CollectiveMemo` and the fast path's per-comm
duration cache — so the steady-state loop of an OSU/NPB program never
evaluates a scalar cost model at all.

Bit-exactness contract
----------------------
Every function here must return, element for element, the *exact* float
the scalar model in :mod:`repro.smpi.collectives.algorithms` returns for
the same ``(ctx, nbytes)``.  IEEE-754 binary64 arithmetic is
deterministic per operation, so this holds as long as the numpy
expression performs the same operations in the same order on the same
values — which is why the bodies below mirror the scalar code's exact
parenthesisation and branch structure (branches become ``np.where`` over
both fully-evaluated arms).  ``tests/test_fastcollect.py`` sweeps every
model against its scalar twin to pin the contract down.

Only sizes are vectorized; the context is a scalar per call.  Functions
are registered by *memo key* (the cache key namespace of
:meth:`MpiWorld.collective`), so ``scan``/``exscan`` — costed as
all-reduces — are served by the ``"allreduce"`` entry.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.hardware.interconnect import BandwidthCurve
from repro.smpi.collectives.algorithms import _BARRIER_BYTES, _REDUCE_BW, barrier_time

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.collectives.algorithms import CollectiveContext


def _bw_at(curve: BandwidthCurve, n: np.ndarray) -> np.ndarray:
    """Elementwise :meth:`BandwidthCurve.at`."""
    bw = curve.peak * n / (n + curve.n_half)
    if curve.decline:
        loss = curve.decline * n / (n + curve.decline_scale)
        bw = bw * (1.0 - loss)
    return np.where(n <= 0, curve.peak, bw)


def _net_msg(ctx: "CollectiveContext", n: np.ndarray, link_share: int = 1) -> np.ndarray:
    """Elementwise :meth:`CollectiveContext.net_msg`."""
    net = ctx.net
    bw = _bw_at(net.bw, n) * ctx.net_bw_factor
    transfer = (n * link_share) / bw
    if link_share > 1:
        transfer = transfer * net.congestion_factor
    transfer = np.where(n > 0, transfer, 0.0)
    lat = net.latency + ctx.extra_latency
    latency = np.where(n > net.eager_threshold, lat * 3.0, lat)
    return net.o_send + latency + transfer + net.o_recv


def _shm_msg(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    """Elementwise :meth:`CollectiveContext.shm_msg`."""
    shm = ctx.shm
    transfer = np.where(n > 0, n / (_bw_at(shm.bw, n) * ctx.shm_bw_factor), 0.0)
    return shm.o_send + shm.latency + transfer + shm.o_recv


def _ring_pass(ctx: "CollectiveContext", chunk: np.ndarray) -> np.ndarray:
    """Elementwise :meth:`CollectiveContext.ring_pass`."""
    steps = ctx.p - 1
    if steps <= 0:
        return np.zeros_like(chunk)
    if ctx.nnodes > 1:
        return steps * _net_msg(ctx, chunk)
    return steps * _shm_msg(ctx, chunk)


def _reduce_cost(n: np.ndarray, rounds: int) -> np.ndarray:
    return rounds * n / _REDUCE_BW


def barrier_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    """Barrier cost (size-independent; ``n`` only shapes the output)."""
    return np.full(n.shape, barrier_time(ctx), dtype=np.float64)


def bcast_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    inter, intra = ctx.tree_rounds()
    small = inter * _net_msg(ctx, n) + intra * _shm_msg(ctx, n)
    if ctx.p == 1:
        return small
    bw = _bw_at(ctx.net.bw, n) * ctx.net_bw_factor
    pipeline = 2.0 * n * (ctx.p - 1) / ctx.p / bw
    latency_terms = inter * ctx.net_msg(0.0) + intra * ctx.shm_msg(0.0)
    return np.where(n <= ctx.net.eager_threshold, small, pipeline + latency_terms)


def reduce_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    inter, intra = ctx.tree_rounds()
    return bcast_v(ctx, n) + _reduce_cost(n, inter + intra)


def allreduce_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    if ctx.p == 1:
        return np.zeros_like(n)
    inter, intra = ctx.tree_rounds()
    small = (
        inter * _net_msg(ctx, n)
        + intra * _shm_msg(ctx, n)
        + _reduce_cost(n, inter + intra)
    )
    chunk = n / ctx.p
    large = 2.0 * _ring_pass(ctx, chunk) + _reduce_cost(n, 1)
    return np.where(n <= 2048, small, large)


def allgather_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    return _ring_pass(ctx, n)


def reduce_scatter_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    if ctx.p == 1:
        return np.zeros_like(n)
    return _ring_pass(ctx, n / ctx.p) + _reduce_cost(n, 1)


def alltoall_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    if ctx.p == 1:
        return np.zeros_like(n)
    pair = n / ctx.p
    remote_rounds = ctx.p - ctx.rpn
    local_rounds = ctx.rpn - 1
    return remote_rounds * _net_msg(ctx, pair, link_share=ctx.rpn) + local_rounds * _shm_msg(
        ctx, pair
    )


def gather_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    if ctx.p == 1:
        return np.zeros_like(n)
    off_node = ctx.p - ctx.rpn
    on_node = ctx.rpn - 1
    net = ctx.net
    if off_node:
        bw = _bw_at(net.bw, n) * ctx.net_bw_factor
        wire = off_node * n / bw
        lat = net.latency + ctx.extra_latency + net.o_recv
    else:
        wire = 0.0
        lat = 0.0
    return lat + wire + on_node * _shm_msg(ctx, n) * 0.5


def scatter_v(ctx: "CollectiveContext", n: np.ndarray) -> np.ndarray:
    return gather_v(ctx, n)


#: Vectorized model per memo key (the ``memo_key`` namespace of
#: ``MpiWorld.collective``).  ``scan``/``exscan`` share ``"allreduce"``;
#: ``alltoallv`` keys on a per-shape tuple and is not primeable.
VECTORIZED: dict[str, _t.Callable[["CollectiveContext", np.ndarray], np.ndarray]] = {
    "barrier": barrier_v,
    "bcast": bcast_v,
    "reduce": reduce_v,
    "allreduce": allreduce_v,
    "allgather": allgather_v,
    "reduce_scatter": reduce_scatter_v,
    "alltoall": alltoall_v,
    "gather": gather_v,
    "scatter": scatter_v,
}

__all__ = ["VECTORIZED", "_BARRIER_BYTES"]
