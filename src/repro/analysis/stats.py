"""Performance-analysis helpers for the study results.

These functions compute exactly the derived quantities the paper
reports: speedup series (Figs 4-6), times normalised to a reference
platform (Fig 3), and the Table III statistics — computation and
communication ratios relative to a reference platform, communication
percentage, load imbalance and I/O time.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError


def speedup_series(
    times: _t.Mapping[int, float], base_procs: int | None = None
) -> dict[int, float]:
    """Speedups of a ``{nprocs: time}`` map relative to ``base_procs``.

    ``base_procs`` defaults to the smallest process count present (the
    paper uses 1 for NPB and 8 for the applications).
    """
    if not times:
        raise ConfigError("empty time series")
    base = base_procs if base_procs is not None else min(times)
    if base not in times:
        raise ConfigError(f"base process count {base} missing from series")
    t0 = times[base]
    if t0 <= 0:
        raise ConfigError(f"non-positive base time: {t0}")
    return {p: t0 / t for p, t in sorted(times.items())}


def normalized_times(
    times: _t.Mapping[str, float], reference: str
) -> dict[str, float]:
    """Times per platform normalised to ``reference`` (Fig 3 style)."""
    if reference not in times:
        raise ConfigError(f"reference platform {reference!r} missing")
    ref = times[reference]
    if ref <= 0:
        raise ConfigError(f"non-positive reference time: {ref}")
    return {name: t / ref for name, t in times.items()}


@dataclasses.dataclass(frozen=True, slots=True)
class SectionStats:
    """One platform's row of a Table-III-style statistics block."""

    platform: str
    time: float
    rcomp: float
    rcomm: float
    comm_percent: float
    imbalance_percent: float
    io_time: float

    def row(self) -> dict[str, str]:
        return {
            "": self.platform,
            "time(s)": f"{self.time:.0f}",
            "rcomp": f"{self.rcomp:.2f}",
            "rcomm": f"{self.rcomm:.2f}",
            "%comm": f"{self.comm_percent:.0f}",
            "%imbal": f"{self.imbalance_percent:.0f}",
            "I/O (s)": f"{self.io_time:.1f}",
        }


class _Table3Source(_t.Protocol):
    """What :func:`table3_stats` needs from an application result."""

    platform: str

    @property
    def total_time(self) -> float: ...

    def comm_time(self, region: str = ...) -> float: ...

    def compute_time(self, region: str = ...) -> float: ...

    def comm_percent(self, region: str = ...) -> float: ...

    def imbalance_percent(self, region: str = ...) -> float: ...


def table3_stats(
    results: _t.Mapping[str, _t.Any] | _t.Sequence[_t.Any],
    reference_platform: str = "Vayu",
    io_attr: str = "io_time",
) -> list[SectionStats]:
    """Build Table III from application results (one per platform).

    ``results`` is either a ``{label: result}`` mapping (labels like
    ``"EC2-4"`` distinguish placements on the same platform) or a plain
    sequence, in which case each result's ``platform`` names it.
    ``rcomp``/``rcomm`` are the per-rank computation/communication time
    ratios relative to the reference platform, as the paper defines
    them.
    """
    if isinstance(results, _t.Mapping):
        by_name = dict(results)
        ordered = list(results)
    else:
        by_name = {r.platform: r for r in results}
        ordered = [r.platform for r in results]
    if reference_platform not in by_name:
        raise ConfigError(
            f"reference platform {reference_platform!r} not among results "
            f"({sorted(by_name)})"
        )
    ref = by_name[reference_platform]
    ref_comp = ref.compute_time()
    ref_comm = ref.comm_time()
    rows = []
    for label in ordered:
        r = by_name[label]
        rows.append(  # noqa: PERF401 - clarity over comprehension here
            SectionStats(
                platform=label,
                time=r.total_time,
                rcomp=r.compute_time() / ref_comp if ref_comp > 0 else 0.0,
                rcomm=r.comm_time() / ref_comm if ref_comm > 0 else 0.0,
                comm_percent=r.comm_percent(),
                imbalance_percent=r.imbalance_percent(),
                io_time=getattr(r, io_attr, 0.0),
            )
        )
    return rows


def render_stats_table(rows: _t.Sequence[SectionStats]) -> str:
    """Render a Table-III-style block as aligned text."""
    if not rows:
        return "(no rows)"
    dicts = [r.row() for r in rows]
    fields = list(dicts[0].keys())
    widths = {f: max(len(f), *(len(d[f]) for d in dicts)) for f in fields}
    lines = ["  ".join(f.ljust(widths[f]) for f in fields)]
    for d in dicts:
        lines.append("  ".join(d[f].ljust(widths[f]) for f in fields))
    return "\n".join(lines)
