"""Runtime MPI sanitizer: machine-checked correctness of simulated runs.

The paper's cross-platform conclusions rest on IPM profiles of *correct*
MPI executions, and the repository's substitution argument (DESIGN.md)
rests on the simulator being deterministic — so this module hooks the
:class:`~repro.smpi.world.MpiWorld` wire protocol and checks, while a
run executes:

* **wait-for-graph deadlock detection** — when the event queue drains
  with ranks still blocked, the raised
  :class:`~repro.errors.DeadlockError` describes every pending
  operation and names the ranks along any wait-for cycle
  (``rank 0 -> rank 1 -> rank 0``) instead of just counting waiters;
* **collective-sequence mismatch** — all ranks of a communicator must
  issue the *same* collective in the same position of the call
  sequence; op-name or root divergence raises a
  :class:`~repro.errors.SanitizerError` at the moment the second rank
  arrives, and per-rank byte-count divergence is recorded as a warning;
* **unmatched-send / message-leak detection at finalize** — messages
  still sitting in a mailbox (sent but never received) and rendezvous
  sends that never matched are reported once all rank programs end;
* **tag/peer validity** — sends with reserved negative tags, receives
  from out-of-range sources.

Enable per world (``MpiWorld(..., sanitize=True)``), per scope
(:func:`sanitize_scope`, used by ``run_batch(sanitize=True)`` and the
``--sanitize`` CLI flag) or globally via the ``REPRO_SANITIZE``
environment variable (which forked pool workers inherit).  The checks
observe the simulation without scheduling events, so enabling them
never changes virtual timestamps: a sanitized run is bit-identical to
an unsanitized one.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import typing as _t

from repro.errors import DeadlockError, SanitizerError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.comm import Comm
    from repro.smpi.message import Request
    from repro.smpi.world import MpiWorld

#: Wildcard constants, mirrored from :mod:`repro.smpi.comm` (imported
#: lazily there to keep this module free of import cycles).
_ANY = -1


# ---------------------------------------------------------------------------
# Structured output
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class Diagnostic:
    """One sanitizer finding.

    ``check`` is the stable machine name of the rule that fired
    (``deadlock-cycle``, ``collective-mismatch``, ``nbytes-divergence``,
    ``unmatched-send``, ``message-leak``, ``invalid-tag``,
    ``invalid-peer``, ``pending-recv``); ``ranks`` are the world ranks
    involved; ``details`` carries rule-specific structured fields.
    """

    check: str
    severity: str  # "error" | "warning"
    message: str
    ranks: tuple[int, ...] = ()
    details: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        ranks = f" [ranks {','.join(map(str, self.ranks))}]" if self.ranks else ""
        return f"{self.severity.upper()} {self.check}{ranks}: {self.message}"


@dataclasses.dataclass(slots=True)
class SanitizerReport:
    """Everything one sanitized world observed."""

    nprocs: int
    diagnostics: list[Diagnostic] = dataclasses.field(default_factory=list)
    #: Counters of what was checked, for "clean run" evidence.
    sends_checked: int = 0
    recvs_checked: int = 0
    collectives_checked: int = 0

    @property
    def clean(self) -> bool:
        """True when no diagnostic of any severity was recorded."""
        return not self.diagnostics

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def render(self) -> str:
        head = (
            f"sanitizer: {self.nprocs} rank(s), {self.sends_checked} send(s), "
            f"{self.recvs_checked} recv(s), {self.collectives_checked} "
            f"collective op(s) checked"
        )
        if self.clean:
            return head + "; clean"
        return "\n".join([head] + [d.render() for d in self.diagnostics])

    def to_dict(self) -> dict[str, _t.Any]:
        """JSON-ready form of the report."""
        return {
            "nprocs": self.nprocs,
            "sends_checked": self.sends_checked,
            "recvs_checked": self.recvs_checked,
            "collectives_checked": self.collectives_checked,
            "diagnostics": [
                {
                    "check": d.check,
                    "severity": d.severity,
                    "message": d.message,
                    "ranks": list(d.ranks),
                    "details": d.details,
                }
                for d in self.diagnostics
            ],
        }


# ---------------------------------------------------------------------------
# Enablement + report aggregation
# ---------------------------------------------------------------------------

_ENV_FLAG = "REPRO_SANITIZE"
_state = {"enabled": False, "collecting": False}
_collected: list[SanitizerReport] = []


def sanitize_enabled() -> bool:
    """Default ``sanitize=`` for worlds that don't pass one explicitly."""
    if _state["enabled"]:
        return True
    return os.environ.get(_ENV_FLAG, "").strip() not in ("", "0")  # lint-ok: DET008 feature gate, read before simulation starts


@contextlib.contextmanager
def sanitize_scope() -> _t.Iterator[list[SanitizerReport]]:
    """Enable the sanitizer for every world built inside the block.

    Also sets ``REPRO_SANITIZE=1`` so pool workers forked inside the
    scope sanitize too, and collects the reports of worlds finalized in
    *this* process (worker-process reports surface only through the
    errors they raise, which propagate across the pool boundary).
    Yields the live report list.
    """
    prev_enabled = _state["enabled"]
    prev_collecting = _state["collecting"]
    prev_env = os.environ.get(_ENV_FLAG)
    _state["enabled"] = True
    _state["collecting"] = True
    os.environ[_ENV_FLAG] = "1"
    _collected.clear()
    try:
        yield _collected
    finally:
        _state["enabled"] = prev_enabled
        _state["collecting"] = prev_collecting
        if prev_env is None:
            os.environ.pop(_ENV_FLAG, None)
        else:
            os.environ[_ENV_FLAG] = prev_env


def _record_report(report: SanitizerReport) -> None:
    if _state["collecting"]:
        _collected.append(report)  # lint-ok: DET007 observer-side report collection, never in results


# ---------------------------------------------------------------------------
# Pending-operation bookkeeping
# ---------------------------------------------------------------------------

class _PendingOp:
    """One posted-but-incomplete operation of one world rank."""

    __slots__ = ("kind", "rank", "peer", "tag", "nbytes", "name", "posted_at")

    def __init__(
        self,
        kind: str,
        rank: int,
        peer: int = _ANY,
        tag: int = _ANY,
        nbytes: float = 0,
        name: str = "",
        posted_at: float = 0.0,
    ) -> None:
        self.kind = kind  # "send" | "recv" | "coll"
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.name = name
        self.posted_at = posted_at

    def describe(self) -> str:
        if self.kind == "send":
            return (
                f"rank {self.rank}: send to rank {self.peer} "
                f"(tag={self.tag}, {int(self.nbytes)} B) posted at "
                f"t={self.posted_at:.6g}"
            )
        if self.kind == "recv":
            src = "ANY_SOURCE" if self.peer == _ANY else f"rank {self.peer}"
            tag = "ANY_TAG" if self.tag == _ANY else str(self.tag)
            return (
                f"rank {self.rank}: recv from {src} (tag={tag}) posted at "
                f"t={self.posted_at:.6g}"
            )
        return (
            f"rank {self.rank}: in collective {self.name} since "
            f"t={self.posted_at:.6g}"
        )


class _CollRecord:
    """Cross-rank view of one in-flight collective instance."""

    __slots__ = ("name", "root", "group", "arrived", "nbytes_by_rank")

    def __init__(self, name: str, root: int | None, group: tuple[int, ...]) -> None:
        self.name = name
        self.root = root
        self.group = group  # world ranks of the members
        self.arrived: set[int] = set()  # world ranks already in
        self.nbytes_by_rank: dict[int, float] = {}


class MpiSanitizer:
    """Per-world runtime checker (see module docstring).

    All hooks are called by :class:`~repro.smpi.world.MpiWorld` /
    :class:`~repro.smpi.comm.Comm`; user code only reads
    :meth:`report` (or catches :class:`~repro.errors.SanitizerError` /
    the enriched :class:`~repro.errors.DeadlockError`).
    """

    def __init__(self, world: "MpiWorld") -> None:
        self.world = world
        self._report = SanitizerReport(nprocs=world.nprocs)
        #: Live pending ops per world rank.
        self._pending: dict[int, list[_PendingOp]] = {
            r: [] for r in range(world.nprocs)
        }
        #: In-flight collectives by (comm_id, seq).
        self._colls: dict[tuple[int, int], _CollRecord] = {}
        world.engine.deadlock_factory = self.deadlock_error

    # -- shared plumbing ---------------------------------------------------
    def _track(self, op: _PendingOp, request: "Request") -> None:
        ops = self._pending[op.rank]
        ops.append(op)
        request.event.add_callback(lambda _ev, o=op, ops=ops: ops.remove(o))

    def _error(self, diag: Diagnostic) -> SanitizerError:
        self._report.diagnostics.append(diag)
        return SanitizerError(diag.render(), [diag])

    # -- point-to-point hooks ----------------------------------------------
    def on_send(self, src: int, dst: int, nbytes: int, tag: int, request: "Request") -> None:
        """Validate and track one posted send (world ranks)."""
        self._report.sends_checked += 1
        if tag < 0:
            raise self._error(Diagnostic(
                check="invalid-tag", severity="error",
                message=f"send from rank {src} to rank {dst} uses reserved "
                        f"negative tag {tag} (wildcards are receive-only)",
                ranks=(src,), details={"tag": tag, "peer": dst},
            ))
        self._track(
            _PendingOp("send", src, peer=dst, tag=tag, nbytes=nbytes,
                       posted_at=self.world.engine.now),
            request,
        )

    def on_recv(self, rank: int, source: int, tag: int, request: "Request") -> None:
        """Validate and track one posted receive (world ranks)."""
        self._report.recvs_checked += 1
        if source != _ANY and not (0 <= source < self.world.nprocs):
            raise self._error(Diagnostic(
                check="invalid-peer", severity="error",
                message=f"rank {rank} posted a recv from rank {source}, which "
                        f"is outside world size {self.world.nprocs} — it can "
                        "never be matched",
                ranks=(rank,), details={"source": source},
            ))
        if tag < _ANY:
            raise self._error(Diagnostic(
                check="invalid-tag", severity="error",
                message=f"rank {rank} posted a recv with invalid tag {tag}",
                ranks=(rank,), details={"tag": tag},
            ))
        self._track(
            _PendingOp("recv", rank, peer=source, tag=tag,
                       posted_at=self.world.engine.now),
            request,
        )

    # -- collective hooks --------------------------------------------------
    def on_collective(
        self,
        comm: "Comm",
        name: str,
        seq: int,
        root: int | None,
        nbytes: float,
        my_local: int,
        done: _t.Any,
    ) -> None:
        """Check one rank's arrival at collective ``seq`` of ``comm``.

        ``done`` is the completion event shared by all member ranks.
        Raises :class:`~repro.errors.SanitizerError` on op or root
        divergence; byte-count divergence is recorded as a warning when
        the instance completes.
        """
        self._report.collectives_checked += 1
        world_rank = comm.group[my_local]
        ckey = (comm.comm_id, seq)
        rec = self._colls.get(ckey)
        if rec is None:
            rec = _CollRecord(name, root, tuple(comm.group))
            self._colls[ckey] = rec
        elif rec.name != name or rec.root != root:
            first = min(rec.arrived)
            mine = _describe_coll(name, root)
            theirs = _describe_coll(rec.name, rec.root)
            raise self._error(Diagnostic(
                check="collective-mismatch", severity="error",
                message=f"collective sequence mismatch on comm "
                        f"{comm.comm_id} at call #{seq}: rank {world_rank} "
                        f"called {mine} but rank {first} called {theirs}",
                ranks=(first, world_rank),
                details={
                    "comm_id": comm.comm_id, "seq": seq,
                    "ops": {first: theirs, world_rank: mine},
                },
            ))
        rec.arrived.add(world_rank)
        rec.nbytes_by_rank[world_rank] = nbytes
        op = _PendingOp("coll", world_rank, name=f"{name} (comm {comm.comm_id}, call #{seq})",
                        nbytes=nbytes, posted_at=self.world.engine.now)
        ops = self._pending[world_rank]
        ops.append(op)
        done.add_callback(lambda _ev, o=op, ops=ops: ops.remove(o))
        if len(rec.arrived) == len(rec.group):
            self._finish_collective(ckey, rec)

    def _finish_collective(self, ckey: tuple[int, int], rec: _CollRecord) -> None:
        del self._colls[ckey]
        sizes = set(rec.nbytes_by_rank.values())
        if len(sizes) > 1:
            lo, hi = min(sizes), max(sizes)
            self._report.diagnostics.append(Diagnostic(
                check="nbytes-divergence", severity="warning",
                message=f"{rec.name} on comm {ckey[0]} call #{ckey[1]} saw "
                        f"per-rank byte counts diverging from {lo:g} to "
                        f"{hi:g}; collectives should agree on size",
                ranks=tuple(sorted(rec.nbytes_by_rank)),
                details={"nbytes": dict(sorted(rec.nbytes_by_rank.items()))},
            ))

    # -- deadlock ----------------------------------------------------------
    def describe_pending(self) -> list[str]:
        """Human-readable descriptions of every live pending operation,
        in rank order.  Also used by the fault layer to attach context
        to an injected :class:`~repro.errors.RankFailedError`."""
        pending: list[str] = []
        for rank in sorted(self._pending):
            pending.extend(op.describe() for op in self._pending[rank])
        return pending

    def note_injected_failure(
        self, ranks: _t.Sequence[int], at: float, kind: str
    ) -> None:
        """Record that the fault layer killed ``ranks`` at time ``at``.

        A warning (not an error): the blocked operations that follow are
        a consequence of the injected fault, not an application protocol
        bug — which is exactly how the sanitizer distinguishes injected
        failure from genuine deadlock.
        """
        self._report.diagnostics.append(Diagnostic(
            check="injected-rank-failure", severity="warning",
            message=(
                f"injected {kind} at t={at:.6g} killed rank(s) "
                f"{','.join(map(str, sorted(ranks)))}; operations blocked on "
                "them are injected failure, not protocol deadlock"
            ),
            ranks=tuple(sorted(ranks)),
            details={"kind": kind, "time": at},
        ))

    def deadlock_error(self, waiting: int) -> DeadlockError:
        """Build the enriched error for a drained-queue deadlock."""
        pending = self.describe_pending()
        cycle = self._find_cycle()
        diag = Diagnostic(
            check="deadlock-cycle" if cycle else "deadlock", severity="error",
            message=(
                "wait-for cycle: " + " -> ".join(f"rank {r}" for r in cycle)
                if cycle else
                f"{waiting} process(es) blocked with no wait-for cycle "
                "(a peer likely terminated without sending)"
            ),
            ranks=tuple(sorted({r for r, ops in self._pending.items() if ops})),
            details={"pending_ops": list(pending), "cycle": list(cycle or ())},
        )
        self._report.diagnostics.append(diag)
        _record_report(self._report)
        return DeadlockError(waiting, pending_ops=pending, cycle=cycle)

    def _wait_edges(self) -> dict[int, set[int]]:
        """rank -> set of ranks it is waiting on, from the pending ops."""
        edges: dict[int, set[int]] = {}
        for rank, ops in self._pending.items():
            targets: set[int] = set()
            for op in ops:
                if op.kind in ("send", "recv"):
                    if op.peer != _ANY:
                        targets.add(op.peer)
                elif op.kind == "coll":
                    pass  # filled in below from the collective records
            if targets:
                edges.setdefault(rank, set()).update(targets)
        for rec in self._colls.values():
            missing = set(rec.group) - rec.arrived
            for rank in rec.arrived:
                edges.setdefault(rank, set()).update(missing)
        return edges

    def _find_cycle(self) -> tuple[int, ...] | None:
        """First wait-for cycle, as (r0, r1, ..., r0); None when acyclic."""
        edges = self._wait_edges()
        visited: set[int] = set()
        for start in sorted(edges):
            if start in visited:
                continue
            path: list[int] = []
            on_path: dict[int, int] = {}
            node = start
            while node is not None:
                if node in on_path:
                    cycle = path[on_path[node]:] + [node]
                    return tuple(cycle)
                if node in visited:
                    break
                on_path[node] = len(path)
                path.append(node)
                visited.add(node)
                nxt = sorted(edges.get(node, ()))
                node = nxt[0] if nxt else None
        return None

    # -- finalize ----------------------------------------------------------
    def finalize(self) -> SanitizerReport:
        """Run the end-of-run checks and return the report.

        Called by :meth:`MpiWorld.launch` after every rank program has
        returned and the queue has drained.
        """
        diags = self._report.diagnostics
        for rank, box in enumerate(self.world.mailboxes):
            for msg in box.peek_all():
                if msg.is_rts:
                    diags.append(Diagnostic(
                        check="unmatched-send", severity="error",
                        message=f"rendezvous send from rank {msg.source} to "
                                f"rank {rank} (tag={msg.tag}, {msg.nbytes} B) "
                                "was never matched by a receive",
                        ranks=(msg.source, rank),
                        details={"tag": msg.tag, "nbytes": msg.nbytes},
                    ))
                else:
                    diags.append(Diagnostic(
                        check="message-leak", severity="error",
                        message=f"message from rank {msg.source} to rank "
                                f"{rank} (tag={msg.tag}, {msg.nbytes} B) was "
                                "sent but never received",
                        ranks=(msg.source, rank),
                        details={"tag": msg.tag, "nbytes": msg.nbytes},
                    ))
        for rank in sorted(self._pending):
            for op in self._pending[rank]:
                if op.kind == "recv":
                    diags.append(Diagnostic(
                        check="pending-recv", severity="warning",
                        message=f"posted receive never completed: {op.describe()}",
                        ranks=(rank,), details={"peer": op.peer, "tag": op.tag},
                    ))
                elif op.kind == "send":
                    diags.append(Diagnostic(
                        check="unmatched-send", severity="error",
                        message=f"posted send never completed: {op.describe()}",
                        ranks=(rank,), details={"peer": op.peer, "tag": op.tag},
                    ))
        _record_report(self._report)
        return self._report

    def report(self) -> SanitizerReport:
        """The report accumulated so far."""
        return self._report


def _describe_coll(name: str, root: int | None) -> str:
    return f"{name}(root={root})" if root is not None else name
