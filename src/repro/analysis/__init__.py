"""Correctness tooling and derived statistics for the study.

This package is the repository's correctness backstop (see
``docs/analysis.md``):

* :mod:`repro.analysis.sanitizer` — the runtime MPI sanitizer:
  wait-for-graph deadlock reports, collective-sequence mismatch
  detection, unmatched-send/message-leak checks at finalize, tag/peer
  validation.  Enabled via ``MpiWorld(..., sanitize=True)``,
  ``run_batch(..., sanitize=True)``, the ``--sanitize`` CLI flag or the
  ``REPRO_SANITIZE`` environment variable.
* :mod:`repro.analysis.lint` — the static determinism linter
  (``repro lint``): flags wall-clock calls, unseeded randomness,
  ``id()``-ordering, set-iteration-order dependence, unpicklable
  parallel workers and collectives under rank-dependent control flow;
  ``--deep`` adds the interprocedural cache-safety rules
  (DET007-DET011).
* :mod:`repro.analysis.static` — the whole-program analyzer
  (``repro lint --deep``, ``repro fingerprint``): call-graph closures
  of registered cell workers, semantic code fingerprints (the
  journal-v2 / result-cache code-identity key), closure-attributed
  hazard findings, SARIF output and baseline gating.
* :mod:`repro.analysis.stats` — the derived quantities the paper
  reports (speedups, normalised times, Table III statistics); moved
  here from ``repro.core.analysis``, which remains as a shim.
"""

from repro.analysis.lint import (
    RULES,
    LintFinding,
    lint_file,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.analysis.sanitizer import (
    Diagnostic,
    MpiSanitizer,
    SanitizerReport,
    sanitize_enabled,
    sanitize_scope,
)
from repro.analysis.static import (
    ModuleIndex,
    StaticFinding,
    StaticReport,
    WorkerClosure,
    analyze_workers,
    worker_closure,
    worker_fingerprint,
)
from repro.analysis.stats import (
    SectionStats,
    normalized_times,
    render_stats_table,
    speedup_series,
    table3_stats,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "LintFinding",
    "ModuleIndex",
    "MpiSanitizer",
    "SanitizerReport",
    "SectionStats",
    "StaticFinding",
    "StaticReport",
    "WorkerClosure",
    "analyze_workers",
    "lint_file",
    "lint_paths",
    "lint_source",
    "normalized_times",
    "render_findings",
    "render_stats_table",
    "sanitize_enabled",
    "sanitize_scope",
    "speedup_series",
    "table3_stats",
    "worker_closure",
    "worker_fingerprint",
]
