"""Static determinism linter (``repro lint``).

Walks Python sources with the stdlib :mod:`ast` and flags constructs
that can make a simulation, experiment or parallel sweep
non-reproducible.  The rules:

========  ==================================================================
DET001    wall-clock time source (``time.time``/``perf_counter``/
          ``monotonic``, ``datetime.now``/``utcnow``/``today``) — virtual
          time must come from the engine (``comm.wtime()``/``engine.now``)
DET002    unseeded randomness (``random`` module functions, ``random.Random()``
          with no seed, legacy ``numpy.random.*`` global functions,
          ``numpy.random.default_rng()`` with no arguments) — randomness
          must derive from :mod:`repro.sim.rng` or an explicit seed
DET003    ``id()``-dependent ordering (``key=id`` in ``sorted``/``sort``/
          ``min``/``max``) — object addresses differ between processes
DET004    iteration over an unordered ``set`` literal/comprehension/call —
          string hashing is randomised per process; sort before iterating
DET005    parallel cell worker that is not picklable-by-construction
          (``@cell_worker`` on a nested function, or registering a lambda)
DET006    collective call (``yield from comm.bcast(...)`` etc.) under
          rank-dependent control flow — a classic MPI deadlock pattern
DET007    function mutates (or rebinds) a module-level global — hidden
          state that differs between pool workers and across runs
DET008    environment/filesystem read (``os.environ``, ``os.getenv``,
          ``open``, ``read_text``/``read_bytes``) in simulation code —
          results must depend only on the cell payload
DET009    set order escaping into an ordered value (``list(set(...))``,
          ``tuple({...})``, ``",".join(set(...))``)
DET010    cell worker captures an unpicklable value (lambda default
          argument, or returns a lambda)
DET011    collective issued inside ``except``/``finally`` — ranks that
          did not take the handler never post it (sequence mismatch)
DET012    stale ``lint-ok`` suppression: the suppressed rule did not
          fire on that line
========  ==================================================================

Rules DET007–DET011 are *deep* rules: they only run during the
whole-program closure analysis (``repro lint --deep``, backed by
:mod:`repro.analysis.static`), where a finding can be attributed to the
cell workers whose transitive call graph reaches it.  Plain
``repro lint`` keeps to the intra-file rules DET000–DET006 (plus the
DET012 staleness audit of suppressions for those rules).

Suppress a finding by ending the offending line with a comment of the
form ``# lint-ok: DET001 <reason>`` (rule list optional: a bare
``# lint-ok`` suppresses every rule on that line).  A listed rule that
did not actually fire on its line is itself reported (DET012), so
suppressions cannot rot silently.  The linter never imports the code it
checks, so it is safe on broken or slow-to-import files.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import pathlib
import re
import tokenize
import typing as _t

from repro.errors import ConfigError

#: Rule id -> short description (kept in sync with the module docstring).
RULES: dict[str, str] = {
    "DET000": "file does not parse (syntax error)",
    "DET001": "wall-clock time source in simulation/experiment code",
    "DET002": "unseeded random-number generation",
    "DET003": "id()-dependent ordering",
    "DET004": "iteration over an unordered set",
    "DET005": "parallel cell worker is not picklable-by-construction",
    "DET006": "collective call under rank-dependent control flow",
    "DET007": "mutation of a module-level global",
    "DET008": "environment/filesystem read in simulation code",
    "DET009": "set iteration order escapes into an ordered value",
    "DET010": "cell worker captures an unpicklable value",
    "DET011": "collective issued in an except/finally block",
    "DET012": "stale lint-ok suppression (rule did not fire)",
}

#: Rules that only run under the whole-program closure analysis
#: (``repro lint --deep``); plain per-file lint never fires them, and a
#: suppression listing one is not considered stale outside deep mode.
DEEP_RULES: frozenset[str] = frozenset(
    {"DET007", "DET008", "DET009", "DET010", "DET011"}
)

# The collective-method registry lives with the collectives themselves,
# so rule DET006 stays in sync with the Comm API.
from repro.smpi.collectives import COLLECTIVE_METHODS

_WALLCLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
})
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_LEGACY_NP_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "sample",
    "ranf", "seed", "shuffle", "permutation", "choice", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "binomial",
})
_RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes",
})

#: In-place mutators on the builtin containers (DET007).
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
})
#: Attribute calls that read file contents (DET008).
_FS_READ_METHODS = frozenset({"read_text", "read_bytes"})

_SUPPRESS_RE = re.compile(
    r"lint-ok(?:\s*:\s*(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?"
)


@dataclasses.dataclass(frozen=True, slots=True)
class LintFinding:
    """One linter hit, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """``{line: suppressed rule set}``; ``None`` means all rules."""
    out: dict[int, set[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            rules = m.group("rules")
            out[tok.start[0]] = (
                {r.strip() for r in rules.split(",")} if rules else None
            )
    except tokenize.TokenError:  # pragma: no cover - truncated source
        pass
    return out


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` -> ('a','b','c'); None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _mentions_rank(node: ast.AST) -> bool:
    """Does the expression read a rank identity (``comm.rank`` etc.)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "world_rank"):
            return True
        if isinstance(sub, ast.Name) and sub.id in ("rank", "world_rank"):
            return True
    return False


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _FileLinter(ast.NodeVisitor):
    """Single-file rule engine (aliases are tracked file-wide)."""

    def __init__(
        self,
        path: str,
        deep: bool = False,
        module_globals: frozenset[str] = frozenset(),
    ) -> None:
        self.path = path
        self.deep = deep
        #: Names assigned at module level (DET007 mutation targets).
        self.module_globals = module_globals
        self.findings: list[LintFinding] = []
        #: Local names bound to the relevant modules/classes.
        self.time_mods: set[str] = set()
        self.datetime_mods: set[str] = set()
        self.datetime_classes: set[str] = set()
        self.random_mods: set[str] = set()
        self.numpy_mods: set[str] = set()
        self.numpy_random_mods: set[str] = set()
        self.os_mods: set[str] = set()
        #: Local names bound to ``os.environ`` (``from os import environ``).
        self.environ_names: set[str] = set()
        #: Local names bound to ``os.getenv`` (``from os import getenv``).
        self.getenv_names: set[str] = set()
        #: from-imported hazard functions: local name -> rule id.
        self.hazard_names: dict[str, str] = {}
        #: from-imported names needing a seed argument (default_rng, Random).
        self.seed_required: dict[str, str] = {}
        self._func_depth = 0
        self._flagged: set[tuple[int, int, str]] = set()

    # -- helpers ----------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), rule)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.findings.append(LintFinding(
            path=self.path, line=node.lineno, col=node.col_offset + 1,
            rule=rule, message=f"{message} [{RULES[rule]}]",
        ))

    # -- import tracking ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self.time_mods.add(local)
            elif alias.name == "datetime":
                self.datetime_mods.add(local)
            elif alias.name == "random":
                self.random_mods.add(local)
            elif alias.name == "numpy":
                self.numpy_mods.add(local)
            elif alias.name == "numpy.random":
                self.numpy_random_mods.add(alias.asname or "numpy")
                if alias.asname is None:
                    self.numpy_mods.add("numpy")
            elif alias.name == "os":
                self.os_mods.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            local = alias.asname or alias.name
            if node.module == "time" and alias.name in _WALLCLOCK_TIME_FNS:
                self.hazard_names[local] = "DET001"
            elif node.module == "datetime" and alias.name == "datetime":
                self.datetime_classes.add(local)
            elif node.module == "random":
                if alias.name in _RANDOM_MODULE_FNS:
                    self.hazard_names[local] = "DET002"
                elif alias.name == "Random":
                    self.seed_required[local] = "DET002"
            elif node.module == "numpy.random":
                if alias.name in _LEGACY_NP_RANDOM_FNS:
                    self.hazard_names[local] = "DET002"
                elif alias.name == "default_rng":
                    self.seed_required[local] = "DET002"
            elif node.module == "numpy" and alias.name == "random":
                self.numpy_random_mods.add(local)
            elif node.module == "os":
                if alias.name == "environ":
                    self.environ_names.add(local)
                elif alias.name == "getenv":
                    self.getenv_names.add(local)
        self.generic_visit(node)

    # -- DET001 / DET002 / DET003 ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_call_target(node)
        self._check_key_id(node)
        self._check_lambda_worker(node)
        if self.deep:
            self._check_global_mutation_call(node)
            self._check_env_fs_read(node)
            self._check_set_order_escape(node)
        self.generic_visit(node)

    def _check_call_target(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        unseeded = not node.args and not node.keywords
        if len(dotted) == 1:
            name = dotted[0]
            if name in self.hazard_names:
                self._flag(node, self.hazard_names[name], f"call to {name}()")
            elif name in self.seed_required and unseeded:
                self._flag(node, self.seed_required[name],
                           f"{name}() called without a seed")
            return
        head, rest = dotted[0], dotted[1:]
        if head in self.time_mods and len(rest) == 1 and rest[0] in _WALLCLOCK_TIME_FNS:
            self._flag(node, "DET001", f"call to {'.'.join(dotted)}()")
        elif head in self.datetime_classes and len(rest) == 1 \
                and rest[0] in _WALLCLOCK_DATETIME_FNS:
            self._flag(node, "DET001", f"call to {'.'.join(dotted)}()")
        elif head in self.datetime_mods and len(rest) == 2 \
                and rest[0] in ("datetime", "date") \
                and rest[1] in _WALLCLOCK_DATETIME_FNS:
            self._flag(node, "DET001", f"call to {'.'.join(dotted)}()")
        elif head in self.random_mods and len(rest) == 1:
            if rest[0] in _RANDOM_MODULE_FNS:
                self._flag(node, "DET002",
                           f"call to the shared global generator {'.'.join(dotted)}()")
            elif rest[0] == "Random" and unseeded:
                self._flag(node, "DET002", f"{'.'.join(dotted)}() without a seed")
        else:
            # numpy.random.X / np.random.X / npr.X
            np_random = (
                (head in self.numpy_mods and len(rest) == 2 and rest[0] == "random")
                or (head in self.numpy_random_mods and len(rest) == 1)
            )
            if np_random:
                fn = rest[-1]
                if fn in _LEGACY_NP_RANDOM_FNS:
                    self._flag(node, "DET002",
                               f"legacy global numpy RNG call {'.'.join(dotted)}()")
                elif fn == "default_rng" and unseeded:
                    self._flag(node, "DET002",
                               f"{'.'.join(dotted)}() without a seed")

    def _check_key_id(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            v = kw.value
            is_id = isinstance(v, ast.Name) and v.id == "id"
            if not is_id and isinstance(v, ast.Lambda):
                body = v.body
                is_id = (
                    isinstance(body, ast.Call)
                    and isinstance(body.func, ast.Name)
                    and body.func.id == "id"
                )
            if is_id:
                self._flag(node, "DET003",
                           "ordering keyed on id() depends on memory layout")

    # -- DET004 -----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag(node.iter, "DET004",
                       "for-loop over a set; wrap in sorted() for stable order")
        self.generic_visit(node)

    def _check_comprehension(self, node: _t.Any) -> None:
        for gen in node.generators:
            if _is_set_expr(gen.iter):
                self._flag(gen.iter, "DET004",
                           "comprehension over a set; wrap in sorted()")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    # -- DET005 -----------------------------------------------------------
    def _is_cell_worker_deco(self, deco: ast.AST) -> bool:
        if isinstance(deco, ast.Call):
            deco = deco.func
        dotted = _dotted(deco)
        return dotted is not None and dotted[-1] == "cell_worker"

    def _check_lambda_worker(self, node: ast.Call) -> None:
        # cell_worker("name")(lambda ...) — registering an unpicklable worker.
        if not (isinstance(node.func, ast.Call)
                and self._is_cell_worker_deco(node.func)):
            return
        if any(isinstance(a, ast.Lambda) for a in node.args):
            self._flag(node, "DET005",
                       "lambda registered as a cell worker cannot be pickled")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        is_worker = any(
            self._is_cell_worker_deco(d) for d in node.decorator_list
        )
        if self._func_depth > 0 and is_worker:
            self._flag(node, "DET005",
                       f"cell worker {node.name!r} is a nested function; "
                       "workers must be module-level to be picklable")
        if self.deep and is_worker:
            self._check_worker_captures(node)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- DET006 -----------------------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        if _mentions_rank(node.test):
            for sub in ast.walk(node):
                if not isinstance(sub, ast.YieldFrom):
                    continue
                call = sub.value
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in COLLECTIVE_METHODS):
                    self._flag(
                        call, "DET006",
                        f"collective {call.func.attr}() inside rank-dependent "
                        "branch; every rank of the communicator must call it",
                    )
        self.generic_visit(node)

    # -- DET007 (deep): module-level global mutation -----------------------
    def _check_global_mutation_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.module_globals
            and self._func_depth > 0
        ):
            self._flag(node, "DET007",
                       f"in-place mutation of module-level {func.value.id!r}")

    def visit_Global(self, node: ast.Global) -> None:
        if self.deep and self._func_depth > 0:
            names = ", ".join(node.names)
            self._flag(node, "DET007",
                       f"global statement rebinds module-level {names}")
        self.generic_visit(node)

    def _deep_check_store(self, target: ast.AST, node: ast.AST) -> None:
        """Subscript/attribute stores on module-level names (DET007)."""
        if not (self.deep and self._func_depth > 0):
            return
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if (
            isinstance(base, ast.Name)
            and base.id in self.module_globals
            and base is not target  # a bare Name store is a local rebind
        ):
            self._flag(node, "DET007",
                       f"store into module-level {base.id!r}")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._deep_check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._deep_check_store(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._deep_check_store(target, node)
        self.generic_visit(node)

    # -- DET008 (deep): environment / filesystem reads ---------------------
    def _check_env_fs_read(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            head, rest = dotted[0], dotted[1:]
            if head in self.os_mods and rest[:1] == ("getenv",):
                self._flag(node, "DET008", "os.getenv() read")
                return
            if head in self.os_mods and rest[:2] == ("environ", "get"):
                self._flag(node, "DET008", "os.environ read")
                return
            if head in self.environ_names and rest[:1] == ("get",):
                self._flag(node, "DET008", "os.environ read")
                return
            if len(dotted) == 1 and head in self.getenv_names:
                self._flag(node, "DET008", "os.getenv() read")
                return
            if len(dotted) == 1 and head == "open":
                self._flag(node, "DET008", "open() in simulation code")
                return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_READ_METHODS
        ):
            self._flag(node, "DET008",
                       f".{node.func.attr}() file read in simulation code")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.deep and isinstance(node.ctx, ast.Load):
            dotted = _dotted(node.value)
            if dotted is not None and (
                (len(dotted) == 2 and dotted[0] in self.os_mods
                 and dotted[1] == "environ")
                or (len(dotted) == 1 and dotted[0] in self.environ_names)
            ):
                self._flag(node, "DET008", "os.environ[...] read")
        self.generic_visit(node)

    # -- DET009 (deep): set order escaping into an ordered value -----------
    def _check_set_order_escape(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and _is_set_expr(node.args[0])
        ):
            self._flag(node, "DET009",
                       f"{node.func.id}() over a set freezes an unstable "
                       "order; use sorted()")
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and len(node.args) == 1
            and _is_set_expr(node.args[0])
        ):
            self._flag(node, "DET009",
                       "join() over a set freezes an unstable order; "
                       "use sorted()")

    # -- DET010 (deep): unpicklable captures in cell workers ---------------
    def _check_worker_captures(self, node: ast.FunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, ast.Lambda):
                self._flag(default, "DET010",
                           f"cell worker {node.name!r} has a lambda default "
                           "argument; pool workers cannot unpickle it")
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Lambda):
                self._flag(sub, "DET010",
                           f"cell worker {node.name!r} returns a lambda; "
                           "the result cannot cross a process boundary")

    # -- DET011 (deep): collective in except/finally -----------------------
    def visit_Try(self, node: ast.Try) -> None:
        if self.deep:
            blocks = [(h.body, "except") for h in node.handlers]
            if node.finalbody:
                blocks.append((node.finalbody, "finally"))
            for body, kind in blocks:
                for stmt in body:
                    for sub in ast.walk(stmt):
                        if not isinstance(sub, ast.YieldFrom):
                            continue
                        call = sub.value
                        if (isinstance(call, ast.Call)
                                and isinstance(call.func, ast.Attribute)
                                and call.func.attr in COLLECTIVE_METHODS):
                            self._flag(
                                call, "DET011",
                                f"collective {call.func.attr}() inside "
                                f"{kind!r}; ranks that did not take this "
                                "path never post it",
                            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def _module_globals(tree: ast.Module) -> frozenset[str]:
    """Names bound by module-level assignments (DET007 targets)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return frozenset(names)


def lint_source(
    source: str, path: str = "<string>", *, deep: bool = False
) -> list[LintFinding]:
    """Lint one source string; returns the unsuppressed findings.

    ``deep=True`` additionally runs the closure-analysis rules
    DET007–DET011 (normally driven by :mod:`repro.analysis.static`,
    which also attributes their findings to cell workers).  Suppression
    comments whose listed rules did not fire — counting only the rules
    enabled in this mode — are reported as DET012, which is itself never
    suppressible.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(
            path=path, line=exc.lineno or 0, col=(exc.offset or 0),
            rule="DET000", message=f"syntax error: {exc.msg}",
        )]
    linter = _FileLinter(path, deep=deep, module_globals=_module_globals(tree))
    linter.visit(tree)
    suppressed = _suppressions(source)
    fired_by_line: dict[int, set[str]] = {}
    for f in linter.findings:
        fired_by_line.setdefault(f.line, set()).add(f.rule)
    kept = []
    for f in sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule)):
        rules = suppressed.get(f.line, ...)
        if rules is ... or (rules is not None and f.rule not in rules):
            kept.append(f)
    for line, rules in sorted(suppressed.items()):
        fired = fired_by_line.get(line, set())
        if rules is None:
            if not fired:
                kept.append(LintFinding(
                    path=path, line=line, col=1, rule="DET012",
                    message="bare lint-ok with no finding on this line "
                            f"[{RULES['DET012']}]",
                ))
            continue
        for rule in sorted(rules):
            if rule in DEEP_RULES and not deep:
                continue  # only the deep analysis can judge these
            if rule not in fired:
                kept.append(LintFinding(
                    path=path, line=line, col=1, rule="DET012",
                    message=f"suppression lists {rule}, which did not fire "
                            f"on this line [{RULES['DET012']}]",
                ))
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept


def lint_file(
    path: str | pathlib.Path, *, deep: bool = False
) -> list[LintFinding]:
    """Lint one file.

    An unreadable or non-UTF-8 file is reported as a DET000 finding
    carrying the decode/OS error — a lint run must degrade to a finding,
    never crash on bytes it cannot interpret.
    """
    p = pathlib.Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError) as exc:
        return [LintFinding(
            path=str(p), line=0, col=0, rule="DET000",
            message=f"cannot read file: {exc}",
        )]
    return lint_source(source, str(p), deep=deep)


def iter_python_files(paths: _t.Iterable[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    A path that does not exist (or is neither a directory nor a ``.py``
    file) raises :class:`ConfigError` — a lint run over zero files must
    never pass as "clean" just because the cwd was wrong.
    """
    out: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            out.extend(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)
            )
        elif p.is_file() and p.suffix == ".py":
            out.append(p)
        else:
            raise ConfigError(f"lint path {p} is not a directory or .py file")
    return sorted(set(out))


def lint_paths(
    paths: _t.Iterable[str | pathlib.Path], *, deep: bool = False
) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[LintFinding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f, deep=deep))
    return findings


def render_findings(findings: _t.Sequence[LintFinding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    if not findings:
        return "lint: clean"
    lines = [f.render() for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{r} x{n}" for r, n in sorted(by_rule.items()))
    lines.append(f"lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)
