"""Static determinism linter (``repro lint``).

Walks Python sources with the stdlib :mod:`ast` and flags constructs
that can make a simulation, experiment or parallel sweep
non-reproducible.  The rules:

========  ==================================================================
DET001    wall-clock time source (``time.time``/``perf_counter``/
          ``monotonic``, ``datetime.now``/``utcnow``/``today``) — virtual
          time must come from the engine (``comm.wtime()``/``engine.now``)
DET002    unseeded randomness (``random`` module functions, ``random.Random()``
          with no seed, legacy ``numpy.random.*`` global functions,
          ``numpy.random.default_rng()`` with no arguments) — randomness
          must derive from :mod:`repro.sim.rng` or an explicit seed
DET003    ``id()``-dependent ordering (``key=id`` in ``sorted``/``sort``/
          ``min``/``max``) — object addresses differ between processes
DET004    iteration over an unordered ``set`` literal/comprehension/call —
          string hashing is randomised per process; sort before iterating
DET005    parallel cell worker that is not picklable-by-construction
          (``@cell_worker`` on a nested function, or registering a lambda)
DET006    collective call (``yield from comm.bcast(...)`` etc.) under
          rank-dependent control flow — a classic MPI deadlock pattern
========  ==================================================================

Suppress a finding by ending the offending line with a comment of the
form ``# lint-ok: DET001 <reason>`` (rule list optional: a bare
``# lint-ok`` suppresses every rule on that line).  The linter never
imports the code it checks, so it is safe on broken or slow-to-import
files.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import pathlib
import re
import tokenize
import typing as _t

from repro.errors import ConfigError

#: Rule id -> short description (kept in sync with the module docstring).
RULES: dict[str, str] = {
    "DET000": "file does not parse (syntax error)",
    "DET001": "wall-clock time source in simulation/experiment code",
    "DET002": "unseeded random-number generation",
    "DET003": "id()-dependent ordering",
    "DET004": "iteration over an unordered set",
    "DET005": "parallel cell worker is not picklable-by-construction",
    "DET006": "collective call under rank-dependent control flow",
}

# The collective-method registry lives with the collectives themselves,
# so rule DET006 stays in sync with the Comm API.
from repro.smpi.collectives import COLLECTIVE_METHODS

_WALLCLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
})
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_LEGACY_NP_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "sample",
    "ranf", "seed", "shuffle", "permutation", "choice", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "binomial",
})
_RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes",
})

_SUPPRESS_RE = re.compile(
    r"lint-ok(?:\s*:\s*(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?"
)


@dataclasses.dataclass(frozen=True, slots=True)
class LintFinding:
    """One linter hit, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """``{line: suppressed rule set}``; ``None`` means all rules."""
    out: dict[int, set[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            rules = m.group("rules")
            out[tok.start[0]] = (
                {r.strip() for r in rules.split(",")} if rules else None
            )
    except tokenize.TokenError:  # pragma: no cover - truncated source
        pass
    return out


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` -> ('a','b','c'); None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _mentions_rank(node: ast.AST) -> bool:
    """Does the expression read a rank identity (``comm.rank`` etc.)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "world_rank"):
            return True
        if isinstance(sub, ast.Name) and sub.id in ("rank", "world_rank"):
            return True
    return False


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _FileLinter(ast.NodeVisitor):
    """Single-file rule engine (aliases are tracked file-wide)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[LintFinding] = []
        #: Local names bound to the relevant modules/classes.
        self.time_mods: set[str] = set()
        self.datetime_mods: set[str] = set()
        self.datetime_classes: set[str] = set()
        self.random_mods: set[str] = set()
        self.numpy_mods: set[str] = set()
        self.numpy_random_mods: set[str] = set()
        #: from-imported hazard functions: local name -> rule id.
        self.hazard_names: dict[str, str] = {}
        #: from-imported names needing a seed argument (default_rng, Random).
        self.seed_required: dict[str, str] = {}
        self._func_depth = 0
        self._flagged: set[tuple[int, int, str]] = set()

    # -- helpers ----------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), rule)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.findings.append(LintFinding(
            path=self.path, line=node.lineno, col=node.col_offset + 1,
            rule=rule, message=f"{message} [{RULES[rule]}]",
        ))

    # -- import tracking ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self.time_mods.add(local)
            elif alias.name == "datetime":
                self.datetime_mods.add(local)
            elif alias.name == "random":
                self.random_mods.add(local)
            elif alias.name == "numpy":
                self.numpy_mods.add(local)
            elif alias.name == "numpy.random":
                self.numpy_random_mods.add(alias.asname or "numpy")
                if alias.asname is None:
                    self.numpy_mods.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            local = alias.asname or alias.name
            if node.module == "time" and alias.name in _WALLCLOCK_TIME_FNS:
                self.hazard_names[local] = "DET001"
            elif node.module == "datetime" and alias.name == "datetime":
                self.datetime_classes.add(local)
            elif node.module == "random":
                if alias.name in _RANDOM_MODULE_FNS:
                    self.hazard_names[local] = "DET002"
                elif alias.name == "Random":
                    self.seed_required[local] = "DET002"
            elif node.module == "numpy.random":
                if alias.name in _LEGACY_NP_RANDOM_FNS:
                    self.hazard_names[local] = "DET002"
                elif alias.name == "default_rng":
                    self.seed_required[local] = "DET002"
            elif node.module == "numpy" and alias.name == "random":
                self.numpy_random_mods.add(local)
        self.generic_visit(node)

    # -- DET001 / DET002 / DET003 ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_call_target(node)
        self._check_key_id(node)
        self._check_lambda_worker(node)
        self.generic_visit(node)

    def _check_call_target(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        unseeded = not node.args and not node.keywords
        if len(dotted) == 1:
            name = dotted[0]
            if name in self.hazard_names:
                self._flag(node, self.hazard_names[name], f"call to {name}()")
            elif name in self.seed_required and unseeded:
                self._flag(node, self.seed_required[name],
                           f"{name}() called without a seed")
            return
        head, rest = dotted[0], dotted[1:]
        if head in self.time_mods and len(rest) == 1 and rest[0] in _WALLCLOCK_TIME_FNS:
            self._flag(node, "DET001", f"call to {'.'.join(dotted)}()")
        elif head in self.datetime_classes and len(rest) == 1 \
                and rest[0] in _WALLCLOCK_DATETIME_FNS:
            self._flag(node, "DET001", f"call to {'.'.join(dotted)}()")
        elif head in self.datetime_mods and len(rest) == 2 \
                and rest[0] in ("datetime", "date") \
                and rest[1] in _WALLCLOCK_DATETIME_FNS:
            self._flag(node, "DET001", f"call to {'.'.join(dotted)}()")
        elif head in self.random_mods and len(rest) == 1:
            if rest[0] in _RANDOM_MODULE_FNS:
                self._flag(node, "DET002",
                           f"call to the shared global generator {'.'.join(dotted)}()")
            elif rest[0] == "Random" and unseeded:
                self._flag(node, "DET002", f"{'.'.join(dotted)}() without a seed")
        else:
            # numpy.random.X / np.random.X / npr.X
            np_random = (
                (head in self.numpy_mods and len(rest) == 2 and rest[0] == "random")
                or (head in self.numpy_random_mods and len(rest) == 1)
            )
            if np_random:
                fn = rest[-1]
                if fn in _LEGACY_NP_RANDOM_FNS:
                    self._flag(node, "DET002",
                               f"legacy global numpy RNG call {'.'.join(dotted)}()")
                elif fn == "default_rng" and unseeded:
                    self._flag(node, "DET002",
                               f"{'.'.join(dotted)}() without a seed")

    def _check_key_id(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            v = kw.value
            is_id = isinstance(v, ast.Name) and v.id == "id"
            if not is_id and isinstance(v, ast.Lambda):
                body = v.body
                is_id = (
                    isinstance(body, ast.Call)
                    and isinstance(body.func, ast.Name)
                    and body.func.id == "id"
                )
            if is_id:
                self._flag(node, "DET003",
                           "ordering keyed on id() depends on memory layout")

    # -- DET004 -----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag(node.iter, "DET004",
                       "for-loop over a set; wrap in sorted() for stable order")
        self.generic_visit(node)

    def _check_comprehension(self, node: _t.Any) -> None:
        for gen in node.generators:
            if _is_set_expr(gen.iter):
                self._flag(gen.iter, "DET004",
                           "comprehension over a set; wrap in sorted()")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    # -- DET005 -----------------------------------------------------------
    def _is_cell_worker_deco(self, deco: ast.AST) -> bool:
        if isinstance(deco, ast.Call):
            deco = deco.func
        dotted = _dotted(deco)
        return dotted is not None and dotted[-1] == "cell_worker"

    def _check_lambda_worker(self, node: ast.Call) -> None:
        # cell_worker("name")(lambda ...) — registering an unpicklable worker.
        if not (isinstance(node.func, ast.Call)
                and self._is_cell_worker_deco(node.func)):
            return
        if any(isinstance(a, ast.Lambda) for a in node.args):
            self._flag(node, "DET005",
                       "lambda registered as a cell worker cannot be pickled")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._func_depth > 0 and any(
            self._is_cell_worker_deco(d) for d in node.decorator_list
        ):
            self._flag(node, "DET005",
                       f"cell worker {node.name!r} is a nested function; "
                       "workers must be module-level to be picklable")
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- DET006 -----------------------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        if _mentions_rank(node.test):
            for sub in ast.walk(node):
                if not isinstance(sub, ast.YieldFrom):
                    continue
                call = sub.value
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in COLLECTIVE_METHODS):
                    self._flag(
                        call, "DET006",
                        f"collective {call.func.attr}() inside rank-dependent "
                        "branch; every rank of the communicator must call it",
                    )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one source string; returns the unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(
            path=path, line=exc.lineno or 0, col=(exc.offset or 0),
            rule="DET000", message=f"syntax error: {exc.msg}",
        )]
    linter = _FileLinter(path)
    linter.visit(tree)
    suppressed = _suppressions(source)
    kept = []
    for f in sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule)):
        rules = suppressed.get(f.line, ...)
        if rules is ... or (rules is not None and f.rule not in rules):
            kept.append(f)
    return kept


def lint_file(path: str | pathlib.Path) -> list[LintFinding]:
    """Lint one file."""
    p = pathlib.Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def iter_python_files(paths: _t.Iterable[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    A path that does not exist (or is neither a directory nor a ``.py``
    file) raises :class:`ConfigError` — a lint run over zero files must
    never pass as "clean" just because the cwd was wrong.
    """
    out: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            out.extend(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)
            )
        elif p.is_file() and p.suffix == ".py":
            out.append(p)
        else:
            raise ConfigError(f"lint path {p} is not a directory or .py file")
    return sorted(set(out))


def lint_paths(paths: _t.Iterable[str | pathlib.Path]) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[LintFinding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f))
    return findings


def render_findings(findings: _t.Sequence[LintFinding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    if not findings:
        return "lint: clean"
    lines = [f.render() for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{r} x{n}" for r, n in sorted(by_rule.items()))
    lines.append(f"lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)
