"""Whole-program static cache-safety analysis and semantic code fingerprints.

The repo's reproducibility story has two dynamic layers (the runtime MPI
sanitizer and the byte-identity CI guards) and, until now, one *per-file*
static layer (``repro lint``).  This module adds the whole-program layer
that the content-addressed result cache (ROADMAP item 1) requires:

* **Module index** — :class:`ModuleIndex` parses every module under a
  package root with the stdlib :mod:`ast` (nothing is imported) and
  records its top-level definitions (functions, classes, assignments)
  and import bindings.
* **Call-graph closure** — starting from a registered cell worker
  (``@cell_worker`` in :mod:`repro.harness.parallel`), name and
  attribute references are resolved through import bindings — including
  function-local imports, re-exports and relative imports — into the
  transitive set of definitions the worker can reach.
* **Semantic fingerprints** — each definition is hashed over a canonical
  AST dump with docstrings stripped, so the fingerprint is invariant
  under comments, docstrings and formatting but changes with any
  semantic edit.  Folding the sorted per-definition hashes over a
  worker's closure yields its ``code fingerprint``: the cache/journal
  key component that ties a stored result to the exact code that
  produced it (``repro fingerprint``, journal format v2 —
  :mod:`repro.harness.journal`).
* **Interprocedural hazard propagation** — the deep linter rules
  (DET007–DET011, :mod:`repro.analysis.lint`) run over every module a
  worker reaches, and each finding is attributed to the workers whose
  closure contains it; DET001–DET006 stay covered by the per-file scan
  that ``repro lint --deep`` also performs.
* **Reporting & gating** — :class:`StaticReport` renders as text, JSON
  or SARIF 2.1.0, and :func:`new_findings` gates against a committed
  baseline so CI fails only on findings that are actually new.

The analysis is deliberately conservative: a reference it cannot resolve
(builtins, third-party modules, true dynamic dispatch) is ignored, and a
reference that *might* hit a definition (e.g. a class looked up through
a registry dict literal) pulls the whole definition into the closure.
Over-approximating the closure can only make fingerprints more
sensitive, never stale — the safe direction for a cache key.
"""

from __future__ import annotations

import ast
import copy
import dataclasses
import hashlib
import json
import pathlib
import typing as _t

from repro.analysis.lint import (
    DEEP_RULES,
    LintFinding,
    lint_source,
)
from repro.errors import ConfigError

#: Width of every fingerprint this module mints (hex chars of SHA-256).
FINGERPRINT_WIDTH = 32

#: Resolution depth cap for re-export chains (``from .x import y`` hops).
_MAX_HOPS = 16


# ---------------------------------------------------------------------------
# Module index
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class Definition:
    """One top-level definition: a function, class or assignment."""

    module: str     #: dotted module name, e.g. ``repro.harness.parallel``
    qualname: str   #: ``name`` or ``Class.method``
    node: ast.AST   #: the defining AST statement

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.qualname)


#: Import binding: local alias -> (module, attribute-or-None).
_Bindings = dict[str, tuple[str, str | None]]


@dataclasses.dataclass(slots=True)
class _Module:
    name: str
    path: pathlib.Path
    source: str
    tree: ast.Module | None           #: None when the file does not parse
    is_package: bool
    defs: dict[str, Definition] = dataclasses.field(default_factory=dict)
    imports: _Bindings = dataclasses.field(default_factory=dict)


def _import_bindings(
    stmts: _t.Iterable[ast.stmt], modname: str, is_package: bool
) -> _Bindings:
    """Alias map from ``import``/``from ... import`` statements."""
    out: _Bindings = {}
    for node in stmts:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = (alias.name, None)
                else:
                    root = alias.name.split(".")[0]
                    out[root] = (root, None)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                anchor = modname.split(".")
                if not is_package:
                    anchor = anchor[:-1]
                anchor = anchor[: len(anchor) - (node.level - 1)]
                if not anchor:
                    continue  # relative import escaping the package root
                base = ".".join(anchor + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue  # cannot be resolved without importing
                out[alias.asname or alias.name] = (base, alias.name)
    return out


class ModuleIndex:
    """AST index of every module under one package root.

    ``root`` is the package directory (default: the installed
    :mod:`repro` package) and ``package`` its dotted import name.  The
    index never imports the code it describes; files that fail to parse
    are kept (with ``tree=None``) so the deep analysis can surface them
    as DET000 instead of silently shrinking the closure.
    """

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        package: str | None = None,
    ) -> None:
        if root is None:
            import repro

            root = pathlib.Path(repro.__file__).parent
            package = package or "repro"
        self.root = pathlib.Path(root)
        if not self.root.is_dir():
            raise ConfigError(f"package root {self.root} is not a directory")
        self.package = package or self.root.name
        self.modules: dict[str, _Module] = {}
        self._load()

    _default: _t.ClassVar["ModuleIndex | None"] = None

    @classmethod
    def default(cls) -> "ModuleIndex":
        """The cached index over the installed :mod:`repro` package."""
        if cls._default is None:
            cls._default = cls()
        return cls._default

    @classmethod
    def reset_default(cls) -> None:
        """Drop the cached default index (tests, editable installs)."""
        cls._default = None
        _fingerprint_cache.clear()

    # -- construction ------------------------------------------------------
    def _load(self) -> None:
        files = sorted(
            f for f in self.root.rglob("*.py")
            if "__pycache__" not in f.parts
            and not any(part.startswith(".") for part in f.parts)
        )
        for path in files:
            rel = path.relative_to(self.root)
            parts = [self.package] + list(rel.parts[:-1])
            is_package = rel.name == "__init__.py"
            if not is_package:
                parts.append(rel.stem)
            name = ".".join(parts)
            source = path.read_text(encoding="utf-8", errors="replace")
            try:
                tree: ast.Module | None = ast.parse(source, filename=str(path))
            except SyntaxError:
                tree = None
            mod = _Module(name, path, source, tree, is_package)
            if tree is not None:
                mod.imports = _import_bindings(tree.body, name, is_package)
                self._collect_defs(mod, tree)
            self.modules[name] = mod

    def _collect_defs(self, mod: _Module, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.defs[stmt.name] = Definition(mod.name, stmt.name, stmt)
            elif isinstance(stmt, ast.ClassDef):
                mod.defs[stmt.name] = Definition(mod.name, stmt.name, stmt)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qn = f"{stmt.name}.{sub.name}"
                        mod.defs[qn] = Definition(mod.name, qn, sub)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        mod.defs.setdefault(
                            target.id, Definition(mod.name, target.id, stmt)
                        )
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    mod.defs.setdefault(
                        stmt.target.id,
                        Definition(mod.name, stmt.target.id, stmt),
                    )

    # -- resolution --------------------------------------------------------
    def resolve_path(
        self, module: str, parts: _t.Sequence[str], _hops: int = 0
    ) -> Definition | None:
        """Resolve ``module`` + attribute ``parts`` to a definition.

        Walks submodule prefixes, module definitions and re-export
        bindings (bounded by ``_MAX_HOPS``); returns ``None`` for
        anything outside the index.
        """
        if _hops > _MAX_HOPS:
            return None
        parts = list(parts)
        mod = self.modules.get(module)
        while parts:
            name = parts[0]
            if mod is not None:
                d = mod.defs.get(name)
                if d is not None:
                    if len(parts) >= 2 and isinstance(d.node, ast.ClassDef):
                        meth = mod.defs.get(f"{name}.{parts[1]}")
                        return meth or d
                    return d
                binding = mod.imports.get(name)
                if binding is not None:
                    bmod, battr = binding
                    nparts = ([battr] if battr else []) + parts[1:]
                    return self.resolve_path(bmod, nparts, _hops + 1)
            sub = f"{module}.{name}"
            if sub in self.modules:
                module, mod = sub, self.modules[sub]
                parts = parts[1:]
                continue
            return None
        return None  # a bare module reference, not a definition

    def resolve_dotted(
        self,
        mod: _Module,
        scope: _Bindings,
        dotted: tuple[str, ...],
        owner_class: str | None = None,
    ) -> Definition | None:
        """Resolve a dotted reference seen inside ``mod``.

        ``scope`` holds function-local import bindings layered over the
        module's; ``owner_class`` enables ``self.method`` resolution.
        """
        head = dotted[0]
        if head in ("self", "cls") and owner_class is not None and len(dotted) > 1:
            return mod.defs.get(f"{owner_class}.{dotted[1]}")
        binding = scope.get(head) or mod.imports.get(head)
        if binding is not None:
            bmod, battr = binding
            parts = ([battr] if battr else []) + list(dotted[1:])
            return self.resolve_path(bmod, parts)
        d = mod.defs.get(head)
        if d is not None:
            if len(dotted) >= 2 and isinstance(d.node, ast.ClassDef):
                return mod.defs.get(f"{head}.{dotted[1]}") or d
            return d
        return None

    # -- worker discovery --------------------------------------------------
    def workers(self) -> dict[str, Definition]:
        """Registered cell workers: ``{name: defining function}``.

        Discovery is static: any top-level function decorated with
        ``@cell_worker("name")`` anywhere in the package counts, exactly
        mirroring the runtime registry that
        :func:`repro.harness.parallel.cell_worker` builds on import.
        """
        out: dict[str, Definition] = {}
        for modname in sorted(self.modules):
            mod = self.modules[modname]
            if mod.tree is None:
                continue
            for stmt in mod.tree.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for deco in stmt.decorator_list:
                    if not isinstance(deco, ast.Call):
                        continue
                    target = deco.func
                    name_parts = _dotted_name(target)
                    if not name_parts or name_parts[-1] != "cell_worker":
                        continue
                    if deco.args and isinstance(deco.args[0], ast.Constant) \
                            and isinstance(deco.args[0].value, str):
                        out[deco.args[0].value] = mod.defs[stmt.name]
        return out

    # -- closure -----------------------------------------------------------
    def closure(self, roots: _t.Sequence[Definition]) -> list[Definition]:
        """Transitive definitions reachable from ``roots`` (sorted)."""
        seen: dict[tuple[str, str], Definition] = {}
        stack = list(roots)
        while stack:
            d = stack.pop()
            if d.key in seen:
                continue
            seen[d.key] = d
            stack.extend(self._edges(d))
        return [seen[k] for k in sorted(seen)]

    def _edges(self, d: Definition) -> list[Definition]:
        mod = self.modules[d.module]
        node = d.node
        scope = _import_bindings(
            [s for s in ast.walk(node)
             if isinstance(s, (ast.Import, ast.ImportFrom))],
            mod.name, mod.is_package,
        )
        owner_class: str | None = None
        if isinstance(node, ast.ClassDef):
            owner_class = d.qualname
        elif "." in d.qualname:
            owner_class = d.qualname.split(".", 1)[0]
        out: dict[tuple[str, str], Definition] = {}
        for sub in ast.walk(node):
            dotted: tuple[str, ...] | None = None
            if isinstance(sub, ast.Attribute):
                dotted = _dotted_name(sub)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                dotted = (sub.id,)
            if not dotted:
                continue
            target = self.resolve_dotted(mod, scope, dotted, owner_class)
            if target is not None and target.key != d.key:
                out[target.key] = target
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                base_dotted = _dotted_name(base)
                if base_dotted:
                    target = self.resolve_dotted(mod, scope, base_dotted)
                    if target is not None and target.key != d.key:
                        out[target.key] = target
        return [out[k] for k in sorted(out)]


def _dotted_name(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` expression -> ``('a', 'b', 'c')`` (None otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Semantic fingerprints
# ---------------------------------------------------------------------------

def _strip_docstrings(node: ast.AST) -> None:
    """Remove docstring expressions everywhere under ``node`` (in place)."""
    for sub in ast.walk(node):
        body = getattr(sub, "body", None)
        if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Module)) or not body:
            continue
        first = body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            del body[0]


def definition_fingerprint(node: ast.AST) -> str:
    """Canonical semantic hash of one definition.

    The hash is taken over :func:`ast.dump` without source locations and
    with docstrings stripped, so it is invariant under comments,
    docstrings, blank lines and formatting — but any change to the code
    itself (names, constants, structure, decorators, annotations)
    produces a different value.
    """
    clean = copy.deepcopy(node)
    _strip_docstrings(clean)
    blob = ast.dump(clean, include_attributes=False)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_WIDTH]


def fold_fingerprints(items: _t.Iterable[tuple[str, str, str]]) -> str:
    """Order-independent fold of ``(module, qualname, hash)`` triples."""
    lines = sorted(f"{m}:{q}={h}" for m, q, h in items)
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_WIDTH]


@dataclasses.dataclass(frozen=True, slots=True)
class WorkerClosure:
    """One worker's resolved call-graph closure and code fingerprint."""

    worker: str
    root: tuple[str, str]                    #: (module, qualname) of the worker fn
    fingerprint: str
    definitions: tuple[tuple[str, str], ...]  #: sorted (module, qualname) pairs
    modules: tuple[str, ...]                  #: sorted reachable modules

    def describe(self) -> str:
        return (
            f"{self.worker:<16} {self.fingerprint}  "
            f"({len(self.definitions)} definition(s), "
            f"{len(self.modules)} module(s))"
        )


def worker_closure(worker: str, index: ModuleIndex | None = None) -> WorkerClosure:
    """Closure + fingerprint for one registered worker."""
    index = index or ModuleIndex.default()
    workers = index.workers()
    try:
        root = workers[worker]
    except KeyError:
        raise ConfigError(
            f"unknown cell worker {worker!r}; statically registered: "
            f"{sorted(workers)}"
        ) from None
    defs = index.closure([root])
    fingerprint = fold_fingerprints(
        (d.module, d.qualname, definition_fingerprint(d.node)) for d in defs
    )
    return WorkerClosure(
        worker=worker,
        root=root.key,
        fingerprint=fingerprint,
        definitions=tuple(d.key for d in defs),
        modules=tuple(sorted({d.module for d in defs})),
    )


#: Per-process cache for :func:`worker_fingerprint` (the journal hot path).
_fingerprint_cache: dict[str, str | None] = {}


def worker_fingerprint(worker: str) -> str | None:
    """Code fingerprint of ``worker``, or ``None`` if it is not statically
    registered (e.g. a test-local worker defined outside the package).

    This is the journal/cache hook: ``None`` means "no code identity
    available", which the resume logic treats as "do not check" rather
    than "mismatch" — dynamic workers keep their pre-v2 behaviour.
    """
    if worker not in _fingerprint_cache:
        try:
            _fingerprint_cache[worker] = worker_closure(worker).fingerprint
        except ConfigError:
            _fingerprint_cache[worker] = None
    return _fingerprint_cache[worker]


# ---------------------------------------------------------------------------
# Deep analysis: closure-wide hazards, attributed to workers
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class StaticFinding:
    """One deep finding, attributed to the workers whose closure hits it."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    workers: tuple[str, ...]

    def render(self) -> str:
        via = ", ".join(self.workers) if self.workers else "-"
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.message} [workers: {via}]"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class StaticReport:
    """Result of one whole-program analysis pass."""

    closures: tuple[WorkerClosure, ...]
    findings: tuple[StaticFinding, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        modules = sorted({m for c in self.closures for m in c.modules})
        lines = [
            f"static analysis: {len(self.closures)} worker(s), "
            f"{len(modules)} module(s) in closure union",
        ]
        lines.extend(f"  {c.describe()}" for c in self.closures)
        if self.findings:
            lines.extend(f.render() for f in self.findings)
            lines.append(f"deep: {len(self.findings)} finding(s)")
        else:
            lines.append("deep: clean")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, _t.Any]:
        return {
            "workers": [
                {
                    "worker": c.worker,
                    "fingerprint": c.fingerprint,
                    "root": list(c.root),
                    "definitions": len(c.definitions),
                    "modules": list(c.modules),
                }
                for c in self.closures
            ],
            "findings": [dataclasses.asdict(f) for f in self.findings],
        }


def analyze_workers(
    index: ModuleIndex | None = None,
    workers: _t.Sequence[str] | None = None,
) -> StaticReport:
    """Run the whole-program analysis over registered cell workers.

    Computes every requested worker's closure and fingerprint, deep-lints
    each module any closure touches (rules DET007–DET011 plus DET000 for
    unparsable files), and keeps a finding when its enclosing top-level
    definition — or the module body itself — is reachable, attributing
    it to the affected workers.
    """
    index = index or ModuleIndex.default()
    names = sorted(index.workers()) if workers is None else list(workers)
    closures = [worker_closure(w, index) for w in names]

    # module -> top-level qualname -> workers reaching it
    reach: dict[str, dict[str, set[str]]] = {}
    module_workers: dict[str, set[str]] = {}
    for c in closures:
        for modname, qualname in c.definitions:
            top = qualname.split(".", 1)[0]
            reach.setdefault(modname, {}).setdefault(top, set()).add(c.worker)
            module_workers.setdefault(modname, set()).add(c.worker)

    findings: list[StaticFinding] = []
    for modname in sorted(module_workers):
        mod = index.modules[modname]
        raw = lint_source(mod.source, str(mod.path), deep=True)
        # DET012 rides along so a stale suppression of a deep rule in
        # reachable code is surfaced by `repro lint --deep` too.
        deep_raw = [
            f for f in raw
            if f.rule in DEEP_RULES or f.rule in ("DET000", "DET012")
        ]
        if not deep_raw:
            continue
        spans = _toplevel_spans(mod)
        for f in deep_raw:
            owner = _owning_span(spans, f.line)
            if owner is None:
                via = module_workers[modname]  # import-time module body
            else:
                via = reach[modname].get(owner, set())
                if not via:
                    continue  # inside a definition no worker reaches
            findings.append(StaticFinding(
                path=f.path, line=f.line, col=f.col, rule=f.rule,
                message=f.message, workers=tuple(sorted(via)),
            ))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return StaticReport(closures=tuple(closures), findings=tuple(findings))


def _toplevel_spans(mod: _Module) -> list[tuple[int, int, str]]:
    if mod.tree is None:
        return []
    spans = []
    for stmt in mod.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            start = min(
                [stmt.lineno] + [d.lineno for d in stmt.decorator_list]
            )
            spans.append((start, stmt.end_lineno or stmt.lineno, stmt.name))
    return spans


def _owning_span(
    spans: _t.Sequence[tuple[int, int, str]], line: int
) -> str | None:
    for start, end, name in spans:
        if start <= line <= end:
            return name
    return None


# ---------------------------------------------------------------------------
# SARIF + baseline gating
# ---------------------------------------------------------------------------

def to_sarif(
    findings: _t.Sequence[LintFinding | StaticFinding],
    rules: _t.Mapping[str, str],
) -> dict[str, _t.Any]:
    """SARIF 2.1.0 document for ``findings`` (lint and/or deep)."""
    used = sorted({f.rule for f in findings})
    results = []
    for f in findings:
        message = f.message
        workers = getattr(f, "workers", ())
        if workers:
            message += f" [workers: {', '.join(workers)}]"
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": str(f.path).replace("\\", "/")},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": max(f.col, 1),
                    },
                },
            }],
        })
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "https://example.invalid/repro",
                    "rules": [
                        {
                            "id": rule,
                            "shortDescription": {"text": rules.get(rule, rule)},
                        }
                        for rule in used
                    ],
                },
            },
            "results": results,
        }],
    }


def load_baseline(path: str | pathlib.Path) -> set[tuple[str, str]]:
    """Load a committed findings baseline: ``{(path, rule), ...}``.

    The baseline intentionally ignores line numbers — a finding moves
    with unrelated edits; gating is on *new* ``(file, rule)`` pairs.
    """
    p = pathlib.Path(path)
    if not p.exists():
        raise ConfigError(f"baseline file not found: {p}")
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
        rows = data["findings"] if isinstance(data, dict) else data
        return {(str(r["path"]), str(r["rule"])) for r in rows}
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ConfigError(f"malformed baseline {p}: {exc}") from None


def new_findings(
    findings: _t.Sequence[LintFinding | StaticFinding],
    baseline: set[tuple[str, str]],
) -> list[LintFinding | StaticFinding]:
    """Findings not covered by the committed baseline."""
    return [f for f in findings if (str(f.path), f.rule) not in baseline]
