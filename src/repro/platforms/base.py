"""Platform specification and per-run runtime.

A :class:`PlatformSpec` declares everything Table I of the paper lists
for a machine (nodes, CPU, memory, OS, filesystem, interconnect) plus the
calibration constants of the performance models.  A :class:`Platform` is
instantiated per simulation run: it owns the runtime
:class:`~repro.hardware.node.Node` objects, the topology, a hypervisor
instance and the random streams feeding the stochastic models.

The compute-time model
----------------------
``compute_seconds(rank, flops, mem_bytes)`` implements a per-rank
roofline with platform perturbations::

    t_flop = flops / (core_rate * smt_factor(ranks_on_node))
    bw     = socket_bw / ranks_on_socket          # bandwidth sharing
    bw    *= numa_penalty   if hypervisor masks NUMA and node spans sockets
    t_mem  = mem_bytes / bw
    t      = max(t_flop, t_mem)                   # overlap assumption
    t     += os_noise(t) + hypervisor_jitter(t)

The ``max`` (perfect overlap) is the standard roofline assumption; the
calibration constants absorb the real codes' partial overlap.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.hardware.interconnect import FabricSpec
from repro.hardware.node import Node, NodeSpec
from repro.hardware.storage import FilesystemSpec
from repro.hardware.topology import ClusterTopology
from repro.virt.hypervisor import Hypervisor, NoHypervisor
from repro.virt.jitter import OsNoiseModel

if _t.TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.sim.engine import Engine


@dataclasses.dataclass(frozen=True, slots=True)
class PlatformSpec:
    """Declarative description of one experimental platform."""

    name: str
    description: str
    num_nodes: int
    node: NodeSpec
    fabric: FabricSpec
    shm: FabricSpec
    fs: FilesystemSpec
    hypervisor_factory: _t.Callable[[], Hypervisor] = NoHypervisor
    noise: OsNoiseModel = OsNoiseModel()
    #: True when the MPI runtime can and does bind ranks and memory to
    #: sockets (Vayu's OpenMPI enforces NUMA affinity, paper V-C.2).
    numa_affinity_enforced: bool = False
    #: Memory-bandwidth multiplier applied when the hypervisor masks
    #: NUMA and a node's ranks span sockets (remote-access penalty).
    numa_penalty_factor: float = 0.62
    #: Half-width of the per-rank uniform spread around the penalty:
    #: with the topology masked, page placement is a lottery — some
    #: ranks land mostly local, others mostly remote.  The spread is the
    #: source of the "greater degree and ... higher irregularity of load
    #: imbalance" the paper's IPM profiles show on DCC (Fig 7), and the
    #: waits it induces in bulk-synchronous collectives are counted as
    #: MPI time, driving memory-bound CG's communication percentages.
    numa_penalty_spread: float = 0.0
    #: Per-burst multiplicative noise amplitude for *memory-bound* bursts
    #: under masked NUMA: each burst draws ``1 + amp * Exp(1)``.  In a
    #: bulk-synchronous code a different rank stalls each iteration, so
    #: every rank accumulates wait time at the next collective — how the
    #: paper's 68-90% CG communication shares arise on DCC without the
    #: average rank being anywhere near that slow.
    numa_burst_noise: float = 0.0
    #: ISA features the hosts provide (drives packaging checks).
    isa_features: frozenset[str] = frozenset({"sse2", "sse3", "ssse3"})
    os_name: str = "CentOS 5.7"
    interconnect_label: str = ""
    scheduler: str = ""

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError(f"platform needs >= 1 node: {self}")
        if not (0.0 < self.numa_penalty_factor <= 1.0):
            raise ConfigError(f"bad numa_penalty_factor: {self.numa_penalty_factor}")

    @property
    def total_cores(self) -> int:
        """Schedulable core slots across the whole platform."""
        return self.num_nodes * self.node.cpu.schedulable_slots

    def table1_row(self) -> dict[str, str]:
        """This platform's column of the paper's Table I."""
        cpu = self.node.cpu
        cores = cpu.schedulable_slots
        core_note = f"{cores}" + (" (HT)" if cpu.smt_enabled else f" ({cpu.sockets} slots)")
        return {
            "Platform": self.name,
            "# of Nodes": str(self.num_nodes),
            "Model": cpu.model,
            "Clock Spd": f"{cpu.socket.core.clock_hz / 1e9:.2f}GHz",
            "#Cores": core_note,
            "L2 Cache": f"{cpu.socket.l2_cache_bytes >> 20}MB (shared)",
            "Memory per node": f"{self.node.dram_bytes >> 30}GB",
            "Operating System": self.os_name,
            "File System": self.fs.name,
            "Interconnect": self.interconnect_label or self.fabric.name,
        }


class RankComputeModel:
    """Pre-resolved per-rank compute parameters (hot-path cache).

    ``compute_seconds`` is called for every compute burst of every rank,
    so the placement-dependent factors are resolved once after placement
    instead of per call.

    ``cache_share`` is the rank's slice of the socket's last-level cache;
    a burst that declares a ``working_set`` smaller than (or comparable
    to) it re-reads mostly from cache, cutting its DRAM traffic.  The
    quadratic miss form is a standard capacity-miss surrogate: traffic
    falls off sharply once the working set approaches cache size, which
    is what keeps strong scaling of memory-bound kernels (CG, MG) close
    to linear at high process counts on the bare-metal platform.
    """

    __slots__ = ("flop_rate", "mem_bw", "cache_share", "numa_noise")

    #: DRAM-traffic floor: even cache-resident sweeps miss compulsorily.
    MISS_FLOOR = 0.08

    def __init__(
        self,
        flop_rate: float,
        mem_bw: float,
        cache_share: float,
        numa_noise: float = 0.0,
    ) -> None:
        self.flop_rate = flop_rate
        self.mem_bw = mem_bw
        self.cache_share = cache_share
        self.numa_noise = numa_noise

    def miss_factor(self, working_set: float) -> float:
        """Fraction of declared traffic that actually reaches DRAM."""
        if working_set <= 0 or working_set <= self.cache_share:
            return self.MISS_FLOOR
        frac = 1.0 - self.cache_share / working_set
        return max(self.MISS_FLOOR, frac * frac)

    def seconds(
        self, flops: float, mem_bytes: float, working_set: float = 0.0
    ) -> tuple[float, float]:
        """(noise-free burst duration, memory-boundedness ratio).

        The second element is ``t_mem / t_flop`` (0 when there is no
        memory traffic, ``inf`` for pure traffic): 1 is the roofline
        ridge, larger means deeper into the bandwidth-bound regime.
        """
        t_flop = flops / self.flop_rate if flops > 0 else 0.0
        if mem_bytes > 0:
            traffic = mem_bytes
            if working_set > 0:
                traffic *= self.miss_factor(working_set)
            t_mem = traffic / self.mem_bw
        else:
            t_mem = 0.0
        if t_flop >= t_mem:
            ratio = t_mem / t_flop if t_flop > 0 else 0.0
            return t_flop, ratio
        return t_mem, (t_mem / t_flop if t_flop > 0 else float("inf"))


class Platform:
    """Per-run runtime state for a platform."""

    def __init__(self, spec: PlatformSpec, engine: "Engine") -> None:
        self.spec = spec
        self.engine = engine
        self.hypervisor = spec.hypervisor_factory()
        self.nodes = [Node(engine, spec.node, i) for i in range(spec.num_nodes)]
        self.topology = ClusterTopology(self.nodes, spec.fabric, spec.shm)
        self.fs = spec.fs
        rng = engine.rng.child(f"platform:{spec.name}")
        self._net_rng = rng.stream("net")
        self._compute_rng = rng.stream("compute")
        self._numa_rng = rng.stream("numa")
        # Dedicated stream for the OS-noise spike draws, so that noise
        # models differing only in spike parameters consume identical
        # draw counts from the main compute stream (see OsNoiseModel).
        self._noise_spike_rng = rng.stream("noise-spike")
        self._models: dict[int, RankComputeModel] = {}
        self._shm_pressure: dict[int, float] = {}
        #: Fault-injection hooks (a :class:`~repro.faults.FaultInjector`);
        #: ``None`` — the common case — keeps every query a pure
        #: pass-through so fault-free runs stay bit-identical.
        self.fault_hooks: _t.Any = None

    # -- placement-dependent model resolution -----------------------------
    def finalize_placement(self) -> None:
        """Resolve per-rank compute models once all ranks are placed."""
        self._models.clear()
        self._shm_pressure: dict[int, float] = {}
        cpu = self.spec.node.cpu
        core_rate = cpu.socket.core.flop_rate
        for node in self.nodes:
            if not node.ranks:
                continue
            smt_factor = cpu.core_throughput_factor(node.nranks)
            penalized = (
                self.hypervisor.masks_numa
                and not self.spec.numa_affinity_enforced
                and node.spans_sockets()
            )
            max_rps = max(load for load in node.socket_load if load > 0)
            # Intra-node MPI copies share the memory system with the
            # resident ranks; with NUMA masked they also bounce across
            # sockets.  The paper attributes DCC's pathological CG comm
            # percentages on a *single* node to exactly this ("the
            # communication between processes references remote memory
            # frequently", section V-B).
            alpha = 0.45 if penalized else 0.12
            self._shm_pressure[node.index] = 1.0 / (1.0 + alpha * (max_rps - 1))
            numa_rng = self._numa_rng
            # Socket-occupancy scaling: with lightly loaded sockets the
            # memory system absorbs remote accesses (prefetch hides the
            # latency), so the penalty only develops as sockets fill.
            phys = cpu.physical_cores
            load_frac = (
                (min(node.nranks, phys) - 1) / (phys - 1) if phys > 1 else 1.0
            )
            for rank in node.ranks:
                socket = node.rank_socket[rank]
                share = max(1, node.ranks_on_socket(socket))
                bw = cpu.socket.mem_bw / share
                cache_share = cpu.socket.l2_cache_bytes / share
                numa_noise = 0.0
                if penalized and load_frac > 0:
                    base = self.spec.numa_penalty_factor
                    factor = 1.0 - (1.0 - base) * load_frac
                    spread = self.spec.numa_penalty_spread * load_frac
                    if spread > 0:
                        lo = max(0.05, factor - spread)
                        hi = min(1.0, factor + spread)
                        factor = float(numa_rng.uniform(lo, hi))
                    bw *= factor
                    numa_noise = self.spec.numa_burst_noise * load_frac
                self._models[rank] = RankComputeModel(
                    core_rate * smt_factor, bw, cache_share, numa_noise
                )

    def shm_pressure(self, node_index: int) -> float:
        """Intra-node communication bandwidth factor for one node."""
        return self._shm_pressure.get(node_index, 1.0)

    def worst_shm_pressure(self) -> float:
        """The smallest (worst) pressure factor over occupied nodes."""
        return min(self._shm_pressure.values()) if self._shm_pressure else 1.0

    def compute_model(self, rank: int) -> RankComputeModel:
        """The resolved compute model for ``rank``."""
        try:
            return self._models[rank]
        except KeyError:
            raise ConfigError(
                f"rank {rank} has no compute model; was finalize_placement called?"
            ) from None

    # -- performance queries ----------------------------------------------
    #: NUMA-noise weight per access pattern: hardware prefetch hides
    #: remote-memory latency for streaming sweeps, but random sparse
    #: gathers (CG's SpMV, IS's ranking scatter) eat it raw — which is
    #: why the paper sees CG collapse on one DCC node while FT/MG/BT
    #: stay healthy until the job spans GigE.
    ACCESS_NOISE_WEIGHT = {"stream": 0.15, "random": 1.0}

    def compute_seconds(
        self,
        rank: int,
        flops: float,
        mem_bytes: float = 0.0,
        working_set: float = 0.0,
        access: str = "stream",
    ) -> float:
        """Duration of a compute burst on ``rank``, noise included."""
        model = self.compute_model(rank)
        base, boundedness = model.seconds(flops, mem_bytes, working_set)
        if base <= 0.0:
            return 0.0
        if boundedness > 1.0 and model.numa_noise > 0.0:
            try:
                weight = self.ACCESS_NOISE_WEIGHT[access]
            except KeyError:
                raise ConfigError(
                    f"unknown access pattern {access!r}; expected "
                    f"{sorted(self.ACCESS_NOISE_WEIGHT)}"
                ) from None
            # Stall noise grows with how deep into the bandwidth-bound
            # regime the burst sits.
            depth = min(1.0, (boundedness - 1.0) / 2.5)
            base *= 1.0 + model.numa_noise * weight * depth * float(
                self._compute_rng.exponential(1.0)
            )
        noisy = base + self.spec.noise.sample(
            self._compute_rng, base, spike_rng=self._noise_spike_rng
        )
        noisy += self.hypervisor.compute_jitter(self._compute_rng, base)
        if self.fault_hooks is not None:
            noisy += self.fault_hooks.stolen_extra(self.engine.now, base)
        return noisy

    # -- replay safety ------------------------------------------------------
    def replay_unsafe_reason(self) -> str | None:
        """Why iteration replay must not engage here, or ``None`` if safe.

        Replay (:mod:`repro.perf.replay`) extrapolates one captured
        steady-state iteration; that is only sound when every cost on
        this platform is a pure function of its inputs.  Any sampled
        perturbation — OS noise, hypervisor jitter, masked-NUMA burst
        noise, fault windows — makes iterations genuinely distinct, so
        the recorder stays off and every iteration is simulated.
        Call after placement: per-rank noise amplitudes are resolved by
        :meth:`finalize_placement`.
        """
        noise = self.spec.noise
        if noise.frac != 0.0 or noise.spike_prob != 0.0:
            return f"OS-noise model is stochastic ({noise!r})"
        if not self.hypervisor.deterministic:
            return f"hypervisor samples jitter ({self.hypervisor.name})"
        if any(m.numa_noise != 0.0 for m in self._models.values()):
            return "masked-NUMA burst noise is stochastic"
        if self.fault_hooks is not None:
            return "fault-injection hooks are installed"
        return None

    def replay_safe(self) -> bool:
        """True when every performance model here is draw-free."""
        return self.replay_unsafe_reason() is None

    def net_extra_latency(self) -> float:
        """Sample the hypervisor's extra network latency for one message."""
        extra = self.hypervisor.net_extra_latency(self._net_rng)
        if self.fault_hooks is not None:
            extra += self.fault_hooks.net_extra_latency_at(self.engine.now)
        return extra

    def net_serialize(self, nbytes: int) -> float:
        """NIC serialisation time for an inter-node message."""
        t = self.spec.fabric.serialize_time(nbytes) / self.hypervisor.net_bw_factor()
        if self.fault_hooks is not None:
            t *= self.fault_hooks.net_time_factor(self.engine.now)
        return t

    @property
    def net_rng(self) -> "np.random.Generator":
        """Random stream used by network-level stochastic models."""
        return self._net_rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Platform {self.spec.name} nodes={self.spec.num_nodes}>"
