"""DCC — the NCI-NF private VMware cluster (paper Table I, col 1).

Eight Dell M610 blades, each hosting exactly one guest VM under VMware
ESX 4.0 with all physical resources (two quad-core Xeon E5520, 40 GB)
allocated to it; no oversubscription.  Guest networking uses the Intel
E1000 *driver* (a 1 GigE device model) through the ESX vSwitch, whose
two 10 GigE uplinks are channel-bonded; filesystems are NFS mounts from
an external storage cluster.

Calibration notes
-----------------
* ``flops_per_cycle = 1.00`` at 2.27 GHz — DCC is the Fig 3 baseline
  (all normalisations are w.r.t. DCC serial runs).
* ``mem_bw = 11.5 GB/s`` per socket — sustained triad-class bandwidth of
  Nehalem-EP with the E5520's DDR3-800 configuration.
* GigE vNIC: ~195 MB/s effective peak (paper Fig 1: "peak bandwidth of
  ~190 MB/s"); small-message latency dominated by the vSwitch hop plus a
  scheduling-delay tail (Fig 2's fluctuating DCC curve).
* ESX masks NUMA: "the VMware ESX hypervisor masks NUMA effects from
  guest VMs" (paper V-B), so memory-bound codes pay
  ``numa_penalty_factor`` once a node's ranks span both sockets — this
  is what makes CG's speedup drop at 8 processes on DCC (Fig 4).
* E5520 is Nehalem and has SSE4.2; the paper's SSE4 incident was about a
  *different* non-ubiquitous feature path on one application, which we
  conservatively model by leaving "sse4" out of the guest-visible
  feature set (hypervisor-filtered CPUID), so the packaging check in
  :mod:`repro.cloud.packaging` reproduces the failure mode.
"""

from __future__ import annotations

from repro.hardware.cpu import CoreSpec, CpuSpec, SocketSpec
from repro.hardware.interconnect import EthernetFabric, SharedMemoryFabric
from repro.hardware.node import NodeSpec
from repro.hardware.storage import NFS_DCC
from repro.platforms.base import PlatformSpec
from repro.virt.esx import VmwareEsx
from repro.virt.jitter import STOCK_GUEST_VM

_E5520 = CoreSpec(clock_hz=2.27e9, flops_per_cycle=1.00, sse4=False)

_SOCKET = SocketSpec(
    cores=4,
    core=_E5520,
    l2_cache_bytes=8 << 20,
    mem_bw=11.5e9,
)

_CPU = CpuSpec(
    model="Intel Xeon E5520",
    sockets=2,
    socket=_SOCKET,
    smt=2,
    smt_enabled=False,  # the guest VM is given 8 vCPUs = 8 physical cores
)

_NODE = NodeSpec(name="dcc", cpu=_CPU, dram_bytes=40 << 30)

DCC = PlatformSpec(
    name="DCC",
    description="NCI-NF private VMware ESX cluster, E1000 vNIC over GigE, NFS",
    num_nodes=8,
    node=_NODE,
    fabric=EthernetFabric(
        "1 GigE (E1000 vNIC)",
        latency=25e-6,
        peak_bw=196e6,
        n_half=2 * 1024,  # ~10 us per-packet E1000 emulation cost
        o_send=7e-6,
        o_recv=7e-6,
        eager_threshold=64 * 1024,
    ),
    shm=SharedMemoryFabric(peak_bw=2.6e9),
    fs=NFS_DCC,
    hypervisor_factory=VmwareEsx,
    noise=STOCK_GUEST_VM,
    numa_affinity_enforced=False,
    numa_penalty_factor=0.94,
    numa_penalty_spread=0.05,
    numa_burst_noise=0.35,
    isa_features=frozenset({"sse2", "sse3", "ssse3"}),
    os_name="Centos 5.7",
    interconnect_label="1GigE",
    scheduler="(dedicated VMs)",
)
