"""Registry of named platforms and the Table-I report generator."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.platforms.base import PlatformSpec
from repro.platforms.dcc import DCC
from repro.platforms.ec2 import EC2
from repro.platforms.vayu import VAYU

_REGISTRY: dict[str, PlatformSpec] = {
    "vayu": VAYU,
    "dcc": DCC,
    "ec2": EC2,
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform spec by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown platform {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_platforms() -> list[PlatformSpec]:
    """All registered platforms in the paper's column order (DCC, EC2, Vayu)."""
    return [DCC, EC2, VAYU]


def register_platform(spec: PlatformSpec) -> None:
    """Add a user-defined platform to the registry."""
    key = spec.name.lower()
    if key in _REGISTRY:
        raise ConfigError(f"platform {spec.name!r} already registered")
    _REGISTRY[key] = spec


def platform_table(specs: list[PlatformSpec] | None = None) -> str:
    """Render the paper's Table I for ``specs`` (default: all platforms)."""
    specs = specs if specs is not None else all_platforms()
    rows = [spec.table1_row() for spec in specs]
    fields = list(rows[0].keys())
    lines: list[str] = []
    # First column is the field name, then one column per platform.
    name_w = max(len(f) for f in fields)
    col_ws = [max(len(r[f]) for f in fields) for r in rows]
    for f in fields:
        cells = [r[f].ljust(w) for r, w in zip(rows, col_ws)]
        lines.append(f"{f.ljust(name_w)}  " + "  ".join(cells))
    return "\n".join(lines)
