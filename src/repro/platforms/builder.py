"""Declarative builder for user-defined platforms.

The three paper platforms are hand-calibrated, but the study API is
general: :func:`make_platform` assembles a :class:`PlatformSpec` from
named building blocks so users can model their own cluster (or
counterfactuals — "Vayu with GigE", "DCC without a hypervisor") in a few
lines::

    from repro.platforms.builder import make_platform

    spec = make_platform(
        "mycluster", num_nodes=16, clock_ghz=2.6, cores_per_socket=8,
        fabric="10gige", hypervisor="none", filesystem="lustre",
    )
    result = get_benchmark("cg").run(spec, 64)
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.hardware.cpu import CoreSpec, CpuSpec, SocketSpec
from repro.hardware.interconnect import (
    EthernetFabric,
    FabricSpec,
    InfinibandFabric,
    SharedMemoryFabric,
)
from repro.hardware.node import NodeSpec
from repro.hardware.storage import FilesystemSpec, LUSTRE_VAYU, NFS_DCC
from repro.platforms.base import PlatformSpec
from repro.virt.esx import VmwareEsx
from repro.virt.hypervisor import Hypervisor, NoHypervisor
from repro.virt.jitter import OsNoiseModel, QUIET_HPC_NODE, STOCK_GUEST_VM
from repro.virt.xen import XenHvm

#: Named fabric presets (factories so each call owns its spec).
_FABRICS: dict[str, _t.Callable[[], FabricSpec]] = {
    "gige": lambda: EthernetFabric("1 GigE", latency=30e-6, peak_bw=118e6,
                                   n_half=2048),
    "10gige": lambda: EthernetFabric("10 GigE", latency=12e-6, peak_bw=1.15e9,
                                     n_half=4096),
    "qdr-ib": lambda: InfinibandFabric(),
    "fdr-ib": lambda: InfinibandFabric("FDR IB", latency=1.0e-6, peak_bw=6.0e9),
}

#: Named hypervisor presets.
_HYPERVISORS: dict[str, _t.Callable[[], Hypervisor]] = {
    "none": NoHypervisor,
    "esx": VmwareEsx,
    "xen": XenHvm,
}

#: Named filesystem presets.
_FILESYSTEMS: dict[str, FilesystemSpec] = {
    "nfs": NFS_DCC,
    "lustre": LUSTRE_VAYU,
}


def _pick(table: _t.Mapping[str, _t.Any], key: str, what: str) -> _t.Any:
    try:
        return table[key.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown {what} {key!r}; available: {sorted(table)}"
        ) from None


def make_platform(
    name: str,
    *,
    num_nodes: int,
    clock_ghz: float,
    cores_per_socket: int = 4,
    sockets: int = 2,
    flops_per_cycle: float = 1.0,
    mem_bw_gbs: float = 14.0,
    cache_mb: int = 8,
    dram_gb: int = 32,
    smt_enabled: bool = False,
    fabric: str | FabricSpec = "10gige",
    hypervisor: str | _t.Callable[[], Hypervisor] = "none",
    filesystem: str | FilesystemSpec = "nfs",
    noise: OsNoiseModel | None = None,
    numa_affinity_enforced: bool | None = None,
    sse4: bool = True,
    description: str = "",
) -> PlatformSpec:
    """Assemble a :class:`PlatformSpec` from presets and scalars.

    Defaults follow sensible 2012-era commodity-cluster values; pass a
    concrete :class:`FabricSpec`/:class:`FilesystemSpec`/hypervisor
    factory to override any preset.
    """
    if num_nodes < 1 or clock_ghz <= 0:
        raise ConfigError(f"invalid platform shape: nodes={num_nodes}, clock={clock_ghz}")
    core = CoreSpec(clock_hz=clock_ghz * 1e9, flops_per_cycle=flops_per_cycle,
                    sse4=sse4)
    socket = SocketSpec(
        cores=cores_per_socket,
        core=core,
        l2_cache_bytes=cache_mb << 20,
        mem_bw=mem_bw_gbs * 1e9,
    )
    cpu = CpuSpec(model=f"{name} CPU", sockets=sockets, socket=socket,
                  smt=2, smt_enabled=smt_enabled)
    fabric_spec = fabric if isinstance(fabric, FabricSpec) else _pick(
        _FABRICS, fabric, "fabric")()
    hv_factory = hypervisor if callable(hypervisor) else _pick(
        _HYPERVISORS, hypervisor, "hypervisor")
    fs_spec = filesystem if isinstance(filesystem, FilesystemSpec) else _pick(
        _FILESYSTEMS, filesystem, "filesystem")
    bare_metal = isinstance(hv_factory(), NoHypervisor)
    if numa_affinity_enforced is None:
        numa_affinity_enforced = bare_metal
    return PlatformSpec(
        name=name,
        description=description or f"user-defined platform {name!r}",
        num_nodes=num_nodes,
        node=NodeSpec(name=name.lower(), cpu=cpu, dram_bytes=dram_gb << 30),
        fabric=fabric_spec,
        shm=SharedMemoryFabric(),
        fs=fs_spec,
        hypervisor_factory=hv_factory,
        noise=noise or (QUIET_HPC_NODE if bare_metal else STOCK_GUEST_VM),
        numa_affinity_enforced=numa_affinity_enforced,
        numa_penalty_spread=0.0 if bare_metal else 0.05,
        numa_burst_noise=0.0 if bare_metal else 0.2,
        isa_features=frozenset(
            {"sse2", "sse3", "ssse3"} | ({"sse4"} if sse4 else set())
        ),
        interconnect_label=fabric_spec.name,
    )
