"""Concrete experimental platforms (paper Table I).

Three calibrated platform models:

* :data:`~repro.platforms.vayu.VAYU` — the NCI-NF Sun/Oracle
  supercomputer: bare metal, QDR InfiniBand, Lustre;
* :data:`~repro.platforms.dcc.DCC` — the private VMware cluster: ESX
  hypervisor, E1000 vNIC over GigE, NFS;
* :data:`~repro.platforms.ec2.EC2` — Amazon cc1.4xlarge StarCluster:
  Xen, placement-group 10 GigE, NFS, HyperThreading exposed.

Use :func:`get_platform` to look one up by name, or build a
:class:`Platform` runtime directly from a spec.
"""

from repro.platforms.base import Platform, PlatformSpec, RankComputeModel
from repro.platforms.registry import all_platforms, get_platform, platform_table
from repro.platforms.vayu import VAYU
from repro.platforms.dcc import DCC
from repro.platforms.ec2 import EC2

__all__ = [
    "DCC",
    "EC2",
    "Platform",
    "PlatformSpec",
    "RankComputeModel",
    "VAYU",
    "all_platforms",
    "get_platform",
    "platform_table",
]
