"""Vayu — the NCI National Facility supercomputer (paper Table I, col 3).

1492 Sun/Oracle X6275 blades, two quad-core Xeon X5570 (Nehalem-EP,
2.93 GHz) per node, 24 GB RAM, QDR InfiniBand fat tree, Lustre, ANUPBS
suspend-resume scheduler.  Ranked #64 on the June 2011 Top500.

Calibration notes
-----------------
* ``flops_per_cycle = 1.10`` — sustained rate for the CFD/solver workload
  family; together with DCC's 1.00 it yields a serial-speed ratio of
  (2.93*1.10)/(2.27*1.00) = 1.42, matching the ~0.7 normalised Vayu bars
  of the paper's Fig 3 and the rcomp = 1.37 of Table III.
* ``mem_bw = 16 GB/s`` per socket — sustained triad-class bandwidth of
  Nehalem-EP with DDR3-1333 (X5570 has ~2x the E5520's sustained
  bandwidth, which is why memory-bound kernels normalise below the clock
  ratio in Fig 3).
* QDR IB: 1.3 us one-way latency, 3.2 GB/s effective peak — the paper's
  Fig 1 shows Vayu "more than one order of magnitude" above EC2's
  ~560 MB/s for all message sizes, and Fig 2 shows microsecond-class
  latency.
* NUMA affinity enforced: "NUMA affinity is enforced by the version of
  OpenMPI used on Vayu" (paper V-C.2), hence no NUMA penalty.
* SSE4 present (Nehalem) — binaries compiled here with SSE4 enabled fail
  on pre-Nehalem hosts, the packaging pitfall of section V-C.
"""

from __future__ import annotations

from repro.hardware.cpu import CoreSpec, CpuSpec, SocketSpec
from repro.hardware.interconnect import InfinibandFabric, SharedMemoryFabric
from repro.hardware.node import NodeSpec
from repro.hardware.storage import LUSTRE_VAYU
from repro.platforms.base import PlatformSpec
from repro.virt.hypervisor import NoHypervisor
from repro.virt.jitter import QUIET_HPC_NODE

_X5570 = CoreSpec(clock_hz=2.93e9, flops_per_cycle=1.10, sse4=True)

_SOCKET = SocketSpec(
    cores=4,
    core=_X5570,
    l2_cache_bytes=8 << 20,
    mem_bw=16e9,
)

_CPU = CpuSpec(
    model="Intel Xeon X5570",
    sockets=2,
    socket=_SOCKET,
    smt=2,
    smt_enabled=False,  # HT disabled on Vayu compute nodes (8 cores seen)
)

_NODE = NodeSpec(name="vayu", cpu=_CPU, dram_bytes=24 << 30)

VAYU = PlatformSpec(
    name="Vayu",
    description="NCI-NF Sun/Oracle X6275 cluster, QDR InfiniBand, Lustre",
    num_nodes=16,  # ample subset of the 1492-node machine for <=128-rank runs
    node=_NODE,
    fabric=InfinibandFabric(
        "QDR IB",
        latency=1.3e-6,
        peak_bw=3.2e9,
        n_half=1024,  # ~0.3 us per-packet HCA cost
        o_send=0.3e-6,
        o_recv=0.3e-6,
        eager_threshold=12 * 1024,
    ),
    shm=SharedMemoryFabric(peak_bw=3.2e9),
    fs=LUSTRE_VAYU,
    hypervisor_factory=NoHypervisor,
    noise=QUIET_HPC_NODE,
    numa_affinity_enforced=True,
    isa_features=frozenset({"sse2", "sse3", "ssse3", "sse4"}),
    os_name="CentOS 5.7",
    interconnect_label="QDR IB",
    scheduler="ANUPBS (suspend-resume)",
)
