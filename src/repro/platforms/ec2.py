"""EC2 — Amazon cc1.4xlarge StarCluster (paper Table I, col 2).

Four cluster-compute instances in a placement group in the US-East
(Virginia) data centre: two quad-core Xeon X5570 per instance with
HyperThreading *enabled and exposed*, so the guest sees 16 cores; 20 GB
RAM; full-bisection 10 GigE inside the placement group; Xen hypervisor;
NFS shared from the StarCluster master.

Calibration notes
-----------------
* Same X5570 silicon as Vayu (``flops_per_cycle = 1.10``), which is why
  the paper finds "computation speed was similar to Vayu provided that
  the nodes were not fully subscribed" (Table III, EC2-4 column).
* HT exposed: ``smt_enabled=True`` with ``smt_yield = 1.25`` — two
  hyperthreads retire ~25% more than one, so 16 ranks/node run each rank
  at ~0.62x a full core.  This produces the paper's signature EC2
  behaviours: NPB kernels "drop in performance at 16 cores rather than
  the expected 32" and UM's 4-node runs are "almost twice as fast" than
  2-node runs at 32 cores.
* 10 GigE through Xen: ~590 MB/s effective peak with a mild decline past
  ~1 MB (Fig 1 shows ~560 MB/s at 256 KB and a droop after), ~45 us
  one-way small-message cost, stable (Fig 2's smooth EC2 curve).
* 20 GB per node is the paper's reason UM "could not be run on fewer
  than 2 nodes (for 24 processes, three nodes had to be used)" — the
  memory constraint is enforced by the application drivers.
"""

from __future__ import annotations

from repro.hardware.cpu import CoreSpec, CpuSpec, SocketSpec
from repro.hardware.interconnect import EthernetFabric, SharedMemoryFabric
from repro.hardware.node import NodeSpec
from repro.hardware.storage import NFS_EC2
from repro.platforms.base import PlatformSpec
from repro.virt.jitter import STOCK_GUEST_VM
from repro.virt.xen import XenHvm

_X5570 = CoreSpec(clock_hz=2.93e9, flops_per_cycle=1.10, sse4=True)

_SOCKET = SocketSpec(
    cores=4,
    core=_X5570,
    l2_cache_bytes=8 << 20,
    mem_bw=16e9,
)

_CPU = CpuSpec(
    model="Intel Xeon X5570",
    sockets=2,
    socket=_SOCKET,
    smt=2,
    smt_enabled=True,  # the guest schedules on 16 hardware threads
    smt_yield=1.25,
)

_NODE = NodeSpec(name="ec2", cpu=_CPU, dram_bytes=20 << 30)

EC2 = PlatformSpec(
    name="EC2",
    description="Amazon cc1.4xlarge StarCluster, placement group, 10 GigE, Xen",
    num_nodes=4,
    node=_NODE,
    fabric=EthernetFabric(
        "10 GigE (Xen)",
        latency=22e-6,
        peak_bw=590e6,
        n_half=4 * 1024,  # ~7 us per-packet netfront/netback cost
        decline=0.25,
        o_send=5e-6,
        o_recv=5e-6,
        eager_threshold=64 * 1024,
    ),
    shm=SharedMemoryFabric(peak_bw=3.0e9),
    fs=NFS_EC2,
    hypervisor_factory=XenHvm,
    noise=STOCK_GUEST_VM,
    numa_affinity_enforced=False,
    numa_penalty_factor=0.85,
    numa_penalty_spread=0.04,
    numa_burst_noise=0.05,
    isa_features=frozenset({"sse2", "sse3", "ssse3", "sse4"}),
    os_name="CentOS 5.7",
    interconnect_label="10 GigE",
    scheduler="StarCluster/SGE",
)
