"""Structured record of what a fault schedule did to one run."""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass(slots=True)
class InjectedFault:
    """One fault event that actually fired during a run."""

    kind: str  # "node-crash" | "spot-reclaim" | "link" | "steal" | "nfs"
    time: float
    detail: str
    ranks: tuple[int, ...] = ()

    def render(self) -> str:
        ranks = f" [ranks {','.join(map(str, self.ranks))}]" if self.ranks else ""
        return f"t={self.time:.6g} {self.kind}{ranks}: {self.detail}"


@dataclasses.dataclass(slots=True)
class ResilienceReport:
    """Everything the fault layer observed for one run (or restart loop).

    ``injected`` lists the events that fired; ``killed_ranks`` the world
    ranks any crash took down; ``checkpoints`` counts application
    checkpoints declared via :meth:`~repro.smpi.comm.Comm.checkpoint`;
    ``restart_count`` / ``wasted_work`` / ``time_to_completion`` are
    filled in by the restart harness
    (:func:`repro.faults.checkpoint.run_with_restarts`).
    """

    injected: list[InjectedFault] = dataclasses.field(default_factory=list)
    killed_ranks: tuple[int, ...] = ()
    checkpoints: int = 0
    restart_count: int = 0
    wasted_work: float = 0.0
    time_to_completion: float | None = None
    completed: bool = True

    def render(self) -> str:
        head = (
            f"resilience: {len(self.injected)} fault(s) injected, "
            f"{len(self.killed_ranks)} rank(s) killed, "
            f"{self.restart_count} restart(s), "
            f"wasted work {self.wasted_work:.6g} s"
        )
        if self.time_to_completion is not None:
            head += f", time-to-completion {self.time_to_completion:.6g} s"
        if not self.completed:
            head += " [DID NOT COMPLETE]"
        lines = [head] + [f"  {ev.render()}" for ev in self.injected]
        return "\n".join(lines)

    def to_dict(self) -> dict[str, _t.Any]:
        """JSON-ready form of the report."""
        return {
            "injected": [
                {"kind": ev.kind, "time": ev.time, "detail": ev.detail,
                 "ranks": list(ev.ranks)}
                for ev in self.injected
            ],
            "killed_ranks": list(self.killed_ranks),
            "checkpoints": self.checkpoints,
            "restart_count": self.restart_count,
            "wasted_work": self.wasted_work,
            "time_to_completion": self.time_to_completion,
            "completed": self.completed,
        }
