"""Deterministic fault schedules: what goes wrong, where, and when.

The paper's cloud findings hinge on platforms *misbehaving* — EC2
variability, ESX vSwitch contention, NFS slowdowns, and the future-work
plan to ride the interruptible spot market.  A :class:`FaultSchedule`
turns those effects into first-class, reproducible experiments: a set of
typed fault events (node crashes / spot reclaims, link degradation
windows, hypervisor stolen-time bursts, NFS brown-outs) that a
:class:`~repro.faults.injector.FaultInjector` replays against a
simulated world.

Determinism
-----------
Explicit events fire at their declared simulated times.  Stochastic
crash processes (``crash:rate=...``) sample their arrival times from the
*engine's* :class:`~repro.sim.rng.RandomStreams` tree under the
``"faults"`` namespace, so the same ``(seed, schedule)`` pair always
yields the same fault timeline — and a run with an empty schedule is
bit-identical to one with no schedule at all (every hook is a pure
pass-through when nothing is installed).

Spec format
-----------
Schedules round-trip through a compact ``;``-separated string — the
format the ``--faults`` CLI flag and the ``REPRO_FAULTS`` environment
variable accept (the latter is how ``--jobs`` pool workers inherit the
schedule)::

    crash:at=120,node=1              # kill node 1 at t=120 s
    spot:at=300                      # spot reclaim of a sampled node
    crash:rate=1e-4                  # Poisson crashes, 1e-4 per second
    link:start=10,dur=5,bw=0.25,loss=0.05,latency=2e-4
    steal:start=20,dur=10,frac=0.5   # hypervisor steals 50% of CPU
    nfs:start=30,dur=60,factor=8     # NFS brown-out: 8x slower I/O

Items combine with ``;``: ``"crash:rate=1e-5;nfs:start=0,dur=30,factor=4"``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import typing as _t

from repro.errors import ConfigError

#: Environment variable carrying a fault-schedule spec (inherited by
#: ``--jobs`` pool workers, mirroring ``REPRO_SANITIZE``).
ENV_FLAG = "REPRO_FAULTS"


@dataclasses.dataclass(frozen=True, slots=True)
class NodeCrash:
    """Kill every rank on one node at simulated time ``at``.

    ``node`` is the node index; ``None`` samples one uniformly from the
    occupied nodes (stream ``faults/crash-node``).  ``kind`` labels the
    event in reports (``"node-crash"`` or ``"spot-reclaim"``).
    """

    at: float
    node: int | None = None
    kind: str = "node-crash"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError(f"crash time must be >= 0: {self.at}")


@dataclasses.dataclass(frozen=True, slots=True)
class LinkDegradation:
    """Degrade the inter-node interconnect during ``[start, start+duration]``.

    ``bw_factor`` scales effective bandwidth (0 < f <= 1); ``loss_rate``
    is a packet-loss probability modelled as a retransmission delay
    multiplier (see
    :func:`repro.hardware.interconnect.loss_retransmit_factor`);
    ``extra_latency`` adds a fixed per-message one-way delay.
    """

    start: float
    duration: float
    bw_factor: float = 1.0
    loss_rate: float = 0.0
    extra_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ConfigError(f"invalid degradation window: {self}")
        if not (0.0 < self.bw_factor <= 1.0):
            raise ConfigError(f"bw_factor must be in (0,1]: {self.bw_factor}")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ConfigError(f"loss_rate must be in [0,1): {self.loss_rate}")
        if self.extra_latency < 0:
            raise ConfigError(f"negative extra latency: {self.extra_latency}")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclasses.dataclass(frozen=True, slots=True)
class StolenTimeBurst:
    """Hypervisor stolen-time burst: during the window, every compute
    burst loses ``steal_frac`` of its CPU to the hypervisor (the guest's
    ``%steal``).  The extra wall time per burst is priced by the
    platform's :meth:`~repro.virt.hypervisor.Hypervisor.steal_burst`.
    """

    start: float
    duration: float
    steal_frac: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ConfigError(f"invalid stolen-time window: {self}")
        if not (0.0 <= self.steal_frac < 1.0):
            raise ConfigError(f"steal_frac must be in [0,1): {self.steal_frac}")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclasses.dataclass(frozen=True, slots=True)
class NfsBrownout:
    """Shared-filesystem brown-out: reads/writes started inside the
    window take ``slowdown`` times longer (server overload, failover)."""

    start: float
    duration: float
    slowdown: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ConfigError(f"invalid brown-out window: {self}")
        if self.slowdown < 1.0:
            raise ConfigError(f"slowdown must be >= 1: {self.slowdown}")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


FaultEvent = _t.Union[NodeCrash, LinkDegradation, StolenTimeBurst, NfsBrownout]


class FaultSchedule:
    """An ordered, immutable collection of fault events plus an optional
    Poisson crash process (``crash_rate`` failures per simulated second).
    """

    def __init__(
        self,
        events: _t.Iterable[FaultEvent] = (),
        crash_rate: float = 0.0,
    ) -> None:
        if crash_rate < 0:
            raise ConfigError(f"crash_rate must be >= 0: {crash_rate}")
        self.crashes: tuple[NodeCrash, ...] = ()
        self.links: tuple[LinkDegradation, ...] = ()
        self.steals: tuple[StolenTimeBurst, ...] = ()
        self.brownouts: tuple[NfsBrownout, ...] = ()
        self.crash_rate = crash_rate
        crashes, links, steals, brownouts = [], [], [], []
        for ev in events:
            if isinstance(ev, NodeCrash):
                crashes.append(ev)
            elif isinstance(ev, LinkDegradation):
                links.append(ev)
            elif isinstance(ev, StolenTimeBurst):
                steals.append(ev)
            elif isinstance(ev, NfsBrownout):
                brownouts.append(ev)
            else:
                raise ConfigError(f"unknown fault event: {ev!r}")
        self.crashes = tuple(sorted(crashes, key=lambda e: e.at))
        self.links = tuple(sorted(links, key=lambda e: e.start))
        self.steals = tuple(sorted(steals, key=lambda e: e.start))
        self.brownouts = tuple(sorted(brownouts, key=lambda e: e.start))

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing at all."""
        return not (
            self.crashes or self.links or self.steals or self.brownouts
            or self.crash_rate > 0
        )

    def events(self) -> tuple[FaultEvent, ...]:
        """All explicit events (crashes, then windows, in start order)."""
        return self.crashes + self.links + self.steals + self.brownouts

    # -- spec string round-trip ------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Build a schedule from a ``--faults`` / ``REPRO_FAULTS`` spec."""
        events: list[FaultEvent] = []
        crash_rate = 0.0
        for raw in spec.split(";"):
            item = raw.strip()
            if not item or item.lower() in ("none", "off"):
                continue
            kind, _, body = item.partition(":")
            kind = kind.strip().lower()
            kv = _parse_kv(body, item)
            try:
                if kind in ("crash", "spot"):
                    if "rate" in kv:
                        crash_rate += float(kv.pop("rate"))
                        _reject_extra(kv, item)
                    else:
                        node = kv.pop("node", None)
                        events.append(NodeCrash(
                            at=float(kv.pop("at")),
                            node=int(node) if node is not None else None,
                            kind="spot-reclaim" if kind == "spot" else "node-crash",
                        ))
                        _reject_extra(kv, item)
                elif kind == "link":
                    events.append(LinkDegradation(
                        start=float(kv.pop("start")),
                        duration=float(kv.pop("dur")),
                        bw_factor=float(kv.pop("bw", 1.0)),
                        loss_rate=float(kv.pop("loss", 0.0)),
                        extra_latency=float(kv.pop("latency", 0.0)),
                    ))
                    _reject_extra(kv, item)
                elif kind == "steal":
                    events.append(StolenTimeBurst(
                        start=float(kv.pop("start")),
                        duration=float(kv.pop("dur")),
                        steal_frac=float(kv.pop("frac")),
                    ))
                    _reject_extra(kv, item)
                elif kind == "nfs":
                    events.append(NfsBrownout(
                        start=float(kv.pop("start")),
                        duration=float(kv.pop("dur")),
                        slowdown=float(kv.pop("factor")),
                    ))
                    _reject_extra(kv, item)
                else:
                    raise ConfigError(
                        f"unknown fault kind {kind!r} in {item!r}; expected "
                        "crash, spot, link, steal or nfs"
                    )
            except KeyError as missing:
                raise ConfigError(
                    f"fault item {item!r} is missing required field {missing}"
                ) from None
            except ValueError as bad:
                raise ConfigError(f"bad value in fault item {item!r}: {bad}") from None
        return cls(events, crash_rate=crash_rate)

    def spec(self) -> str:
        """The canonical spec string (``parse(spec())`` round-trips)."""
        items: list[str] = []
        if self.crash_rate > 0:
            items.append(f"crash:rate={self.crash_rate!r}")
        for c in self.crashes:
            head = "spot" if c.kind == "spot-reclaim" else "crash"
            node = f",node={c.node}" if c.node is not None else ""
            items.append(f"{head}:at={c.at!r}{node}")
        for w in self.links:
            items.append(
                f"link:start={w.start!r},dur={w.duration!r},bw={w.bw_factor!r},"
                f"loss={w.loss_rate!r},latency={w.extra_latency!r}"
            )
        for s in self.steals:
            items.append(f"steal:start={s.start!r},dur={s.duration!r},frac={s.steal_frac!r}")
        for b in self.brownouts:
            items.append(f"nfs:start={b.start!r},dur={b.duration!r},factor={b.slowdown!r}")
        return ";".join(items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule {self.spec() or 'empty'}>"


def _parse_kv(body: str, item: str) -> dict[str, str]:
    kv: dict[str, str] = {}
    for pair in body.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        if not sep or not key.strip():
            raise ConfigError(f"expected key=value in fault item {item!r}: {pair!r}")
        kv[key.strip().lower()] = value.strip()
    return kv


def _reject_extra(kv: dict[str, str], item: str) -> None:
    if kv:
        raise ConfigError(f"unknown field(s) {sorted(kv)} in fault item {item!r}")


# ---------------------------------------------------------------------------
# Enablement: resolve the default schedule from the environment
# ---------------------------------------------------------------------------

def resolve_schedule(
    faults: "FaultSchedule | str | None",
) -> "FaultSchedule | None":
    """Normalise a ``faults=`` argument to a schedule or ``None``.

    ``None`` defers to :func:`default_schedule` (the ``REPRO_FAULTS``
    environment variable); a string is parsed; an empty schedule
    collapses to ``None`` so fault-free worlds install no hooks at all.
    """
    if faults is None:
        schedule = default_schedule()
    elif isinstance(faults, str):
        schedule = FaultSchedule.parse(faults)
    elif isinstance(faults, FaultSchedule):
        schedule = faults
    else:
        raise ConfigError(
            f"faults must be a FaultSchedule, spec string or None: {faults!r}"
        )
    return None if schedule is None or schedule.empty else schedule


def default_schedule() -> "FaultSchedule | None":
    """Schedule for worlds that don't pass ``faults=`` explicitly."""
    spec = os.environ.get(ENV_FLAG, "").strip()  # lint-ok: DET008 feature gate, read before simulation starts
    if not spec or spec == "0":
        return None
    return FaultSchedule.parse(spec)


@contextlib.contextmanager
def faults_scope(faults: "FaultSchedule | str") -> _t.Iterator["FaultSchedule"]:
    """Install ``faults`` as the default schedule inside the block.

    Sets ``REPRO_FAULTS`` to the canonical spec so pool workers forked
    inside the scope (``--jobs N``) inject the very same timeline, which
    keeps parallel sweeps byte-identical to serial ones.
    """
    schedule = faults if isinstance(faults, FaultSchedule) else FaultSchedule.parse(faults)
    prev = os.environ.get(ENV_FLAG)
    os.environ[ENV_FLAG] = schedule.spec()
    try:
        yield schedule
    finally:
        if prev is None:
            os.environ.pop(ENV_FLAG, None)
        else:
            os.environ[ENV_FLAG] = prev
