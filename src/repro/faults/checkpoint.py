"""Checkpoint/restart cost model and the restart harness.

Two levels of fidelity:

* :func:`simulate_completion` is the fast analytic model (Young/Daly
  style, but simulated segment-by-segment rather than approximated in
  closed form): given total work, a checkpoint policy and a failure
  rate, it walks exponential failure arrivals over checkpoint segments
  and returns time-to-completion, restart count and wasted work.  This
  is what ``repro faults sweep`` evaluates over a failure-rate x
  checkpoint-interval grid.
* :func:`run_with_restarts` is the full DES harness: it launches an
  :class:`~repro.smpi.world.MpiWorld` under a fault schedule, and on a
  :class:`~repro.errors.RankFailedError` accounts the wasted work since
  the last consistent application checkpoint plus the restart cost,
  then relaunches with a derived per-attempt seed.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from repro.errors import ConfigError, RankFailedError
from repro.faults.report import ResilienceReport
from repro.faults.schedule import FaultSchedule

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.world import RunResult


@dataclasses.dataclass(frozen=True, slots=True)
class CheckpointPolicy:
    """How an application checkpoints: write one every ``interval``
    seconds of useful work, at ``checkpoint_cost`` seconds apiece, and
    pay ``restart_cost`` seconds to relaunch after a failure."""

    interval: float
    checkpoint_cost: float = 0.0
    restart_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError(f"checkpoint interval must be > 0: {self.interval}")
        if self.checkpoint_cost < 0 or self.restart_cost < 0:
            raise ConfigError(f"checkpoint/restart costs must be >= 0: {self}")


def young_interval(failure_rate: float, checkpoint_cost: float) -> float:
    """Young's first-order optimum checkpoint interval:
    ``sqrt(2 * checkpoint_cost / failure_rate)``."""
    if failure_rate <= 0 or checkpoint_cost <= 0:
        raise ConfigError(
            "young_interval needs failure_rate > 0 and checkpoint_cost > 0"
        )
    return math.sqrt(2.0 * checkpoint_cost / failure_rate)


@dataclasses.dataclass(frozen=True, slots=True)
class CompletionStats:
    """Outcome of one analytic checkpoint/restart walk."""

    completion_time: float
    restarts: int
    wasted_work: float
    checkpoint_overhead: float


def simulate_completion(
    work: float,
    policy: CheckpointPolicy,
    failure_rate: float,
    rng,
    max_failures: int = 100_000,
) -> CompletionStats:
    """Walk ``work`` seconds of useful computation under ``policy`` with
    exponential failures at ``failure_rate`` per second.

    A segment's progress only becomes durable once its checkpoint write
    completes; a failure mid-segment (or mid-checkpoint) loses the whole
    segment and costs ``restart_cost`` before work resumes.  ``rng`` is
    a numpy ``Generator`` — pass a dedicated
    :class:`~repro.sim.rng.RandomStreams` stream for reproducibility.
    """
    if work < 0:
        raise ConfigError(f"work must be >= 0: {work}")
    wall = 0.0
    saved = 0.0
    restarts = 0
    wasted = 0.0
    overhead = 0.0
    next_fail = (
        float(rng.exponential(1.0 / failure_rate)) if failure_rate > 0
        else math.inf
    )
    while saved < work:
        seg = min(policy.interval, work - saved)
        # The final segment needs no checkpoint: completion is durable.
        ckpt = policy.checkpoint_cost if saved + seg < work else 0.0
        seg_end = wall + seg + ckpt
        if next_fail < seg_end:
            wasted += max(0.0, min(next_fail - wall, seg))
            wall = max(wall, next_fail) + policy.restart_cost
            restarts += 1
            if restarts >= max_failures:
                raise ConfigError(
                    f"no completion within {max_failures} failures "
                    f"(rate={failure_rate:g}, interval={policy.interval:g})"
                )
            next_fail = wall + float(rng.exponential(1.0 / failure_rate))
            continue
        wall = seg_end
        saved += seg
        overhead += ckpt
    return CompletionStats(wall, restarts, wasted, overhead)


def run_with_restarts(
    platform: _t.Any,
    nprocs: int,
    program: _t.Callable,
    *args: _t.Any,
    faults: "FaultSchedule | str",
    policy: CheckpointPolicy | None = None,
    seed: int = 0,
    placement: _t.Any = None,
    max_restarts: int = 20,
    **kwargs: _t.Any,
) -> "RunResult":
    """Run ``program`` to completion under ``faults``, restarting after
    each injected kill.  ``platform`` must be a
    :class:`~repro.platforms.base.PlatformSpec` (each attempt builds a
    fresh engine and runtime platform).

    Each attempt launches a fresh world with a derived seed
    (``seed + 7919 * attempt``), so a rate-driven crash process samples a
    new failure timeline per attempt (an explicit ``crash:at=...`` event
    repeats every attempt and can never complete — use ``crash:rate=``
    for restart studies).  Accounting is first-order checkpoint/restart:
    each failed attempt contributes the work lost since its last
    *consistent* application checkpoint (see
    :meth:`~repro.smpi.comm.Comm.checkpoint`) plus the policy's restart
    cost, and the useful work is counted once, in the attempt that
    completes.  The returned result's ``resilience`` report aggregates
    every attempt's injected events and carries ``time_to_completion``.
    """
    from repro.smpi.world import MpiWorld

    restart_cost = policy.restart_cost if policy is not None else 0.0
    total = ResilienceReport()
    lost = 0.0
    last_err: RankFailedError | None = None
    for attempt in range(max_restarts + 1):
        world = MpiWorld(
            platform, nprocs, placement=placement,
            seed=seed + 7919 * attempt, faults=faults,
        )
        try:
            result = world.launch(program, *args, **kwargs)
        except RankFailedError as err:
            last_err = err
            attempt_report = getattr(err, "resilience", None)
            if attempt_report is not None:
                total.injected.extend(attempt_report.injected)
                total.checkpoints += attempt_report.checkpoints
            failed_at = err.failed_at if err.failed_at is not None else world.engine.now
            injector = world.fault_injector
            ckpt = injector.global_checkpoint() if injector is not None else 0.0
            wasted = max(0.0, failed_at - ckpt)
            total.restart_count += 1
            total.wasted_work += wasted
            lost += wasted + restart_cost
            continue
        attempt_report = result.resilience
        if attempt_report is not None:
            total.injected.extend(attempt_report.injected)
            total.checkpoints += attempt_report.checkpoints
        total.completed = True
        total.time_to_completion = lost + result.wall_time
        result.resilience = total
        return result
    total.completed = False
    assert last_err is not None
    final = RankFailedError(
        last_err.failed_ranks,
        message=(
            f"no completion within {max_restarts} restart(s): last attempt "
            f"failed at t={last_err.failed_at}"
        ),
        failed_at=last_err.failed_at,
        kind=last_err.kind,
    )
    final.resilience = total  # type: ignore[attr-defined]
    raise final from last_err
