"""Network chaos proxy: seeded frame mangling between TCP endpoints.

The wire-level counterpart of :mod:`repro.faults.schedule`: where fault
schedules perturb the *simulated* platform, the chaos proxy perturbs
the repo's own real transport — the networked cell store
(:mod:`repro.harness.netstore`) and the TCP work queue — so the
resilience layer's failure matrix is exercisable on demand and in CI.

``repro chaos proxy LISTEN UPSTREAM --spec ... --seed N`` listens on
one address and forwards byte streams to another, making a seeded
decision per chunk in each direction:

``pass``
    Forward the chunk unchanged (the default when no rule fires).
``drop``
    Swallow the chunk.  Because framing is length-prefixed, a dropped
    chunk desynchronizes the stream — the victim's *deadline-bounded*
    reads are what turn this into a bounded failure instead of a hang.
``delay``
    Sleep ``ms`` milliseconds, then forward (latency spike).
``truncate``
    Forward only the first half of the chunk, then sever both
    directions (a torn frame followed by a dead peer).
``sever``
    Close both directions immediately (partition / peer crash).

Every decision comes from a :class:`random.Random` seeded per
connection from ``sha256(seed, connection-index)`` — two runs of the
same chaos schedule mangle the same chunks the same way, which is the
repo-wide determinism discipline applied to misfortune.

Spec grammar (probabilities per chunk, rules checked in the order
listed)::

    drop:p=0.05;delay:p=0.2,ms=50;truncate:p=0.02;sever:p=0.01
"""

from __future__ import annotations

import contextlib
import hashlib
import random
import socket
import threading
import time
import typing as _t

from repro.errors import ConfigError

#: Bytes per forwarding read — small enough that multi-frame bursts
#: span several chaos decisions.
CHUNK = 4096

#: Recognised rule names, in evaluation order.
RULES = ("drop", "delay", "truncate", "sever")


def parse_chaos_spec(text: str) -> dict[str, dict[str, float]]:
    """Parse a chaos spec string into ``{rule: {param: value}}``.

    Unknown rules, unknown parameters, and probabilities outside
    ``[0, 1]`` are configuration errors — a typo must never silently
    run a chaos-free "chaos" test.
    """
    rules: dict[str, dict[str, float]] = {}
    for part in (text or "").split(";"):
        part = part.strip()
        if not part:
            continue
        name, _sep, params_text = part.partition(":")
        name = name.strip()
        if name not in RULES:
            raise ConfigError(
                f"unknown chaos rule {name!r} (expected one of {RULES})"
            )
        params: dict[str, float] = {"p": 1.0}
        for item in params_text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value_text = item.partition("=")
            key = key.strip()
            if not sep or key not in ("p", "ms"):
                raise ConfigError(f"bad chaos parameter {item!r} in {part!r}")
            try:
                params[key] = float(value_text)
            except ValueError:
                raise ConfigError(
                    f"bad chaos parameter value {item!r} in {part!r}"
                ) from None
        if not 0.0 <= params["p"] <= 1.0:
            raise ConfigError(f"chaos probability out of [0, 1]: {part!r}")
        if params.get("ms", 0.0) < 0.0:
            raise ConfigError(f"chaos delay must be >= 0: {part!r}")
        rules[name] = params
    return rules


class ChaosProxy:
    """A TCP forwarder that mangles traffic on a seeded schedule.

    One proxy instance serves many connections; connection *i* draws
    its decisions from ``random.Random(sha256(seed, i))``, so the
    mangling schedule is a pure function of ``(seed, arrival order)``.
    ``port=0`` binds an ephemeral listen port (``.port`` has it).
    """

    def __init__(
        self,
        listen_host: str,
        listen_port: int,
        upstream_host: str,
        upstream_port: int,
        *,
        spec: str | dict[str, dict[str, float]] = "",
        seed: int = 0,
    ) -> None:
        self.rules = (
            parse_chaos_spec(spec) if isinstance(spec, str) else dict(spec)
        )
        self.seed = seed
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.connections = 0
        self.dropped = 0
        self.delayed = 0
        self.truncated = 0
        self.severed = 0
        self._lock = threading.Lock()
        self._stopping = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((listen_host or "127.0.0.1", listen_port))
        self._listener.listen(128)
        self.host = listen_host or "127.0.0.1"
        self.port = self._listener.getsockname()[1]

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "ChaosProxy":
        """Serve in a daemon thread (the in-process test harness path)."""
        threading.Thread(target=self.serve_forever, daemon=True).start()
        return self

    def serve_forever(self) -> None:
        while True:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: stopping
            with self._lock:
                if self._stopping:
                    with contextlib.suppress(OSError):
                        client.close()
                    return
                index = self.connections
                self.connections += 1
            threading.Thread(
                target=self._serve_conn, args=(client, index), daemon=True
            ).start()

    def stop(self) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        with contextlib.suppress(OSError):
            self._listener.close()

    # -- per-connection ---------------------------------------------------
    def _rng(self, index: int) -> random.Random:
        blob = f"{self.seed}:{index}".encode("utf-8")
        return random.Random(int.from_bytes(hashlib.sha256(blob).digest()[:8], "big"))

    def _serve_conn(self, client: socket.socket, index: int) -> None:
        try:
            upstream = socket.create_connection(
                (self.upstream_host, self.upstream_port), timeout=10.0
            )
        except OSError:
            with contextlib.suppress(OSError):
                client.close()
            return
        upstream.settimeout(None)
        rng = self._rng(index)
        rng_lock = threading.Lock()  # both pump directions share one stream
        dead = threading.Event()

        def _sever() -> None:
            dead.set()
            for sock in (client, upstream):
                with contextlib.suppress(OSError):
                    sock.shutdown(socket.SHUT_RDWR)
                with contextlib.suppress(OSError):
                    sock.close()

        def _pump(src: socket.socket, dst: socket.socket) -> None:
            try:
                while not dead.is_set():
                    chunk = src.recv(CHUNK)
                    if not chunk:
                        break
                    with rng_lock:
                        action, delay_s = self._decide(rng)
                    if action == "drop":
                        with self._lock:
                            self.dropped += 1
                        continue
                    if action == "delay":
                        with self._lock:
                            self.delayed += 1
                        time.sleep(delay_s)
                    elif action == "truncate":
                        with self._lock:
                            self.truncated += 1
                        with contextlib.suppress(OSError):
                            dst.sendall(chunk[: max(1, len(chunk) // 2)])
                        _sever()
                        return
                    elif action == "sever":
                        with self._lock:
                            self.severed += 1
                        _sever()
                        return
                    dst.sendall(chunk)
            except OSError:
                pass
            finally:
                _sever()

        threads = [
            threading.Thread(target=_pump, args=(client, upstream), daemon=True),
            threading.Thread(target=_pump, args=(upstream, client), daemon=True),
        ]
        for t in threads:
            t.start()

    def _decide(self, rng: random.Random) -> tuple[str, float]:
        """The (action, delay-seconds) for one chunk."""
        for name in RULES:
            params = self.rules.get(name)
            if params is None:
                continue
            if rng.random() < params["p"]:
                return name, params.get("ms", 0.0) / 1000.0
        return "pass", 0.0

    def describe(self) -> str:
        spec = ";".join(
            name
            + ":"
            + ",".join(f"{k}={v:g}" for k, v in sorted(self.rules[name].items()))
            for name in RULES
            if name in self.rules
        )
        return (
            f"chaos({self.host}:{self.port} -> "
            f"{self.upstream_host}:{self.upstream_port}, seed={self.seed}, "
            f"spec={spec or 'pass'})"
        )

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "connections": self.connections,
                "dropped": self.dropped,
                "delayed": self.delayed,
                "truncated": self.truncated,
                "severed": self.severed,
            }


def run_proxy(
    listen: str, upstream: str, *, spec: str = "", seed: int = 0
) -> int:
    """Run ``repro chaos proxy`` in the foreground; the process exit code."""
    import sys

    from repro.harness.netstore import parse_endpoint

    lhost, lport = parse_endpoint(listen)
    uhost, uport = parse_endpoint(upstream)
    proxy = ChaosProxy(lhost, lport, uhost, uport, spec=spec, seed=seed)
    print(f"[chaos] {proxy.describe()}", file=sys.stderr, flush=True)
    try:
        proxy.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        proxy.stop()
    tallies = ", ".join(f"{k}={v}" for k, v in proxy.counters().items())
    print(f"[chaos] stopped: {tallies}", file=sys.stderr, flush=True)
    return 0
