"""The ``repro faults sweep`` harness: failure rate x checkpoint interval.

Evaluates the analytic checkpoint/restart model
(:func:`repro.faults.checkpoint.simulate_completion`) over a grid of
failure rates and checkpoint intervals, averaging a configurable number
of seeded trials per cell.  Cells run through the shared parallel
executor (:func:`repro.harness.parallel.run_cells`), and each cell
derives its random stream from its own ``(rate, interval)`` key, so the
output is byte-identical for ``--jobs 1`` and ``--jobs N``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import CellExecutionError, ConfigError
from repro.harness.parallel import Cell, run_cells

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.harness.supervisor import SupervisorPolicy

#: Journal namespace for ``repro faults sweep`` cells.
SWEEP_NAMESPACE = "faults-sweep"


@dataclasses.dataclass(slots=True)
class SweepResult:
    """Grid of mean completion statistics from one resilience sweep."""

    work: float
    checkpoint_cost: float
    restart_cost: float
    trials: int
    seed: int
    rates: tuple[float, ...]
    intervals: tuple[float, ...]
    #: ``(rate, interval) -> {"completion_time", "restarts", "wasted_work"}``
    cells: dict[tuple[float, float], dict[str, float]]
    #: Cells that exhausted their supervised attempts (empty unless the
    #: sweep ran supervised *and* something actually failed); rendered
    #: as explicit ``FAILED(<cause>)`` grid entries.
    failures: dict[tuple[float, float], CellExecutionError] = dataclasses.field(
        default_factory=dict
    )
    #: One-line ``harness: ...`` banner (None unsupervised).  Not part
    #: of :meth:`render`/:meth:`to_dict` — its journal-hit/retry tallies
    #: differ between a resumed and an uninterrupted run, and both must
    #: produce byte-identical reports.  The CLI prints it to stderr.
    harness_summary: str | None = None
    #: One-line ``store: ...`` cell-store banner (None without a store).
    #: Stderr-only for the same byte-identity reason: a warm-store sweep
    #: serves every cell while a cold one executes them all.
    store_summary: str | None = None
    #: One-line ``executor: ...`` backend banner (None without an explicit
    #: ``backend=``).  Stderr-only: dispatch is scheduling detail and every
    #: backend renders the identical grid.
    executor_summary: str | None = None

    def render(self) -> str:
        """Fixed-width grid of mean time-to-completion (s); one row per
        failure rate, one column per checkpoint interval."""
        lines = [
            "# faults sweep: mean time-to-completion (s)",
            f"# work={self.work:g} s, checkpoint cost={self.checkpoint_cost:g} s, "
            f"restart cost={self.restart_cost:g} s, {self.trials} trial(s), "
            f"seed={self.seed}",
        ]
        head = "rate\\interval".ljust(14)
        head += "".join(f"{i:>12g}" for i in self.intervals)
        lines.append(head)
        for rate in self.rates:
            row = f"{rate:<14g}"
            for interval in self.intervals:
                key = (rate, interval)
                if key in self.failures:
                    row += f"{'FAILED(' + self.failures[key].cause + ')':>12}"
                else:
                    row += f"{self.cells[key]['completion_time']:>12.2f}"
            lines.append(row)
        if self.cells:
            best = min(
                self.cells.items(), key=lambda kv: (kv[1]["completion_time"], kv[0])
            )
            (rate, interval), stats = best
            lines.append(
                f"# best cell: rate={rate:g}, interval={interval:g} -> "
                f"{stats['completion_time']:.2f} s "
                f"({stats['restarts']:.2f} restart(s), "
                f"{stats['wasted_work']:.2f} s wasted)"
            )
        else:
            lines.append("# no successful cells")
        for (rate, interval), err in sorted(self.failures.items()):
            lines.append(
                f"# failed cell: rate={rate:g}, interval={interval:g} -> "
                f"{err.cause} after {err.attempts} attempt(s)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, _t.Any]:
        return {
            "work": self.work,
            "checkpoint_cost": self.checkpoint_cost,
            "restart_cost": self.restart_cost,
            "trials": self.trials,
            "seed": self.seed,
            "rates": list(self.rates),
            "intervals": list(self.intervals),
            "cells": [
                {"rate": r, "interval": i, **stats}
                for (r, i), stats in sorted(self.cells.items())
            ],
            "failures": [
                {"rate": r, "interval": i, "cause": err.cause,
                 "attempts": err.attempts}
                for (r, i), err in sorted(self.failures.items())
            ],
        }


def sweep_failure_checkpoint(
    rates: _t.Sequence[float],
    intervals: _t.Sequence[float],
    *,
    work: float,
    checkpoint_cost: float = 0.0,
    restart_cost: float = 0.0,
    trials: int = 32,
    seed: int = 1,
    jobs: int = 1,
    supervisor: "SupervisorPolicy | None" = None,
    store: _t.Any | None = None,
    backend: str | None = None,
) -> SweepResult:
    """Sweep the checkpoint/restart model over ``rates x intervals``.

    ``supervisor`` runs the grid under the supervised harness
    (:mod:`repro.harness.supervisor`): hung or crashed cells are
    retried/degraded per the policy, cells that exhaust their attempts
    land in :attr:`SweepResult.failures` as ``FAILED(<cause>)`` grid
    entries instead of aborting, and journal/resume paths from the
    policy make the sweep resumable (journal keys are namespaced
    ``faults-sweep``).  A clean supervised sweep renders byte-identical
    output to an unsupervised one.

    ``store`` (a path or a :class:`~repro.harness.cellstore.CellStore`)
    activates the content-addressed global cell store for the sweep:
    cells already published — by any previous run, on any host sharing
    the store — are served without executing, and fresh cells are
    published back.  A warm-store sweep renders byte-identical output
    with zero cells executed; the ``store: ...`` banner lands in
    :attr:`SweepResult.store_summary` (stderr-only).

    ``backend`` schedules the grid through an explicit
    :class:`~repro.harness.executor.CellExecutor` backend (a
    ``--backend`` spec string, see
    :func:`~repro.harness.executor.make_executor`): same cells, same
    merge-by-key grid, byte-identical output on every transport.
    """
    if not rates or not intervals:
        raise ConfigError("faults sweep needs at least one rate and one interval")
    if trials < 1:
        raise ConfigError(f"trials must be >= 1: {trials}")
    cells = [
        Cell(
            key=(float(rate), float(interval)),
            worker="faults_point",
            args=(
                float(rate), float(interval), float(work),
                float(checkpoint_cost), float(restart_cost), int(trials),
                int(seed),
            ),
        )
        for rate in rates
        for interval in intervals
    ]
    failures: dict[tuple[float, float], CellExecutionError] = {}
    harness_summary: str | None = None
    store_summary: str | None = None
    executor_summary: str | None = None

    def _execute_grid() -> dict[tuple, _t.Any]:
        nonlocal failures, harness_summary
        if supervisor is not None:
            from repro.harness.supervisor import run_cells_supervised

            report = run_cells_supervised(
                cells, jobs=jobs, policy=supervisor, namespace=SWEEP_NAMESPACE
            )
            failures = report.failures
            harness_summary = report.banner()
            return report.results
        return run_cells(cells, jobs=jobs)

    def _execute_stored() -> dict[tuple, _t.Any]:
        nonlocal store_summary
        if store is None:
            return _execute_grid()
        from repro.harness.cellstore import store_scope

        with store_scope(store) as cs:
            results = _execute_grid()
        store_summary = cs.banner()
        return results

    if backend is None:
        results = _execute_stored()
    else:
        from repro.harness.executor import executor_scope, make_executor

        with executor_scope(make_executor(backend, jobs)) as ex:
            results = _execute_stored()
            executor_summary = ex.banner()
    return SweepResult(
        work=float(work),
        checkpoint_cost=float(checkpoint_cost),
        restart_cost=float(restart_cost),
        trials=int(trials),
        seed=int(seed),
        rates=tuple(float(r) for r in rates),
        intervals=tuple(float(i) for i in intervals),
        cells=dict(results),
        failures=failures,
        harness_summary=harness_summary,
        store_summary=store_summary,
        executor_summary=executor_summary,
    )
