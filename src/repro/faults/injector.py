"""Replays a :class:`~repro.faults.schedule.FaultSchedule` against a world.

The injector is installed by :class:`~repro.smpi.world.MpiWorld` when a
non-empty schedule is resolved.  It has two kinds of effect:

* **passive windows** (link degradation, stolen time, NFS brown-outs)
  are pure queries the platform's performance models consult — they
  schedule no engine events and draw no randomness, so a run whose
  windows are never active stays bit-identical to a fault-free run;
* **crashes** (explicit or Poisson-sampled) are engine events armed by
  :meth:`~repro.smpi.world.MpiWorld.launch` that interrupt every rank
  process on the victim node.  Surviving ranks that then block on an
  operation against a dead rank surface a
  :class:`~repro.errors.RankFailedError` through the engine's
  ``deadlock_factory`` — the same plumbing the MPI sanitizer uses, so an
  injected failure is never misreported as a protocol deadlock.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import ConfigError, DeadlockError, RankFailedError
from repro.faults.report import InjectedFault, ResilienceReport
from repro.faults.schedule import FaultSchedule
from repro.hardware.interconnect import loss_retransmit_factor
from repro.hardware.storage import TimeVaryingFilesystem

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process
    from repro.smpi.world import MpiWorld


class FaultInjector:
    """Per-world fault replay engine (see module docstring)."""

    def __init__(self, world: "MpiWorld", schedule: FaultSchedule) -> None:
        self.world = world
        self.schedule = schedule
        self.engine = world.engine
        self.rng = self.engine.rng.child("faults")
        self.report = ResilienceReport()
        self.killed_ranks: set[int] = set()
        self.failed_at: float | None = None
        self.failed_kind: str = "node-crash"
        self._procs: list["Process"] = []
        self._disarmed = False
        #: Crash wake-up events currently queued in the engine.
        self._scheduled: list = []
        #: Per-rank time of the last completed application checkpoint.
        self._last_ckpt: dict[int, float] = {}
        #: Windows already recorded in the report (first actual effect).
        self._window_seen: set[tuple[str, int]] = set()

        platform = world.platform
        platform.fault_hooks = self
        if schedule.brownouts:
            platform.fs = TimeVaryingFilesystem(
                platform.fs, self.engine, self.fs_factor
            )
        self.engine.chain_deadlock_factory(self._deadlock_factory)

    # -- arming / disarming ------------------------------------------------
    def arm(self, procs: _t.Sequence["Process"]) -> None:
        """Schedule the crash events (called by ``launch`` once the rank
        processes exist)."""
        self._procs = list(procs)
        eng = self.engine
        for crash in self.schedule.crashes:
            self._scheduled.append(eng.call_at(
                max(crash.at, eng.now),
                lambda c=crash: self._crash(c.node, c.kind),
            ))
        if self.schedule.crash_rate > 0:
            stream = self.rng.stream("crash-times")
            self._arm_poisson(stream)

    def _arm_poisson(self, stream) -> None:
        gap = float(stream.exponential(1.0 / self.schedule.crash_rate))
        self._scheduled.append(self.engine.call_at(
            self.engine.now + gap, lambda: self._poisson_crash(stream)
        ))

    def _poisson_crash(self, stream) -> None:
        if self._disarmed:
            return
        self._crash(None, "node-crash")
        # Keep the arrival process going only while ranks survive;
        # otherwise the heap would never drain and the run could not
        # surface its RankFailedError.
        if len(self.killed_ranks) < self.world.nprocs:
            self._arm_poisson(stream)

    def disarm(self) -> None:
        """Stop injecting: the run completed.

        Pulls the injector's still-queued crash wake-ups out of the
        engine heap, so the post-completion drain sees exactly the
        events a fault-free run would — same straggler processing, same
        final clock, byte-identical results when nothing fired.
        """
        self._disarmed = True
        pending = {ev for ev in self._scheduled if ev.callbacks is not None}
        self._scheduled.clear()
        if pending:
            eng = self.engine
            eng._heap = [e for e in eng._heap if e[2] not in pending]
            heapq.heapify(eng._heap)

    # -- crashes -----------------------------------------------------------
    def _crash(self, node_index: int | None, kind: str) -> None:
        if self._disarmed:
            return
        nodes = [
            n for n in self.world.platform.nodes
            if any(r not in self.killed_ranks for r in n.ranks)
        ]
        if node_index is None:
            if not nodes:
                return
            pick = self.rng.stream("crash-node")
            node = nodes[int(pick.integers(len(nodes)))]
        else:
            if not (0 <= node_index < len(self.world.platform.nodes)):
                raise ConfigError(
                    f"fault schedule kills node {node_index}, but the platform "
                    f"has {len(self.world.platform.nodes)} node(s)"
                )
            node = self.world.platform.nodes[node_index]
        victims = tuple(
            r for r in sorted(node.ranks) if r not in self.killed_ranks
        )
        now = self.engine.now
        self.report.injected.append(InjectedFault(
            kind, now,
            f"node {node.index} down, killing {len(victims)} rank(s)",
            victims,
        ))
        if not victims:
            return
        if self.failed_at is None:
            self.failed_at = now
            self.failed_kind = kind
        self.killed_ranks.update(victims)
        sanitizer = self.world.sanitizer
        if sanitizer is not None:
            sanitizer.note_injected_failure(victims, now, kind)
        for rank in victims:
            proc = self._procs[rank] if rank < len(self._procs) else None
            if proc is not None and proc.alive:
                proc.interrupt()

    def failure_error(self, waiting: int = 0) -> RankFailedError:
        """The structured error describing the injected kill(s)."""
        pending: _t.Sequence[str] = ()
        sanitizer = self.world.sanitizer
        if sanitizer is not None:
            pending = sanitizer.describe_pending()
        err = RankFailedError(
            sorted(self.killed_ranks), waiting, pending_ops=pending,
            failed_at=self.failed_at, kind=self.failed_kind,
        )
        err.resilience = self.finalize_report()  # type: ignore[attr-defined]
        return err

    def _deadlock_factory(
        self,
        blocked: int,
        prev: _t.Callable[[int], DeadlockError] | None,
    ) -> DeadlockError:
        """Engine hook: a drained queue with blocked processes is an
        injected failure when ranks were killed, a genuine deadlock
        otherwise (delegated to the sanitizer's factory when present)."""
        if self.killed_ranks:
            return self.failure_error(blocked)
        if prev is not None:
            return prev(blocked)
        return DeadlockError(blocked)

    # -- checkpoints -------------------------------------------------------
    def note_checkpoint(self, rank: int, now: float) -> None:
        """Record one rank's completed checkpoint (from ``Comm.checkpoint``)."""
        self._last_ckpt[rank] = now
        self.report.checkpoints += 1

    def global_checkpoint(self) -> float:
        """Time of the last *consistent* checkpoint: every rank must have
        checkpointed; the cut is the earliest of the latest per-rank
        times (work after it is lost on a crash)."""
        if len(self._last_ckpt) == self.world.nprocs:
            return min(self._last_ckpt.values())
        return 0.0

    # -- passive window hooks (consulted by the platform models) ----------
    def net_time_factor(self, now: float) -> float:
        """Multiplier on inter-node serialisation time at ``now``."""
        factor = 1.0
        for i, w in enumerate(self.schedule.links):
            if w.active(now):
                factor *= loss_retransmit_factor(w.loss_rate) / w.bw_factor
                self._mark_window("link", i, w.start, (
                    f"interconnect degraded for {w.duration:g} s: bandwidth "
                    f"x{w.bw_factor:g}, loss {w.loss_rate:g}, "
                    f"+{w.extra_latency:g} s latency"
                ))
        return factor

    def net_extra_latency_at(self, now: float) -> float:
        """Additional per-message one-way latency at ``now``."""
        extra = 0.0
        for w in self.schedule.links:
            if w.active(now):
                extra += w.extra_latency
        return extra

    def stolen_extra(self, now: float, duration: float) -> float:
        """Extra wall seconds stolen from a compute burst started at ``now``."""
        hv = self.world.platform.hypervisor
        extra = 0.0
        for i, s in enumerate(self.schedule.steals):
            if s.active(now):
                extra += hv.steal_burst(duration, s.steal_frac)
                self._mark_window("steal", i, s.start, (
                    f"hypervisor steals {s.steal_frac:.0%} of CPU for "
                    f"{s.duration:g} s"
                ))
        return extra

    def fs_factor(self, now: float) -> float:
        """Multiplier on shared-filesystem operation time at ``now``."""
        factor = 1.0
        for i, b in enumerate(self.schedule.brownouts):
            if b.active(now):
                factor *= b.slowdown
                self._mark_window("nfs", i, b.start, (
                    f"{self.world.platform.spec.fs.name} brown-out: "
                    f"x{b.slowdown:g} slower for {b.duration:g} s"
                ))
        return factor

    def _mark_window(self, kind: str, index: int, start: float, detail: str) -> None:
        key = (kind, index)
        if key not in self._window_seen:
            self._window_seen.add(key)
            self.report.injected.append(InjectedFault(kind, start, detail))

    # -- reporting ---------------------------------------------------------
    def finalize_report(self) -> ResilienceReport:
        """The report for this run (injected events in firing order)."""
        self.report.killed_ranks = tuple(sorted(self.killed_ranks))
        self.report.completed = not self.killed_ranks
        self.report.injected.sort(key=lambda ev: ev.time)
        return self.report
