"""Deterministic fault injection and resilience modelling.

See :mod:`repro.faults.schedule` for the fault model and spec format,
:mod:`repro.faults.injector` for how schedules are replayed against a
world, :mod:`repro.faults.checkpoint` for the checkpoint/restart cost
model and the restart harness, and :mod:`repro.faults.netchaos` for
the seeded network chaos proxy that mangles the repo's *real*
transports (networked store, TCP work queue).
"""

from repro.faults.checkpoint import (
    CheckpointPolicy,
    CompletionStats,
    run_with_restarts,
    simulate_completion,
    young_interval,
)
from repro.faults.injector import FaultInjector
from repro.faults.netchaos import ChaosProxy, parse_chaos_spec
from repro.faults.report import InjectedFault, ResilienceReport
from repro.faults.schedule import (
    ENV_FLAG,
    FaultSchedule,
    LinkDegradation,
    NfsBrownout,
    NodeCrash,
    StolenTimeBurst,
    default_schedule,
    faults_scope,
    resolve_schedule,
)
from repro.faults.sweep import SweepResult, sweep_failure_checkpoint

__all__ = [
    "ENV_FLAG",
    "ChaosProxy",
    "CheckpointPolicy",
    "CompletionStats",
    "FaultInjector",
    "FaultSchedule",
    "InjectedFault",
    "LinkDegradation",
    "NfsBrownout",
    "NodeCrash",
    "ResilienceReport",
    "StolenTimeBurst",
    "SweepResult",
    "default_schedule",
    "faults_scope",
    "parse_chaos_spec",
    "resolve_schedule",
    "run_with_restarts",
    "simulate_completion",
    "sweep_failure_checkpoint",
    "young_interval",
]
