"""Virtualisation models: hypervisors, OS noise, VM images.

The paper's three platforms differ in their virtualisation layer — none
(Vayu), VMware ESX 4.0 (DCC) and Xen (EC2) — and several of its findings
are direct consequences of that layer:

* DCC's OSU latency "fluctuated from 1 byte to 512 KB" because packets
  traverse ESX's software vSwitch and depend on hypervisor CPU
  scheduling;
* EC2's EP runs "fluctuate but maintain an upward trend" because of Xen
  scheduling and HyperThreading-induced system jitter;
* both hypervisors hide NUMA topology from the guest, so runtimes cannot
  make "judicious thread and memory placement decisions";
* on the virtualised platforms communication time is reported mostly as
  *system* time (paper Fig 7).

Each effect is a small, named model here, applied by the platform's
compute/communication paths.
"""

from repro.virt.hypervisor import Hypervisor, NoHypervisor
from repro.virt.esx import VmwareEsx
from repro.virt.xen import XenHvm
from repro.virt.jitter import OsNoiseModel
from repro.virt.vmimage import VmImage

__all__ = [
    "Hypervisor",
    "NoHypervisor",
    "OsNoiseModel",
    "VmImage",
    "VmwareEsx",
    "XenHvm",
]
