"""Xen model (Amazon EC2's hypervisor for cc1.4xlarge instances).

Calibration notes (paper sections IV and V-B, and the cited Atif &
Strazdins HPCVirt'09 study of communication interfaces in virtualised SMP
clusters):

* EC2 networking goes through the Xen netfront/netback split-driver path
  plus the placement-group 10 GigE fabric; per-message latency is tens of
  microseconds but *stable* compared with ESX's vSwitch (the paper's
  Fig 2 shows smooth EC2 curves).
* cc1.4xlarge exposes 16 hardware threads of 8 physical cores as vCPUs;
  "the fluctuation [of EP] is due to CPU scheduling of [the] Xen
  hypervisor and system jitter brought on by the use of HyperThreading",
  and kernels drop in performance at 16 rather than 32 cores because of
  "the HyperThreading and communication overhead of the Xen hypervisor".
* Xen also hides NUMA from the guest.
"""

from __future__ import annotations

import numpy as np

from repro.virt.hypervisor import Hypervisor


class XenHvm(Hypervisor):
    """Xen as deployed for EC2 cluster-compute instances."""

    name = "Xen (EC2 cc1.4xlarge, HVM + split network driver)"
    masks_numa = True
    exposes_smt_as_cores = True
    system_time_share = 0.6
    #: Scheduler delays and HT jitter are sampled per message/burst.
    deterministic = False
    #: With SMT siblings exposed as vCPUs, a stolen sibling degrades the
    #: co-resident thread as well, so steal windows cost slightly more
    #: than their CPU share alone.
    steal_amplification = 1.15

    def __init__(
        self,
        *,
        driver_latency: float = 18e-6,
        sched_delay_mean: float = 6e-6,
        bw_factor: float = 1.0,
        jitter_frac: float = 0.03,
        jitter_spike_prob: float = 0.02,
        jitter_spike_frac: float = 0.35,
    ) -> None:
        self.driver_latency = driver_latency
        self.sched_delay_mean = sched_delay_mean
        self.bw_factor = bw_factor
        self.jitter_frac = jitter_frac
        self.jitter_spike_prob = jitter_spike_prob
        self.jitter_spike_frac = jitter_spike_frac

    def net_extra_latency(self, rng: np.random.Generator) -> float:
        return self.driver_latency + rng.exponential(self.sched_delay_mean)

    def net_bw_factor(self) -> float:
        return self.bw_factor

    def compute_jitter(self, rng: np.random.Generator, duration: float) -> float:
        """HT/scheduler noise: small steady term plus occasional spikes.

        The spikes are what makes EC2's EP speedup "fluctuate but
        maintain an upward trend" in the paper's Fig 4, since EP has no
        communication to hide them behind.
        """
        noise = duration * self.jitter_frac * rng.exponential(1.0)
        if rng.random() < self.jitter_spike_prob:
            noise += duration * self.jitter_spike_frac * rng.random()
        return noise
