"""Operating-system noise model.

Even bare-metal nodes exhibit OS noise (daemons, interrupts, page-cache
activity).  The noise matters because bulk-synchronous MPI codes run at
the speed of the *slowest* rank each step: noise on any one rank becomes
communication wait on all the others, which is exactly how the paper's
IPM profiles surface it ("load imbalance caused by jitter").

The model injects, per compute burst, an extra time

``extra = duration * frac * Exp(1) + Bernoulli(p_spike) * spike``

where the exponential term models ubiquitous short preemptions and the
spike term rare long ones (kernel threads, hypervisor housekeeping).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True, slots=True)
class OsNoiseModel:
    """Parameters of per-burst OS noise.

    ``frac`` — expected fractional slowdown of a compute burst;
    ``spike_prob`` — probability of an additional long preemption;
    ``spike_seconds`` — mean duration of such a preemption.
    """

    frac: float = 0.002
    spike_prob: float = 0.0
    spike_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.frac < 0 or self.spike_prob < 0 or self.spike_prob > 1:
            raise ConfigError(f"invalid OsNoiseModel: {self}")
        if self.spike_seconds < 0:
            raise ConfigError(f"invalid OsNoiseModel: {self}")

    def sample(
        self,
        rng: np.random.Generator,
        duration: float,
        spike_rng: np.random.Generator | None = None,
    ) -> float:
        """Extra seconds of noise injected into a ``duration``-second burst.

        The spike draws always happen — exactly two per burst, from
        ``spike_rng`` (default: ``rng``) — even when ``spike_prob`` is 0,
        so two models differing only in their spike parameters consume
        identical draw counts and otherwise-identical runs stay aligned
        sample-for-sample.  Callers that share ``rng`` with other models
        should pass a dedicated ``spike_rng`` so spike-parameter tweaks
        cannot reshuffle unrelated samples either.
        """
        if duration <= 0:
            return 0.0
        extra = duration * self.frac * rng.exponential(1.0)
        spikes = spike_rng if spike_rng is not None else rng
        hit = float(spikes.random())
        magnitude = float(spikes.standard_exponential())
        if hit < self.spike_prob:
            extra += magnitude * self.spike_seconds
        return extra


#: A quiet, tuned HPC compute node (Vayu): ~0.2% noise, no long spikes.
QUIET_HPC_NODE = OsNoiseModel(frac=0.002)

#: A stock CentOS guest VM: more daemons, occasional longer preemptions.
STOCK_GUEST_VM = OsNoiseModel(frac=0.008, spike_prob=0.004, spike_seconds=2e-3)
