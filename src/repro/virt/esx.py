"""VMware ESX model (the DCC private cloud's hypervisor).

Calibration notes (paper section V-A and IV):

* DCC guests use the Intel E1000 *emulated* vNIC through the ESX
  vSwitch; every packet is processed by hypervisor software, so messages
  pay a substantial extra latency whose magnitude depends on whether the
  vSwitch service happens to be scheduled — the paper observes OSU
  latencies that "fluctuated from 1 byte to 512 KB messages" and
  attributes them to "CPU scheduling of [the] VMware hypervisor as
  networking is done through a proprietary software switch".
  We model this as a base software-switch cost plus an exponential
  scheduling-delay tail.
* ESX masks NUMA from the guest, so neither OpenMPI nor the application
  can bind memory ("applications or supporting runtimes are unable to
  make judicious thread and memory placement decisions").
* Communication time appears almost entirely as guest *system* time
  (Fig 7b).
"""

from __future__ import annotations

import numpy as np

from repro.virt.hypervisor import Hypervisor


class VmwareEsx(Hypervisor):
    """VMware ESX 4.0 with an emulated E1000 vNIC behind a vSwitch."""

    name = "VMware ESX 4.0 (E1000 vNIC, vSwitch)"
    masks_numa = True
    exposes_smt_as_cores = False
    system_time_share = 0.85
    #: vSwitch scheduling delays and timeslice noise are sampled per
    #: message/burst.
    deterministic = False
    #: Stolen-time windows hit ESX guests harder than the raw CPU-share
    #: arithmetic: the vSwitch service is co-scheduled with guest vCPUs,
    #: so while the CPU is stolen, pending network servicing backs up too
    #: (the same contention behind the paper's fluctuating OSU latencies).
    steal_amplification = 1.25

    def __init__(
        self,
        *,
        switch_latency: float = 28e-6,
        sched_delay_mean: float = 22e-6,
        sched_spike_prob: float = 0.06,
        sched_spike_mean: float = 180e-6,
        bw_factor: float = 1.0,
        jitter_frac: float = 0.04,
        compute_spike_prob: float = 0.015,
        compute_spike_seconds: float = 0.025,
    ) -> None:
        self.switch_latency = switch_latency
        self.sched_delay_mean = sched_delay_mean
        self.sched_spike_prob = sched_spike_prob
        self.sched_spike_mean = sched_spike_mean
        self.bw_factor = bw_factor
        self.jitter_frac = jitter_frac
        self.compute_spike_prob = compute_spike_prob
        self.compute_spike_seconds = compute_spike_seconds

    def net_extra_latency(self, rng: np.random.Generator) -> float:
        extra = self.switch_latency + rng.exponential(self.sched_delay_mean)
        if rng.random() < self.sched_spike_prob:
            # vSwitch service descheduled: order-100 microsecond stall.
            extra += rng.exponential(self.sched_spike_mean)
        return extra

    def net_bw_factor(self) -> float:
        return self.bw_factor

    def compute_jitter(self, rng: np.random.Generator, duration: float) -> float:
        """Timeslicing noise plus rare long preemptions.

        In bulk-synchronous codes the per-burst noise converts into
        communication wait on every *other* rank — the paper's "load
        imbalance caused by jitter" diagnosis for DCC.
        """
        noise = duration * self.jitter_frac * rng.exponential(1.0)
        if rng.random() < self.compute_spike_prob:
            noise += rng.exponential(self.compute_spike_seconds)
        return noise
