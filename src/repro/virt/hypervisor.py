"""Hypervisor base model.

A hypervisor perturbs the bare-hardware models in four ways:

1. **Network path** — extra per-message latency (software switch,
   driver-domain hop) and a throughput factor on the wire time.
2. **NUMA masking** — the guest sees a flat topology, so memory-bound
   ranks pay a locality penalty the bare-metal platform avoids through
   affinity (paper sections V-B "CG" and V-C.2).
3. **Compute jitter** — multiplicative noise on compute bursts from
   hypervisor CPU scheduling.
4. **System-time attribution** — the share of communication time the
   guest kernel accounts as *system* time (visible in the paper's Fig 7
   IPM profiles, where DCC's MPI time "is primarily in system time").
"""

from __future__ import annotations

import numpy as np


class Hypervisor:
    """Base class; also usable directly as a perturbation-free layer."""

    #: Display name for Table-I style reports.
    name: str = "hypervisor"
    #: Whether the guest is denied the host's NUMA topology.
    masks_numa: bool = False
    #: Whether SMT siblings are exposed to the guest as full cores.
    exposes_smt_as_cores: bool = False
    #: Fraction of communication time attributed to system time in
    #: guest-side profiles (bare metal: interrupt handling only).
    system_time_share: float = 0.1
    #: Whether this layer's perturbations are draw-free.  Concrete
    #: hypervisors that sample per-message or per-burst jitter set this
    #: False; iteration replay (:mod:`repro.perf.replay`) only engages
    #: on platforms whose every cost is a pure function of its inputs.
    deterministic: bool = True

    def net_extra_latency(self, rng: np.random.Generator) -> float:
        """Additional one-way latency for one message (seconds)."""
        return 0.0

    def net_bw_factor(self) -> float:
        """Multiplier (<= 1) on effective network bandwidth."""
        return 1.0

    def compute_jitter(self, rng: np.random.Generator, duration: float) -> float:
        """Extra compute time injected into a burst of ``duration`` seconds."""
        return 0.0

    #: Multiplier on stolen-time stalls: layers whose housekeeping is
    #: co-scheduled with guest vCPUs amplify a steal window beyond the
    #: raw CPU-share arithmetic (overridden by concrete hypervisors).
    steal_amplification: float = 1.0

    def steal_burst(self, duration: float, frac: float) -> float:
        """Extra wall seconds a stolen-time window adds to a compute burst.

        With fraction ``frac`` of the CPU stolen, a burst needing
        ``duration`` seconds of CPU occupies ``duration / (1 - frac)``
        wall seconds; the return value is the difference, scaled by
        :attr:`steal_amplification`.  Used by the fault layer's
        stolen-time windows (:class:`repro.faults.StolenTimeBurst`).
        """
        if frac <= 0.0:
            return 0.0
        if frac >= 1.0:
            raise ValueError(f"steal fraction must be < 1: {frac}")
        return duration * frac / (1.0 - frac) * self.steal_amplification

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name


class NoHypervisor(Hypervisor):
    """Bare metal: no virtualisation perturbations at all."""

    name = "none (bare metal)"
    masks_numa = False
    exposes_smt_as_cores = False
    system_time_share = 0.05
