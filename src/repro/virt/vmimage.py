"""Virtual machine images.

A :class:`VmImage` is the artefact produced by the paper's central
workflow: building application codes inside a traditional HPC environment
(Vayu's ``/apps`` + ``modules`` stack) and packaging the binaries plus
their dependency closure into an image that boots on the private cloud or
on EC2.  The image records enough metadata for the compatibility checks
that the paper encountered in practice (the SSE4 incident: a binary
compiled with SSE4 on Vayu would not run on hosts lacking the feature).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import CloudError


@dataclasses.dataclass(frozen=True, slots=True)
class InstalledPackage:
    """One entry of the image's software stack (``/apps`` style)."""

    name: str
    version: str
    prefix: str = "/apps"

    @property
    def path(self) -> str:
        """Install location inside the image."""
        return f"{self.prefix}/{self.name}/{self.version}"


@dataclasses.dataclass(frozen=True, slots=True)
class ApplicationBinary:
    """A compiled application carried by an image.

    ``isa_flags`` are the instruction-set features the binary *requires*
    at run time (e.g. ``{"sse4"}`` when compiled with ``-xSSE4.2``);
    ``requires`` lists the package names it is dynamically linked
    against.
    """

    name: str
    version: str
    compiler: str
    isa_flags: frozenset[str] = frozenset()
    requires: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True, slots=True)
class VmImage:
    """An immutable, bootable VM image."""

    name: str
    os_name: str
    packages: tuple[InstalledPackage, ...] = ()
    binaries: tuple[ApplicationBinary, ...] = ()
    size_bytes: int = 8 << 30

    def package_names(self) -> frozenset[str]:
        """Names of all installed packages."""
        return frozenset(p.name for p in self.packages)

    def find_binary(self, name: str) -> ApplicationBinary:
        """Look up a binary by name; raises :class:`CloudError` if absent."""
        for b in self.binaries:
            if b.name == name:
                return b
        raise CloudError(f"binary {name!r} not present in image {self.name!r}")

    def missing_dependencies(self) -> dict[str, list[str]]:
        """Map binary name -> dependency packages absent from the image.

        An empty dict means the dependency closure is complete — the
        property the paper's rsync-based packaging workflow establishes.
        """
        have = self.package_names()
        missing: dict[str, list[str]] = {}
        for b in self.binaries:
            absent = [dep for dep in b.requires if dep not in have]
            if absent:
                missing[b.name] = absent
        return missing

    def check_isa(self, host_features: _t.Collection[str]) -> dict[str, list[str]]:
        """Map binary name -> ISA features the host lacks.

        This is the check that would have caught the paper's SSE4
        incident before deployment.
        """
        host = frozenset(host_features)
        problems: dict[str, list[str]] = {}
        for b in self.binaries:
            lacking = sorted(b.isa_flags - host)
            if lacking:
                problems[b.name] = lacking
        return problems
