"""The discrete-event engine: virtual clock plus event loop.

The engine owns a binary heap of ``(time, sequence, event)`` entries.
Determinism is guaranteed by the monotonically increasing sequence number,
which breaks ties between events scheduled for the same instant in
scheduling order.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer


class Engine:
    """A deterministic discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Root seed for :attr:`rng`; every stochastic model in the
        simulation must derive its randomness from this tree so that a
        run is fully reproducible.
    trace:
        When true, a :class:`~repro.sim.trace.Tracer` is attached and
        records every dispatched event (useful in tests and debugging,
        too slow for production sweeps).
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self.rng = RandomStreams(seed)
        self.tracer: Tracer | None = Tracer() if trace else None
        #: Number of processes currently blocked on an untriggered event.
        self._blocked: int = 0
        #: Total events dispatched (exposed for performance accounting).
        self.dispatched: int = 0

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Composite event firing when every event in ``events`` fires."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def process(self, generator: _t.Generator, name: str = "") -> "Process":
        """Spawn a simulated process driving ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- scheduling (engine internal) -------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Queue ``event`` for dispatch ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past ({delay!r})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def call_at(self, when: float, fn: _t.Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulated time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"call_at({when!r}) is in the past (now={self.now!r})"
            )
        ev = Timeout(self, when - self.now)
        ev.add_callback(lambda _ev: fn())
        return ev

    # -- running ----------------------------------------------------------
    def step(self) -> float:
        """Dispatch the next event; return the new simulated time."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:  # pragma: no cover - internal invariant
            raise SimulationError("event queue time went backwards")
        self.now = when
        self.dispatched += 1
        if self.tracer is not None:
            self.tracer.record(self.now, "dispatch", event.name or type(event).__name__)
        event._dispatch()
        return self.now

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run the event loop.

        ``until`` may be:

        * ``None`` — run until the queue drains.  If processes are still
          blocked at that point a :class:`~repro.errors.DeadlockError` is
          raised, because that always indicates a protocol bug (e.g. a
          ``recv`` with no matching ``send``).
        * a ``float`` — run until the clock reaches that time.
        * an :class:`Event` — run until that event fires, returning its
          value (and re-raising its failure).
        """
        if isinstance(until, Event):
            target = until
            while not (target.triggered and target.callbacks is None):
                if not self._heap:
                    raise DeadlockError(self._blocked)
                self.step()
            return target.value
        if until is None:
            while self._heap:
                self.step()
            if self._blocked:
                raise DeadlockError(self._blocked)
            return None
        horizon = float(until)
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self.now = max(self.now, horizon)
        return None

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Engine now={self.now:.6g} queued={len(self._heap)} "
            f"dispatched={self.dispatched}>"
        )
