"""The discrete-event engine: virtual clock plus event loop.

The engine owns a binary heap of ``(time, sequence, event)`` entries.
Determinism is guaranteed by the monotonically increasing sequence number,
which breaks ties between events scheduled for the same instant in
scheduling order.

Hot-path notes
--------------
``run`` is the single hottest function of every sweep, so each of its
branches inlines the dispatch loop with bound locals (``heap``, ``pop``)
instead of calling :meth:`step` per event, hoists the tracer check out of
the loop, and drains same-timestamp batches without re-storing the clock.
Numeric process sleeps (the dominant event class in the MPI skeletons) go
through a free list of :class:`_Sleep` wake-up tokens rather than
allocating a fresh :class:`Timeout` per ``yield`` — see :meth:`_sleep`.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer


class _Sleep:
    """A pooled wake-up token for plain delays (engine-internal).

    Unlike an :class:`Event` it has exactly one callback, carries no
    value, and returns itself to the engine's free list as soon as it is
    dispatched, so a million-sleep run allocates a handful of tokens.
    Only the engine may schedule these; user code never sees them.
    """

    __slots__ = ("engine", "callback", "more")

    #: Label used when a tracer records the dispatch.
    name = "sleep"

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callback: _t.Callable[[], None] | None = None
        #: Extra wake-ups coalesced onto this token (batch-sleep mode).
        self.more: list[_t.Callable[[], None]] | None = None

    def _dispatch(self) -> None:
        cb = self.callback
        extra = self.more
        self.callback = None
        self.more = None
        self.engine._sleep_pool.append(self)
        if cb is not None:
            cb()
        if extra is not None:
            for fn in extra:
                fn()


class Engine:
    """A deterministic discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Root seed for :attr:`rng`; every stochastic model in the
        simulation must derive its randomness from this tree so that a
        run is fully reproducible.
    trace:
        When true, a :class:`~repro.sim.trace.Tracer` is attached and
        records every dispatched event (useful in tests and debugging,
        too slow for production sweeps).
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self.rng = RandomStreams(seed)
        self.tracer: Tracer | None = Tracer() if trace else None
        #: Number of processes currently blocked on an untriggered event.
        self._blocked: int = 0
        #: Total events dispatched (exposed for performance accounting).
        self.dispatched: int = 0
        #: Free list of recycled :class:`_Sleep` tokens.
        self._sleep_pool: list[_Sleep] = []
        #: Coalesce back-to-back same-instant numeric sleeps onto one
        #: heap entry (see :meth:`_sleep`).  Off by default; enabled by
        #: the collective fast-forward (:mod:`repro.perf.fastcollect`)
        #: when a whole communicator wakes and re-sleeps in lockstep.
        self.batch_sleeps: bool = False
        self._batch_token: _Sleep | None = None
        self._batch_seq: int = -1
        self._batch_when: float = 0.0
        #: Optional richer deadlock reporter.  When set (e.g. by the MPI
        #: sanitizer), a queue-drained-while-blocked condition raises
        #: ``deadlock_factory(blocked_count)`` instead of a bare
        #: :class:`DeadlockError`, so the error can name the waiting
        #: ranks, their pending operations and any wait-for cycle.
        self.deadlock_factory: _t.Callable[[int], DeadlockError] | None = None

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Composite event firing when every event in ``events`` fires."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def process(self, generator: _t.Generator, name: str = "") -> "Process":
        """Spawn a simulated process driving ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- scheduling (engine internal) -------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Queue ``event`` for dispatch ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past ({delay!r})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def _sleep(self, delay: float, callback: _t.Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` using a pooled wake-up token.

        The fast path behind numeric process yields: no :class:`Timeout`
        allocation, no callback-list churn, no value plumbing.

        With :attr:`batch_sleeps` set, consecutive ``_sleep`` calls with
        *no intervening heap push* that target the same instant ride the
        previous call's token instead of pushing their own entry.  The
        guard (``_seq`` unchanged since the token was pushed) proves no
        other entry can sort between the token and a hypothetical fresh
        one, and the appended callbacks run in exactly the order fresh
        same-instant entries would have — dispatch order is identical,
        only the heap traffic shrinks.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past ({delay!r})")
        when = self.now + delay
        if self.batch_sleeps:
            if self._batch_seq == self._seq and self._batch_when == when:
                token = self._batch_token
                # A recycled token (callback already cleared by dispatch)
                # cannot match: re-pushing it would have bumped _seq.
                if token is not None and token.callback is not None:
                    if token.more is None:
                        token.more = [callback]
                    else:
                        token.more.append(callback)
                    return
            pool = self._sleep_pool
            token = pool.pop() if pool else _Sleep(self)
            token.callback = callback
            self._seq += 1
            heapq.heappush(self._heap, (when, self._seq, token))
            self._batch_token = token
            self._batch_seq = self._seq
            self._batch_when = when
            return
        pool = self._sleep_pool
        token = pool.pop() if pool else _Sleep(self)
        token.callback = callback
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, token))

    def call_at(self, when: float, fn: _t.Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulated time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"call_at({when!r}) is in the past (now={self.now!r})"
            )
        ev = Timeout(self, when - self.now)
        ev.add_callback(lambda _ev: fn())
        return ev

    def wake_at(self, when: float, value: _t.Any = None) -> Event:
        """An event firing at *absolute* simulated time ``when`` (>= now).

        The bulk clock-advance primitive behind iteration replay
        (:mod:`repro.perf.replay`): a process yields one ``wake_at`` and
        resumes exactly at ``when``, replacing an entire iteration's worth
        of heap traffic.  Unlike ``timeout(when - now)`` the event lands
        on ``when`` itself — no ``now + (when - now)`` float round trip —
        so a replayed clock hits the analytically accumulated target
        bit-for-bit.
        """
        if when < self.now:
            raise SimulationError(
                f"wake_at({when!r}) is in the past (now={self.now!r})"
            )
        return Event(self, "wake_at").schedule_at(when, value)

    def _deadlock(self) -> DeadlockError:
        """Build the error for a drained queue with blocked processes."""
        if self.deadlock_factory is not None:
            return self.deadlock_factory(self._blocked)
        return DeadlockError(self._blocked)

    def chain_deadlock_factory(
        self,
        factory: _t.Callable[
            [int, "_t.Callable[[int], DeadlockError] | None"], DeadlockError
        ],
    ) -> None:
        """Compose a richer deadlock reporter over the installed one.

        ``factory(blocked, prev)`` receives the previously installed
        plain factory (or ``None``).  Diagnostic layers (the MPI
        sanitizer, the fault injector) stack in installation order: the
        newest layer decides whether to claim the condition or delegate
        to ``prev``.
        """
        prev = self.deadlock_factory
        self.deadlock_factory = lambda blocked: factory(blocked, prev)

    # -- running ----------------------------------------------------------
    def step(self) -> float:
        """Dispatch the next event; return the new simulated time."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        self.dispatched += 1
        if self.tracer is not None:
            self.tracer.record(self.now, "dispatch", event.name or type(event).__name__)
        event._dispatch()
        return self.now

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run the event loop.

        ``until`` may be:

        * ``None`` — run until the queue drains.  If processes are still
          blocked at that point a :class:`~repro.errors.DeadlockError` is
          raised, because that always indicates a protocol bug (e.g. a
          ``recv`` with no matching ``send``).
        * a ``float`` — run until the clock reaches that time.
        * an :class:`Event` — run until that event fires, returning its
          value (and re-raising its failure).
        """
        heap = self._heap
        pop = heapq.heappop
        if isinstance(until, Event):
            target = until
            if self.tracer is not None:
                while target.callbacks is not None:
                    if not heap:
                        raise self._deadlock()
                    self.step()
                return target.value
            # An event's callback list becomes None exactly once, when it
            # is dispatched — so this single check replaces the
            # (triggered and dispatched) pair per iteration.
            n = 0
            try:
                while target.callbacks is not None:
                    if not heap:
                        raise self._deadlock()
                    when, _seq, event = pop(heap)
                    self.now = when
                    n += 1
                    event._dispatch()
            finally:
                self.dispatched += n
            return target.value
        if until is None:
            if self.tracer is not None:
                while heap:
                    self.step()
            else:
                n = 0
                try:
                    while heap:
                        when, _seq, event = pop(heap)
                        self.now = when
                        n += 1
                        event._dispatch()
                        # Same-timestamp batch: skip the clock store.
                        while heap and heap[0][0] == when:
                            _w, _seq, event = pop(heap)
                            n += 1
                            event._dispatch()
                finally:
                    self.dispatched += n
            if self._blocked:
                raise self._deadlock()
            return None
        horizon = float(until)
        if self.tracer is not None:
            while heap and heap[0][0] <= horizon:
                self.step()
        else:
            n = 0
            try:
                while heap and heap[0][0] <= horizon:
                    when, _seq, event = pop(heap)
                    self.now = when
                    n += 1
                    event._dispatch()
            finally:
                self.dispatched += n
        self.now = max(self.now, horizon)
        return None

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Engine now={self.now:.6g} queued={len(self._heap)} "
            f"dispatched={self.dispatched}>"
        )
