"""Generator-based simulated processes.

A :class:`Process` drives a Python generator.  The generator describes
behaviour in virtual time by yielding:

* an :class:`~repro.sim.events.Event` (including :class:`Timeout`,
  :class:`AllOf`, another :class:`Process`, ...) — the process blocks
  until the event fires and the ``yield`` expression evaluates to the
  event's value;
* a ``float``/``int`` — shorthand for ``engine.timeout(value)``.

A process is itself an :class:`Event` that succeeds with the generator's
return value (or fails with its uncaught exception), so processes can wait
on each other by yielding them.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Process(Event):
    """A simulated process executing a generator in virtual time."""

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, engine: "Engine", generator: _t.Generator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you call the generator function?"
            )
        super().__init__(engine, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Event | None = None
        # Start the process at the current simulated instant (but after the
        # caller's current event finishes dispatching) for determinism.
        kick = engine.event(f"start:{self.name}")
        kick.add_callback(self._resume)
        kick.succeed(None)

    @property
    def alive(self) -> bool:
        """True while the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, exc: BaseException | None = None) -> None:
        """Throw ``exc`` (default :class:`Interrupted`) into the process."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        exc = exc or Interrupted(self)
        if self._waiting_on is not None:
            # The pending event may still fire later (an in-flight message
            # delivery, a collective completing); drop our claim on it now
            # so the interrupt below is the only resumption and the
            # blocked-process count stays balanced.
            self._waiting_on = None
            self.engine._blocked -= 1
        wake = self.engine.event(f"interrupt:{self.name}")
        wake.add_callback(lambda _ev: self._step(exc, is_error=True))
        wake.succeed(None)

    # -- engine plumbing --------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Callback invoked when the event we were waiting on fires."""
        self._waiting_on = None
        if event._exc is not None:
            self._step(event._exc, is_error=True)
        else:
            self._step(event._value, is_error=False)

    def _step(self, value: _t.Any, *, is_error: bool) -> None:
        if self.triggered:
            # A late wake-up (e.g. a pooled sleep token firing after an
            # interrupt already terminated the process) has nothing to
            # deliver.
            return
        engine = self.engine
        try:
            if is_error:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted:
            # An unhandled interrupt terminates the process quietly.
            self.succeed(None)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate catch-all
            self.fail(exc)
            return

        if isinstance(target, (int, float)):
            # Plain sleep: the dominant yield in every skeleton.  A pooled
            # wake-up token replaces the Timeout allocation, the callback
            # list, and the blocked-process accounting (a sleeper always
            # keeps the queue non-empty, so it can never deadlock).
            engine._sleep(target, self._sleep_wake)
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}; expected an Event "
                "or a numeric delay"
            )
            self.fail(err)
            return
        self._waiting_on = target
        engine._blocked += 1
        target.add_callback(self._resume_unblock)

    def _resume_unblock(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Stale wake-up: an interrupt already detached the process
            # from this event (its blocked count was settled there).
            return
        self.engine._blocked -= 1
        self._resume(event)

    def _sleep_wake(self) -> None:
        """Wake from a pooled numeric sleep (no value, no failure)."""
        self._step(None, is_error=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else ("waiting" if self._waiting_on else "ready")
        return f"<Process {self.name!r} {state}>"


class Interrupted(Exception):
    """Raised inside a process by :meth:`Process.interrupt`."""

    def __init__(self, process: Process) -> None:
        super().__init__(f"process {process.name!r} interrupted")
        self.process = process
