"""Synchronisation primitives for the discrete-event engine.

An :class:`Event` is a one-shot condition that simulated processes can
block on by ``yield``-ing it.  Events carry a value (delivered to the
waiting process as the result of the ``yield`` expression) and may also
*fail*, in which case the exception is re-raised inside every waiter.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush as _heappush

from repro.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

# Sentinel distinguishing "no value yet" from a legitimate None value.
_PENDING = object()


class Event:
    """A one-shot event on an :class:`~repro.sim.engine.Engine`.

    Processes wait on an event by yielding it; any number of processes
    (or plain callbacks) may wait on the same event.  Once triggered via
    :meth:`succeed` or :meth:`fail` the event is immutable.
    """

    __slots__ = ("engine", "callbacks", "_value", "_exc", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        #: Callbacks invoked (in registration order) when the event fires.
        self.callbacks: list[_t.Callable[[Event], None]] | None = []
        self._value: _t.Any = _PENDING
        self._exc: BaseException | None = None

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful when triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> _t.Any:
        """The value the event succeeded with.

        Raises :class:`SimulationError` if the event has not yet fired and
        re-raises the failure exception if it failed.
        """
        if self._exc is not None:
            raise self._exc
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully, waking every waiter."""
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        # Inlined Engine._schedule_event(self) — succeed() runs once per
        # event of every simulation, so the call indirection matters.
        eng = self.engine
        eng._seq += 1
        _heappush(eng._heap, (eng.now, eng._seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in waiters."""
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        eng = self.engine
        eng._seq += 1
        _heappush(eng._heap, (eng.now, eng._seq, self))
        return self

    def schedule_at(self, when: float, value: _t.Any = None) -> "Event":
        """Pre-trigger the event for dispatch at *absolute* time ``when``.

        The closed-form completion primitive: the event is triggered now
        (``value`` is already decided) but its waiters wake only when the
        clock reaches ``when`` — exactly one heap entry, landing on
        ``when`` itself with no ``now + (when - now)`` float round trip.
        Both :meth:`Engine.wake_at` (iteration replay) and the collective
        fast-forward (:mod:`repro.perf.fastcollect`) are built on it.
        """
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError(f"event {self!r} already triggered")
        eng = self.engine
        if when < eng.now:
            raise SimulationError(
                f"schedule_at({when!r}) is in the past (now={eng.now!r})"
            )
        self._value = value
        eng._seq += 1
        _heappush(eng._heap, (when, eng._seq, self))
        return self

    def add_callback(self, cb: _t.Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when the event fires.

        If the event already fired *and* has been dispatched, the callback
        runs immediately (same simulated time).
        """
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)

    def _dispatch(self) -> None:
        """Run all registered callbacks exactly once (engine-internal)."""
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._exc is None else "failed"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires automatically after a simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: _t.Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__: timeouts are by far the most-allocated
        # event type, and formatting a per-instance name here used to
        # dominate their construction cost.
        self.engine = engine
        self.name = "timeout"
        self.callbacks = []
        self._value = value
        self._exc = None
        self.delay = float(delay)
        engine._seq += 1
        _heappush(engine._heap, (engine.now + self.delay, engine._seq, self))

    # A Timeout is triggered at construction; waking happens at its due time.
    @property
    def triggered(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout {self.delay:g}>"


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events.

    Each constituent's position is captured at registration time, so
    firing never searches the sequence (and duplicate event objects in
    the sequence report their own position, not the first occurrence).
    """

    __slots__ = ("events", "_n_fired")

    def __init__(self, engine: "Engine", events: _t.Sequence[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed([])
            return
        on_fire = self._on_fire
        for i, ev in enumerate(self.events):
            ev.add_callback(lambda e, _i=i: on_fire(e, _i))

    def _on_fire(self, ev: Event, index: int) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once *all* constituent events have fired.

    Succeeds with the list of constituent values (in constructor order);
    fails with the first failure observed.
    """

    __slots__ = ()

    def _on_fire(self, ev: Event, index: int) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._exc)  # type: ignore[arg-type]
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires as soon as *any* constituent event fires.

    Succeeds with the ``(index, value)`` of the first event to fire.
    """

    __slots__ = ()

    def _on_fire(self, ev: Event, index: int) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._exc)  # type: ignore[arg-type]
            return
        self.succeed((index, ev.value))
