"""Contention primitives: counted resources and message stores.

:class:`Resource` models a contended facility (a NIC, a storage server, a
CPU slot): at most ``capacity`` holders at a time, strict FIFO granting.
:class:`Store` is an unbounded FIFO of items with blocking ``get`` —
the building block for MPI mailboxes.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Resource:
    """A FIFO counted resource.

    Usage from a process::

        yield resource.request()
        try:
            yield engine.timeout(busy_time)
        finally:
            resource.release()
    """

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: collections.deque[Event] = collections.deque()
        #: Cumulative (holders x seconds) for utilisation accounting.
        self._busy_integral = 0.0
        self._last_change = engine.now

    # -- accounting -------------------------------------------------------
    def _account(self) -> None:
        now = self.engine.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    @property
    def in_use(self) -> int:
        """Current number of holders."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._queue)

    def utilisation(self) -> float:
        """Mean holders over the lifetime of the resource (0..capacity)."""
        self._account()
        if self._last_change == 0:
            return 0.0
        return self._busy_integral / self._last_change

    # -- protocol ---------------------------------------------------------
    def request(self) -> Event:
        """Return an event that fires when the caller holds the resource."""
        ev = self.engine.event(f"acquire:{self.name}")
        self._account()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        """Release one unit; grants the oldest queued request, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._account()
        if self._queue:
            # Hand the slot directly to the next waiter: in_use is unchanged.
            self._queue.popleft().succeed(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity}"
            f" queued={len(self._queue)}>"
        )


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item; if an item is already available the event fires
    immediately (still through the event queue, preserving determinism).
    An optional ``match`` predicate on ``get`` takes the first item
    satisfying it (used by MPI tag/source matching).
    """

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: collections.deque[_t.Any] = collections.deque()
        self._getters: collections.deque[tuple[Event, _t.Callable[[_t.Any], bool] | None]] = (
            collections.deque()
        )

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: _t.Any) -> None:
        """Deposit ``item``, waking the first matching waiter if any."""
        for idx, (ev, match) in enumerate(self._getters):
            if match is None or match(item):
                del self._getters[idx]
                ev.succeed(item)
                return
        self._items.append(item)

    def get(self, match: _t.Callable[[_t.Any], bool] | None = None) -> Event:
        """Return an event firing with the first (matching) item."""
        ev = self.engine.event(f"get:{self.name}")
        if match is None:
            if self._items:
                ev.succeed(self._items.popleft())
                return ev
        else:
            for idx, item in enumerate(self._items):
                if match(item):
                    del self._items[idx]
                    ev.succeed(item)
                    return ev
        self._getters.append((ev, match))
        return ev

    def peek_all(self) -> list[_t.Any]:
        """Snapshot of queued items (oldest first); for inspection only."""
        return list(self._items)
