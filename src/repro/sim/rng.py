"""Named, reproducible random streams.

Every stochastic model in the simulator (hypervisor jitter, boot
failures, spot prices, ...) draws from a *named* stream obtained from the
engine's root :class:`RandomStreams`.  Streams are derived by hashing the
name into a :class:`numpy.random.SeedSequence`, so

* the same ``(root seed, name)`` pair always yields the same stream, and
* adding a new consumer never perturbs the draws seen by existing ones
  (unlike a single shared generator).
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_key(name: str) -> tuple[int, ...]:
    """Map a stream name to a stable tuple of 32-bit integers."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return tuple(int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4))


class RandomStreams:
    """A tree of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0, _entropy: tuple[int, ...] = ()) -> None:
        self.seed = seed
        self._entropy = _entropy
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (and cache) the generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=self._entropy + _name_to_key(name)
            )
            gen = np.random.default_rng(ss)
            self._cache[name] = gen
        return gen

    def child(self, name: str) -> "RandomStreams":
        """Return a namespaced sub-tree (streams independent of parent's)."""
        return RandomStreams(self.seed, self._entropy + _name_to_key(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.seed} depth={len(self._entropy) // 4}>"
