"""Deterministic discrete-event simulation engine.

This subpackage is the substrate for every performance experiment in
:mod:`repro`.  It provides:

* :class:`~repro.sim.engine.Engine` — the event loop and virtual clock;
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` —
  one-shot synchronisation primitives;
* :class:`~repro.sim.process.Process` — generator-based simulated
  processes (``yield`` an event to block on it);
* :class:`~repro.sim.resources.Resource` and
  :class:`~repro.sim.resources.Store` — contention and message queues;
* :class:`~repro.sim.rng.RandomStreams` — named, reproducible random
  streams;
* :class:`~repro.sim.trace.Tracer` — optional structured event tracing.

Design notes
------------
The engine is deliberately lean (a binary heap keyed by
``(time, sequence)``) because MPI-scale experiments execute 10^5–10^6
events per run and the event loop is the hot path.  Determinism is a hard
requirement: two runs with the same seed must produce byte-identical
results, which is why all ties are broken by a monotone sequence number
and all randomness flows through :class:`~repro.sim.rng.RandomStreams`.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Process",
    "Resource",
    "RandomStreams",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
