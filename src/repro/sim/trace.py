"""Structured event tracing for debugging and analysis.

The tracer is optional (off by default — tracing every event in a 64-rank
NPB run is far too slow for sweeps) but invaluable in tests: assertions can
inspect exactly which events fired and when.
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence: a timestamp, a kind, and a label."""

    time: float
    kind: str
    label: str
    data: _t.Any = None


class Tracer:
    """Accumulates :class:`TraceRecord` entries in dispatch order."""

    def __init__(self, limit: int | None = None) -> None:
        self.records: list[TraceRecord] = []
        #: Optional cap to bound memory in long runs; oldest kept.
        self.limit = limit
        self.dropped = 0

    def record(self, time: float, kind: str, label: str, data: _t.Any = None) -> None:
        """Append a record (drops silently past :attr:`limit`)."""
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, kind, label, data))

    def filter(self, kind: str | None = None, label_prefix: str = "") -> list[TraceRecord]:
        """Records matching ``kind`` (if given) and a label prefix."""
        return [
            r
            for r in self.records
            if (kind is None or r.kind == kind) and r.label.startswith(label_prefix)
        ]

    def __len__(self) -> int:
        return len(self.records)
