"""Building applications in the HPC environment and packaging them.

The paper's workflow: "build application codes on the Vayu within a
user's home/project directories and then rsync the requisite libraries,
runtimes (into /apps) on a VM and the application binaries into the
home/project directories on the VM, which is then deployed either on the
private VM cluster or on EC2 instances".

Two things can go wrong, both modelled:

* a missing dependency (rsync closure incomplete) — caught by
  :meth:`~repro.virt.vmimage.VmImage.missing_dependencies`;
* an ISA mismatch — "the use of non-ubiquitous features such as SSE4
  ... which can be avoided by the selection of suitable compilation
  switches" (paper section VI).  Building with ``-xSSE4.2`` on a
  Nehalem host bakes an SSE4 requirement into the binary;
  :func:`deploy_check` reproduces the failure when the image lands on a
  host (or hypervisor CPUID mask) lacking the feature.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cloud.modulesenv import ModulesEnvironment
from repro.errors import CloudError
from repro.platforms.base import PlatformSpec
from repro.virt.vmimage import ApplicationBinary, VmImage


class PackagingError(CloudError):
    """The packaged image would not run where it is being deployed."""


@dataclasses.dataclass(frozen=True, slots=True)
class BuildRecipe:
    """How an application is compiled in the HPC environment."""

    app_name: str
    app_version: str
    compiler_module: str
    compiler_flags: tuple[str, ...] = ()
    module_deps: tuple[str, ...] = ()

    def isa_requirements(self, host: PlatformSpec) -> frozenset[str]:
        """ISA features the produced binary requires at run time.

        ``-xHost``-style flags bake in everything the build host offers;
        explicit ``-xSSE4.2`` requires SSE4 regardless; conservative
        ``-msse3`` builds carry only the baseline.
        """
        flags = set()
        for flag in self.compiler_flags:
            if flag in ("-xHost", "-xhost"):
                flags |= host.isa_features
            elif flag.lower() in ("-xsse4.2", "-xsse4.1", "-msse4"):
                flags.add("sse4")
            elif flag.lower() in ("-msse3", "-xsse3"):
                flags.add("sse3")
        return frozenset(flags)


class HpcEnvironment:
    """A facility's build environment (its platform + modules tree)."""

    def __init__(self, platform: PlatformSpec, modules: ModulesEnvironment) -> None:
        self.platform = platform
        self.modules = modules
        self._binaries: dict[str, ApplicationBinary] = {}

    def build(self, recipe: BuildRecipe) -> ApplicationBinary:
        """Compile an application (loads its modules, records the binary)."""
        self.modules.load(recipe.compiler_module)
        for dep in recipe.module_deps:
            self.modules.load(dep)
        binary = ApplicationBinary(
            name=recipe.app_name,
            version=recipe.app_version,
            compiler=recipe.compiler_module,
            isa_flags=recipe.isa_requirements(self.platform),
            requires=tuple(
                spec.split("/")[0]
                for spec in (recipe.compiler_module, *recipe.module_deps)
            ),
        )
        self._binaries[recipe.app_name] = binary
        return binary

    def package(
        self,
        image_name: str,
        apps: _t.Sequence[str],
        os_name: str = "CentOS 5.7",
    ) -> VmImage:
        """rsync the apps plus their module closure into a VM image."""
        binaries = []
        module_specs: list[str] = []
        for app in apps:
            binary = self._binaries.get(app)
            if binary is None:
                raise CloudError(f"application {app!r} has not been built here")
            binaries.append(binary)
            module_specs.extend(binary.requires)
        closure = self.modules.closure(module_specs)
        image = VmImage(
            name=image_name,
            os_name=os_name,
            packages=self.modules.as_packages(closure),
            binaries=tuple(binaries),
            size_bytes=(4 << 30) + sum(m.size_bytes for m in closure),
        )
        missing = image.missing_dependencies()
        if missing:
            raise PackagingError(f"incomplete dependency closure: {missing}")
        return image

    def rsync_seconds(self, image: VmImage, link_bw: float = 50e6) -> float:
        """Time to replicate the image content over a ``link_bw`` link."""
        return image.size_bytes / link_bw


def deploy_check(image: VmImage, target: PlatformSpec) -> None:
    """Validate an image against a deployment target.

    Raises :class:`PackagingError` describing every binary whose ISA
    requirements the target's (guest-visible) CPU features do not meet —
    the pre-flight check the paper's SSE4 incident motivates.
    """
    problems = image.check_isa(target.isa_features)
    if problems:
        details = "; ".join(
            f"{name} needs {'+'.join(feats)}" for name, feats in sorted(problems.items())
        )
        raise PackagingError(
            f"image {image.name!r} is not runnable on {target.name}: {details} "
            f"(guest-visible features: {sorted(target.isa_features)}). "
            "Rebuild with conservative compilation switches."
        )
