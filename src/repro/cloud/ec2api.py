"""A small simulated EC2 control plane.

Enough surface for the StarCluster launcher and the cloudburst
scheduler: instance types, cluster placement groups (full-bisection
10 GigE, as used by the paper's cc1.4xlarge runs), asynchronous instance
boot with realistic latencies and the occasional boot failure ("images
not booting up correctly" is one of the EC2 frictions the related work
reports), plus spot-instance support backed by
:class:`~repro.cloud.pricing.SpotMarket`.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.cloud.pricing import PriceBook, SpotMarket
from repro.errors import CloudError
from repro.platforms.ec2 import EC2 as _EC2_SPEC
from repro.sim.rng import RandomStreams


@dataclasses.dataclass(frozen=True, slots=True)
class InstanceType:
    """An EC2 instance offering."""

    name: str
    vcpus: int
    memory_bytes: int
    network: str
    hourly_usd: float
    cluster_compute: bool = False


#: The paper's instance: Cluster Compute Quadruple Extra Large.
CC1_4XLARGE = InstanceType(
    name="cc1.4xlarge",
    vcpus=16,
    memory_bytes=20 << 30,
    network="10 GigE (placement group)",
    hourly_usd=1.60,  # 2011/12 us-east on-demand price
    cluster_compute=True,
)

M1_LARGE = InstanceType(
    name="m1.large",
    vcpus=2,
    memory_bytes=7 << 30,
    network="1 GigE (shared)",
    hourly_usd=0.34,
)


@dataclasses.dataclass(slots=True)
class Instance:
    """A running (or booting/failed) instance."""

    instance_id: str
    itype: InstanceType
    placement_group: str | None
    spot: bool
    state: str = "pending"  # pending | running | failed | terminated
    boot_seconds: float = 0.0
    launch_time: float = 0.0
    terminate_time: float | None = None


class Ec2Api:
    """The control plane: launch, poll, terminate, and billing."""

    def __init__(
        self,
        region: str = "us-east-1",
        *,
        seed: int = 0,
        boot_failure_rate: float = 0.03,
        mean_boot_seconds: float = 95.0,
        prices: PriceBook | None = None,
    ) -> None:
        self.region = region
        self.rng = RandomStreams(seed).stream(f"ec2:{region}")
        self.boot_failure_rate = boot_failure_rate
        self.mean_boot_seconds = mean_boot_seconds
        self.prices = prices or PriceBook()
        self.spot_market = SpotMarket(seed=seed)
        self.instances: dict[str, Instance] = {}
        self.placement_groups: set[str] = set()
        self._ids = itertools.count(1)
        #: Wall clock of the control plane (advanced by :meth:`wait`).
        self.now = 0.0

    # -- control-plane operations ---------------------------------------------
    def create_placement_group(self, name: str) -> None:
        """Create a cluster placement group."""
        if name in self.placement_groups:
            raise CloudError(f"placement group {name!r} already exists")
        self.placement_groups.add(name)

    def run_instances(
        self,
        itype: InstanceType,
        count: int,
        placement_group: str | None = None,
        spot: bool = False,
        spot_bid: float | None = None,
    ) -> list[Instance]:
        """Request ``count`` instances; they boot asynchronously."""
        if count < 1:
            raise CloudError(f"count must be >= 1: {count}")
        if placement_group is not None:
            if placement_group not in self.placement_groups:
                raise CloudError(f"unknown placement group {placement_group!r}")
            if not itype.cluster_compute:
                raise CloudError(
                    f"{itype.name} cannot join a cluster placement group"
                )
        if spot:
            price = self.spot_market.current_price(itype, self.now)
            if spot_bid is None or spot_bid < price:
                raise CloudError(
                    f"spot bid {spot_bid!r} below current price {price:.3f}"
                )
        out = []
        for _ in range(count):
            iid = f"i-{next(self._ids):08x}"
            failed = self.rng.random() < self.boot_failure_rate
            boot = float(self.rng.gamma(4.0, self.mean_boot_seconds / 4.0))
            inst = Instance(
                instance_id=iid,
                itype=itype,
                placement_group=placement_group,
                spot=spot,
                state="failed" if failed else "pending",
                boot_seconds=boot,
                launch_time=self.now,
            )
            self.instances[iid] = inst
            out.append(inst)
        return out

    def wait(self, seconds: float) -> None:
        """Advance control-plane time; pending instances may come up."""
        if seconds < 0:
            raise CloudError(f"negative wait: {seconds}")
        self.now += seconds
        for inst in self.instances.values():
            if inst.state == "pending" and self.now - inst.launch_time >= inst.boot_seconds:
                inst.state = "running"

    def describe(self, state: str | None = None) -> list[Instance]:
        """Instances, optionally filtered by state."""
        values = list(self.instances.values())
        return [i for i in values if state is None or i.state == state]

    def terminate(self, instance_ids: _t.Iterable[str]) -> None:
        """Terminate instances (idempotent for already-dead ones)."""
        for iid in instance_ids:
            inst = self.instances.get(iid)
            if inst is None:
                raise CloudError(f"no such instance {iid!r}")
            if inst.state in ("terminated",):
                continue
            inst.state = "terminated"
            inst.terminate_time = self.now

    # -- billing ------------------------------------------------------------------
    def billed_usd(self) -> float:
        """Total charges so far (hour granularity, as EC2 billed then)."""
        total = 0.0
        for inst in self.instances.values():
            if inst.state == "failed":
                continue
            end = inst.terminate_time if inst.terminate_time is not None else self.now
            hours = max(0.0, end - inst.launch_time) / 3600.0
            billed_hours = max(1, int(-(-hours // 1))) if hours > 0 else 0
            rate = (
                self.spot_market.current_price(inst.itype, inst.launch_time)
                if inst.spot
                else inst.itype.hourly_usd
            )
            total += billed_hours * rate
        return total


def platform_for_cluster(num_nodes: int) -> _t.Any:
    """The performance-model platform for a cc1.4xlarge cluster."""
    import dataclasses as _dc

    return _dc.replace(_EC2_SPEC, num_nodes=num_nodes)
