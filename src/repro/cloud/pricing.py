"""On-demand and spot pricing models.

The paper's future work plans "to integrate Amazon EC2 spot-pricing into
our local ANUPBS scheduler, to avail of price competitive compute
resources".  The spot market here is a mean-reverting log-price process
with occasional demand spikes — the qualitative behaviour of the
2011-2012 EC2 spot market: long stretches near ~30-40% of on-demand,
punctuated by spikes above it.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from repro.errors import CloudError
from repro.sim.rng import RandomStreams

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.ec2api import InstanceType


@dataclasses.dataclass(frozen=True, slots=True)
class PriceBook:
    """On-demand price access and simple cost arithmetic."""

    currency: str = "USD"

    def on_demand_hourly(self, itype: "InstanceType") -> float:
        return itype.hourly_usd

    def job_cost(
        self, itype: "InstanceType", nodes: int, hours: float, rate: float | None = None
    ) -> float:
        """Cost of ``nodes`` instances for ``hours`` (hour-rounded).

        EC2's 2012 billing — which the paper's cost discussion assumes —
        charges a minimum of one full hour for any launched instance, so
        even a zero-duration job bills one hour per node.
        """
        if nodes < 1 or hours < 0:
            raise CloudError(f"invalid job shape: nodes={nodes}, hours={hours}")
        billed = max(1, math.ceil(hours))
        return nodes * billed * (rate if rate is not None else itype.hourly_usd)


class SpotMarket:
    """A mean-reverting spot-price process per instance type.

    ``log(price/anchor)`` follows an Ornstein-Uhlenbeck walk sampled on
    a fixed tick; demand spikes multiply the price by 2-4x and decay.
    Deterministic per seed, and *memoised per tick* so all observers see
    one consistent price series.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        anchor_fraction: float = 0.35,
        tick_seconds: float = 300.0,
        reversion: float = 0.05,
        volatility: float = 0.08,
        spike_prob: float = 0.004,
    ) -> None:
        self.anchor_fraction = anchor_fraction
        self.tick_seconds = tick_seconds
        self.reversion = reversion
        self.volatility = volatility
        self.spike_prob = spike_prob
        self._streams = RandomStreams(seed).child("spot")
        self._series: dict[str, list[float]] = {}

    def _extend(self, itype: "InstanceType", ticks: int) -> list[float]:
        series = self._series.setdefault(itype.name, [0.0])  # log-ratio
        rng = self._streams.stream(itype.name)
        while len(series) <= ticks:
            x = series[-1]
            x += -self.reversion * x + self.volatility * float(rng.standard_normal())
            if rng.random() < self.spike_prob:
                x += math.log(float(rng.uniform(2.0, 4.0)))
            series.append(x)
        return series

    def current_price(self, itype: "InstanceType", now_seconds: float) -> float:
        """Spot price (USD/hour) at absolute time ``now_seconds``."""
        if now_seconds < 0:
            raise CloudError(f"negative time: {now_seconds}")
        tick = int(now_seconds // self.tick_seconds)
        series = self._extend(itype, tick)
        anchor = itype.hourly_usd * self.anchor_fraction
        return anchor * math.exp(series[tick])

    def price_history(
        self, itype: "InstanceType", horizon_seconds: float
    ) -> list[tuple[float, float]]:
        """``(time, price)`` samples up to ``horizon_seconds``."""
        ticks = int(horizon_seconds // self.tick_seconds)
        series = self._extend(itype, ticks)
        anchor = itype.hourly_usd * self.anchor_fraction
        return [
            (i * self.tick_seconds, anchor * math.exp(series[i]))
            for i in range(ticks + 1)
        ]

    def would_outbid(
        self, itype: "InstanceType", bid: float, start: float, duration: float
    ) -> bool:
        """True if the spot price stays at or below ``bid`` throughout
        ``[start, start + duration]`` (i.e. the instance survives).

        The price is a step function changing only on tick boundaries,
        so the interval is checked tick by tick — iterating the actual
        tick indices it covers rather than stepping ``tick_seconds``
        from ``start``, which for an unaligned ``start`` would sample
        between boundaries and miss spikes entirely.
        """
        if duration < 0:
            raise CloudError(f"negative duration: {duration}")
        first = int(start // self.tick_seconds)
        last = int((start + duration) // self.tick_seconds)
        for tick in range(first, last + 1):
            if self.current_price(itype, tick * self.tick_seconds) > bid:
                return False
        return True
