"""A StarCluster-style cluster launcher on the simulated EC2 API.

"StarCluster is an open-source toolkit which allows for the launching of
custom scientific computing clusters on EC2.  It automates the building,
configuration and management of compute nodes" (paper section IV).  The
launcher here does the same against :class:`~repro.cloud.ec2api.Ec2Api`:
creates the placement group, boots master + compute nodes (replacing
boot failures), "configures" NFS and the image's software stack, and
hands back a cluster whose performance model is the calibrated EC2
platform at the requested node count.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cloud.ec2api import CC1_4XLARGE, Ec2Api, Instance, InstanceType
from repro.cloud.packaging import deploy_check
from repro.errors import CloudError
from repro.platforms.base import PlatformSpec
from repro.virt.vmimage import VmImage


@dataclasses.dataclass(frozen=True, slots=True)
class ClusterTemplate:
    """A StarCluster config-file cluster template."""

    name: str
    size: int
    instance_type: InstanceType = CC1_4XLARGE
    image: VmImage | None = None
    placement_group: bool = True
    spot: bool = False
    spot_bid: float | None = None
    #: Give up if a node fails to boot this many times.
    max_boot_retries: int = 3


@dataclasses.dataclass(slots=True)
class Cluster:
    """A running cluster: master + compute instances."""

    template: ClusterTemplate
    master: Instance
    nodes: list[Instance]
    launch_seconds: float
    platform: PlatformSpec

    @property
    def size(self) -> int:
        return len(self.nodes)

    def instance_ids(self) -> list[str]:
        return [self.master.instance_id] + [n.instance_id for n in self.nodes]


class StarCluster:
    """The launcher (``starcluster start`` / ``terminate`` work-alike)."""

    def __init__(self, api: Ec2Api) -> None:
        self.api = api
        self.clusters: dict[str, Cluster] = {}

    def start(self, template: ClusterTemplate) -> Cluster:
        """Launch a cluster, retrying failed boots, configuring NFS."""
        if template.name in self.clusters:
            raise CloudError(f"cluster {template.name!r} already running")
        if template.size < 1:
            raise CloudError(f"cluster size must be >= 1: {template.size}")
        group = None
        if template.placement_group:
            group = f"{template.name}-pg"
            self.api.create_placement_group(group)

        t_start = self.api.now
        wanted = template.size + 1  # master + compute
        running: list[Instance] = []
        attempts = 0
        while len(running) < wanted:
            if attempts > template.max_boot_retries:
                self.api.terminate(i.instance_id for i in running)
                raise CloudError(
                    f"cluster {template.name!r}: nodes kept failing to boot "
                    f"after {attempts} rounds"
                )
            missing = wanted - len(running)
            batch = self.api.run_instances(
                template.instance_type,
                missing,
                placement_group=group,
                spot=template.spot,
                spot_bid=template.spot_bid,
            )
            # Wait out the slowest boot in the batch.
            pending = [i for i in batch if i.state == "pending"]
            if pending:
                self.api.wait(max(i.boot_seconds for i in pending) + 1.0)
            running.extend(i for i in batch if i.state == "running")
            dead = [i.instance_id for i in batch if i.state == "failed"]
            if dead:
                self.api.terminate(dead)
            attempts += 1

        # "Configuration": NFS export from the master, stack from image.
        config_seconds = 40.0 + 5.0 * template.size
        self.api.wait(config_seconds)

        from repro.cloud.ec2api import platform_for_cluster

        platform = platform_for_cluster(template.size)
        if template.image is not None:
            deploy_check(template.image, platform)

        cluster = Cluster(
            template=template,
            master=running[0],
            nodes=running[1:],
            launch_seconds=self.api.now - t_start,
            platform=platform,
        )
        self.clusters[template.name] = cluster
        return cluster

    def terminate(self, name: str) -> None:
        """``starcluster terminate``: tear the whole cluster down."""
        cluster = self.clusters.pop(name, None)
        if cluster is None:
            raise CloudError(f"no running cluster {name!r}")
        self.api.terminate(cluster.instance_ids())

    def run_workload(
        self,
        name: str,
        workload: _t.Any,
        nprocs: int,
        **run_kwargs: _t.Any,
    ) -> _t.Any:
        """Run a study workload on a launched cluster's platform model."""
        cluster = self.clusters.get(name)
        if cluster is None:
            raise CloudError(f"no running cluster {name!r}")
        result = workload.run(cluster.platform, nprocs, **run_kwargs)
        # Bill the elapsed virtual time against the control-plane clock.
        elapsed = None
        for attr in ("projected_time", "total_time", "wall_time"):
            elapsed = getattr(result, attr, None)
            if elapsed is not None:
                break
        self.api.wait(float(elapsed or 0.0))
        return result
