"""Cloud provisioning: simulated EC2, StarCluster, pricing, packaging.

This subpackage models the operational side of the paper:

* :mod:`repro.cloud.modulesenv` — the ``modules``-managed ``/apps``
  software stack of a traditional HPC facility;
* :mod:`repro.cloud.packaging` — building applications inside that
  environment and rsync-packaging the dependency closure into a
  :class:`~repro.virt.vmimage.VmImage` (including the ISA-compatibility
  check that would have caught the paper's SSE4 incident);
* :mod:`repro.cloud.ec2api` — a small EC2 control plane: instance
  types, cluster placement groups, boot latencies and the occasional
  boot failure reported for real EC2 HPC work;
* :mod:`repro.cloud.starcluster` — a StarCluster-style launcher on top
  of the EC2 API (master + NFS + compute nodes, retries on boot
  failure);
* :mod:`repro.cloud.pricing` — on-demand and spot pricing (the paper's
  future work integrates spot pricing into the ANUPBS scheduler).
"""

from repro.cloud.ec2api import Ec2Api, Instance, InstanceType, CC1_4XLARGE
from repro.cloud.modulesenv import ModulesEnvironment
from repro.cloud.packaging import BuildRecipe, HpcEnvironment, PackagingError
from repro.cloud.pricing import PriceBook, SpotMarket
from repro.cloud.starcluster import ClusterTemplate, StarCluster

__all__ = [
    "BuildRecipe",
    "CC1_4XLARGE",
    "ClusterTemplate",
    "Ec2Api",
    "HpcEnvironment",
    "Instance",
    "InstanceType",
    "ModulesEnvironment",
    "PackagingError",
    "PriceBook",
    "SpotMarket",
    "StarCluster",
]
