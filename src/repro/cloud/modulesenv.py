"""The ``modules``-managed software stack of an HPC facility.

On Vayu "system-wide application compilers, support libraries, runtimes
and application codes are configured and installed into the ``/apps``
directory.  The modules software package is then used to manage versions
and append appropriate environment variables" (paper section IV).  This
is a functional model of exactly that: versioned packages with
dependencies, ``load``/``unload`` semantics, and an environment snapshot
that the packaging workflow replicates into VM images.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import CloudError
from repro.virt.vmimage import InstalledPackage


@dataclasses.dataclass(frozen=True, slots=True)
class ModuleDef:
    """One installable module (name/version plus dependencies)."""

    name: str
    version: str
    requires: tuple[str, ...] = ()
    #: Approximate installed size, used to cost the rsync replication.
    size_bytes: int = 200 << 20

    @property
    def key(self) -> str:
        return f"{self.name}/{self.version}"


class ModulesEnvironment:
    """An ``/apps`` tree plus the set of currently loaded modules."""

    def __init__(self, prefix: str = "/apps") -> None:
        self.prefix = prefix
        self._available: dict[str, ModuleDef] = {}
        self._default_version: dict[str, str] = {}
        self._loaded: dict[str, ModuleDef] = {}

    # -- installation (facility admin side) ----------------------------------
    def install(self, module: ModuleDef, default: bool = True) -> None:
        """Install a module into ``/apps``."""
        if module.key in self._available:
            raise CloudError(f"module {module.key} already installed")
        for dep in module.requires:
            if not self._find(dep):
                raise CloudError(
                    f"module {module.key} requires {dep!r}, which is not installed"
                )
        self._available[module.key] = module
        if default or module.name not in self._default_version:
            self._default_version[module.name] = module.version

    def _find(self, spec: str) -> ModuleDef | None:
        if "/" in spec:
            return self._available.get(spec)
        version = self._default_version.get(spec)
        return self._available.get(f"{spec}/{version}") if version else None

    # -- user side -------------------------------------------------------------
    def avail(self) -> list[str]:
        """``module avail``: sorted module keys."""
        return sorted(self._available)

    def load(self, spec: str) -> ModuleDef:
        """``module load``: loads a module and its dependency closure."""
        module = self._find(spec)
        if module is None:
            raise CloudError(f"module {spec!r} not found (avail: {self.avail()})")
        current = self._loaded.get(module.name)
        if current is not None and current.version != module.version:
            raise CloudError(
                f"module {module.name}/{current.version} already loaded; "
                f"unload it before loading {module.version}"
            )
        for dep in module.requires:
            self.load(dep)
        self._loaded[module.name] = module
        return module

    def unload(self, name: str) -> None:
        """``module unload``."""
        if name not in self._loaded:
            raise CloudError(f"module {name!r} is not loaded")
        del self._loaded[name]

    def loaded(self) -> list[ModuleDef]:
        """Loaded modules in name order."""
        return [self._loaded[k] for k in sorted(self._loaded)]

    # -- packaging support ---------------------------------------------------------
    def closure(self, specs: _t.Iterable[str]) -> list[ModuleDef]:
        """Dependency closure of ``specs`` (each module once, dep-first)."""
        seen: dict[str, ModuleDef] = {}

        def visit(spec: str) -> None:
            module = self._find(spec)
            if module is None:
                raise CloudError(f"module {spec!r} not found")
            if module.key in seen:
                return
            for dep in module.requires:
                visit(dep)
            seen[module.key] = module

        for spec in specs:
            visit(spec)
        return list(seen.values())

    def as_packages(self, modules: _t.Iterable[ModuleDef]) -> tuple[InstalledPackage, ...]:
        """Convert modules to image package entries (``/apps`` layout)."""
        return tuple(
            InstalledPackage(name=m.name, version=m.version, prefix=self.prefix)
            for m in modules
        )
