"""``osu_latency``: ping-pong latency vs message size (paper Fig 2)."""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.platforms.base import PlatformSpec
from repro.smpi import Placement, run_program


def _pingpong(comm, peer: int, size: int) -> _t.Generator:
    """One ping-pong round trip (rank 0 sends first, rank 1 echoes)."""
    if comm.rank == 0:
        yield from comm.send(peer, size)
        yield from comm.recv(peer)
    else:
        yield from comm.recv(peer)
        yield from comm.send(peer, size)


def _latency_program(
    comm, sizes: _t.Sequence[int], iterations: int, warmup: int
) -> _t.Generator:
    """The OSU ping-pong loop: rank 0 sends, rank 1 echoes.

    The warm-up and timed phases are marked as *separate* steady loops
    (distinct ``iteration_scope`` labels), so replay judges and
    fast-forwards each phase independently and the timed measurement
    never extrapolates from warm-up iterations.
    """
    results: dict[int, float] = {}
    peer = 1 - comm.rank
    for size in sizes:
        for phase, count in (("warmup", warmup), ("timed", iterations)):
            if phase == "timed":
                t_start = comm.wtime()
            for i in range(count):
                yield from comm.iteration_scope(
                    i, count,
                    lambda: _pingpong(comm, peer, size),
                    label=f"latency:{size}:{phase}",
                )
        results[size] = (comm.wtime() - t_start) / (2.0 * iterations)
    return results


def osu_latency(
    platform: PlatformSpec,
    sizes: _t.Sequence[int] | None = None,
    *,
    iterations: int = 100,
    warmup: int = 10,
    seed: int = 0,
) -> dict[int, float]:
    """Run the OSU latency test between two nodes of ``platform``.

    Returns ``{message size: one-way latency in seconds}``.
    """
    from repro.osu import DEFAULT_SIZES

    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    if not sizes or min(sizes) < 1:
        raise ConfigError(f"invalid message sizes: {sizes}")
    if platform.num_nodes < 2:
        raise ConfigError("osu_latency needs two nodes")
    result = run_program(
        platform,
        2,
        _latency_program,
        sizes,
        iterations,
        warmup,
        placement=Placement(num_nodes=2, ranks_per_node=1),
        seed=seed,
    )
    return result.rank_results[0]
