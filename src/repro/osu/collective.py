"""OSU collective micro-benchmarks (``osu_allreduce`` / ``osu_alltoall``).

The point-to-point tests of Figs 1-2 explain the platforms' fabric
parameters; the collective tests explain the *applications*: UM's
Helmholtz solver and Chaste's KSp are gated by small all-reduce latency,
and FT/IS by all-to-all throughput.  These sweeps expose exactly those
two quantities per platform and process count.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.platforms.base import PlatformSpec
from repro.smpi import Placement, run_program

#: Default sweep for collective message sizes (4 B .. 1 MB).
COLLECTIVE_SIZES = tuple(4 * 4**k for k in range(0, 10))


def _allreduce_program(comm, sizes, iterations, warmup) -> _t.Generator:
    # Vector-price the whole size sweep up front: a no-op unless the
    # world runs with the collective fast-forward enabled.
    comm.prime_collectives("allreduce", sizes)
    results: dict[int, float] = {}
    for size in sizes:
        for phase, count in (("warmup", warmup), ("timed", iterations)):
            yield from comm.barrier()
            if phase == "timed":
                t_start = comm.wtime()
            for i in range(count):
                yield from comm.iteration_scope(
                    i, count,
                    lambda: comm.allreduce(size, value=0.0),
                    label=f"allreduce:{size}:{phase}",
                )
        results[size] = (comm.wtime() - t_start) / iterations
    return results


def _alltoall_program(comm, sizes, iterations, warmup) -> _t.Generator:
    comm.prime_collectives("alltoall", [size * comm.size for size in sizes])
    results: dict[int, float] = {}
    for size in sizes:
        total = size * comm.size  # per-rank total, OSU's per-pair "size"
        for phase, count in (("warmup", warmup), ("timed", iterations)):
            yield from comm.barrier()
            if phase == "timed":
                t_start = comm.wtime()
            for i in range(count):
                yield from comm.iteration_scope(
                    i, count,
                    lambda: comm.alltoall(total),
                    label=f"alltoall:{size}:{phase}",
                )
        results[size] = (comm.wtime() - t_start) / iterations
    return results


def _run_collective(
    program: _t.Callable[..., _t.Generator],
    platform: PlatformSpec,
    nprocs: int,
    sizes: _t.Sequence[int] | None,
    iterations: int,
    warmup: int,
    seed: int,
) -> dict[int, float]:
    sizes = list(sizes) if sizes is not None else list(COLLECTIVE_SIZES)
    if not sizes or min(sizes) < 1:
        raise ConfigError(f"invalid message sizes: {sizes}")
    if nprocs < 2:
        raise ConfigError("collective benchmarks need >= 2 ranks")
    result = run_program(
        platform, nprocs, program, sizes, iterations, warmup,
        placement=Placement(strategy="block"), seed=seed,
    )
    # All ranks observe the same completion times; rank 0's view suffices.
    return result.rank_results[0]


def osu_allreduce(
    platform: PlatformSpec,
    nprocs: int = 16,
    sizes: _t.Sequence[int] | None = None,
    *,
    iterations: int = 50,
    warmup: int = 5,
    seed: int = 0,
) -> dict[int, float]:
    """Mean all-reduce time (s) per message size on ``nprocs`` ranks."""
    return _run_collective(
        _allreduce_program, platform, nprocs, sizes, iterations, warmup, seed
    )


def osu_alltoall(
    platform: PlatformSpec,
    nprocs: int = 16,
    sizes: _t.Sequence[int] | None = None,
    *,
    iterations: int = 20,
    warmup: int = 2,
    seed: int = 0,
) -> dict[int, float]:
    """Mean all-to-all time (s) per *per-pair* message size."""
    return _run_collective(
        _alltoall_program, platform, nprocs, sizes, iterations, warmup, seed
    )
