"""``osu_multi_lat``: latency with several concurrent rank pairs.

With ``pairs`` pairs pinging simultaneously between the same two nodes,
per-pair latency degrades as the NIC serialises the concurrent streams —
the effect behind the paper's observation that fully-subscribed nodes
communicate worse than undersubscribed ones (EC2 vs EC2-4).
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.platforms.base import PlatformSpec
from repro.smpi import Placement, run_program


def _multi_lat_program(
    comm, sizes: _t.Sequence[int], iterations: int, warmup: int
) -> _t.Generator:
    """Even ranks (node 0 under cyclic placement) ping the next odd rank
    (their cross-node partner)."""
    results: dict[int, float] = {}
    sender = comm.rank % 2 == 0
    peer = comm.rank + 1 if sender else comm.rank - 1
    for size in sizes:
        yield from comm.barrier()
        for phase, count in (("warmup", warmup), ("timed", iterations)):
            if phase == "timed":
                t_start = comm.wtime()
            for i in range(count):
                yield from comm.iteration_scope(
                    i, count,
                    lambda: _pair_pingpong(comm, sender, peer, size),
                    label=f"multi_lat:{size}:{phase}",
                )
        results[size] = (comm.wtime() - t_start) / (2.0 * iterations)
    return results


def _pair_pingpong(comm, sender: bool, peer: int, size: int) -> _t.Generator:
    """One round trip of one concurrent pair."""
    if sender:
        yield from comm.send(peer, size)
        yield from comm.recv(peer)
    else:
        yield from comm.recv(peer)
        yield from comm.send(peer, size)


def osu_multi_lat(
    platform: PlatformSpec,
    pairs: int = 4,
    sizes: _t.Sequence[int] | None = None,
    *,
    iterations: int = 50,
    warmup: int = 5,
    seed: int = 0,
) -> dict[int, float]:
    """Average per-pair one-way latency with ``pairs`` concurrent pairs."""
    from repro.osu import DEFAULT_SIZES

    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    if pairs < 1:
        raise ConfigError(f"pairs must be >= 1, got {pairs}")
    slots = platform.node.cpu.schedulable_slots
    if pairs > slots:
        raise ConfigError(f"{pairs} pairs exceed the {slots} slots per node")
    result = run_program(
        platform,
        2 * pairs,
        _multi_lat_program,
        sizes,
        iterations,
        warmup,
        placement=Placement(strategy="cyclic", num_nodes=2),
        seed=seed,
    )
    # Average the senders' (even ranks') observations.
    out: dict[int, float] = {}
    for size in sizes:
        out[size] = (
            sum(result.rank_results[r][size] for r in range(0, 2 * pairs, 2)) / pairs
        )
    return out
