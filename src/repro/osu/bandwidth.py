"""``osu_bw`` / ``osu_bibw``: streaming bandwidth vs message size (Fig 1).

The OSU bandwidth test posts a *window* of non-blocking sends per
iteration and waits for a short acknowledgement, so fabric latency is
pipelined away and the measured figure approaches the NIC serialisation
rate — which is why the paper's Fig 1 peaks (~190 MB/s DCC, ~560 MB/s
EC2, multi-GB/s Vayu) sit well above what the latency figures alone
would allow.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.platforms.base import PlatformSpec
from repro.smpi import Placement, run_program

#: OSU default window size (messages in flight per iteration).
WINDOW_SIZE = 64


def _bw_iteration(comm, peer: int, size: int, window: int) -> _t.Generator:
    """One window of non-blocking sends plus the short ack."""
    if comm.rank == 0:
        reqs = [comm.isend(peer, size, tag=i) for i in range(window)]
        yield from comm.waitall(reqs)
        yield from comm.recv(peer, tag=999)  # window ack
    else:
        reqs = [comm.irecv(peer, tag=i) for i in range(window)]
        yield from comm.waitall(reqs)
        yield from comm.send(peer, 4, tag=999)


def _bw_program(
    comm, sizes: _t.Sequence[int], iterations: int, warmup: int, window: int
) -> _t.Generator:
    results: dict[int, float] = {}
    peer = 1 - comm.rank
    for size in sizes:
        for phase, count in (("warmup", warmup), ("timed", iterations)):
            if phase == "timed":
                t_start = comm.wtime()
            for i in range(count):
                yield from comm.iteration_scope(
                    i, count,
                    lambda: _bw_iteration(comm, peer, size, window),
                    label=f"bw:{size}:{phase}",
                )
        elapsed = comm.wtime() - t_start
        results[size] = size * window * iterations / elapsed
    return results


def _bibw_iteration(comm, peer: int, size: int, window: int) -> _t.Generator:
    """One bidirectional window: both ranks send and receive."""
    rreqs = [comm.irecv(peer, tag=i) for i in range(window)]
    sreqs = [comm.isend(peer, size, tag=i) for i in range(window)]
    yield from comm.waitall(rreqs + sreqs)


def _bibw_program(
    comm, sizes: _t.Sequence[int], iterations: int, warmup: int, window: int
) -> _t.Generator:
    results: dict[int, float] = {}
    peer = 1 - comm.rank
    for size in sizes:
        for phase, count in (("warmup", warmup), ("timed", iterations)):
            if phase == "timed":
                t_start = comm.wtime()
            for i in range(count):
                yield from comm.iteration_scope(
                    i, count,
                    lambda: _bibw_iteration(comm, peer, size, window),
                    label=f"bibw:{size}:{phase}",
                )
        elapsed = comm.wtime() - t_start
        # Both directions carried size*window bytes per iteration.
        results[size] = 2.0 * size * window * iterations / elapsed
    return results


def _run(
    program: _t.Callable[..., _t.Generator],
    platform: PlatformSpec,
    sizes: _t.Sequence[int] | None,
    iterations: int,
    warmup: int,
    window: int,
    seed: int,
) -> dict[int, float]:
    from repro.osu import DEFAULT_SIZES

    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    if not sizes or min(sizes) < 1:
        raise ConfigError(f"invalid message sizes: {sizes}")
    if platform.num_nodes < 2:
        raise ConfigError("bandwidth tests need two nodes")
    result = run_program(
        platform,
        2,
        program,
        sizes,
        iterations,
        warmup,
        window,
        placement=Placement(num_nodes=2, ranks_per_node=1),
        seed=seed,
    )
    return result.rank_results[0]


def osu_bandwidth(
    platform: PlatformSpec,
    sizes: _t.Sequence[int] | None = None,
    *,
    iterations: int = 20,
    warmup: int = 2,
    window: int = WINDOW_SIZE,
    seed: int = 0,
) -> dict[int, float]:
    """Unidirectional streaming bandwidth, ``{size: bytes/s}``."""
    return _run(_bw_program, platform, sizes, iterations, warmup, window, seed)


def osu_bibw(
    platform: PlatformSpec,
    sizes: _t.Sequence[int] | None = None,
    *,
    iterations: int = 20,
    warmup: int = 2,
    window: int = WINDOW_SIZE,
    seed: int = 0,
) -> dict[int, float]:
    """Bidirectional streaming bandwidth, ``{size: bytes/s}``."""
    return _run(_bibw_program, platform, sizes, iterations, warmup, window, seed)
