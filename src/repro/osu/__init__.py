"""OSU MPI micro-benchmarks (paper section V-A, Figs 1-2).

Faithful re-implementations of the OSU micro-benchmark measurement loops
on the simulated MPI:

* :func:`~repro.osu.latency.osu_latency` — ping-pong latency
  (``osu_latency``): half the averaged round-trip time per message size;
* :func:`~repro.osu.bandwidth.osu_bandwidth` — windowed streaming
  bandwidth (``osu_bw``): a window of non-blocking sends per iteration,
  one short ack per window;
* :func:`~repro.osu.bandwidth.osu_bibw` — bidirectional bandwidth
  (``osu_bibw``);
* :func:`~repro.osu.multi.osu_multi_lat` — multi-pair latency
  (``osu_multi_lat``), which exposes NIC sharing between pairs.

All take a platform spec and return a ``{message size: value}`` mapping,
measured between two ranks on *distinct* nodes (as the paper does:
"sustained message passing bandwidth and latency between two compute
nodes").
"""

from repro.osu.latency import osu_latency
from repro.osu.bandwidth import osu_bandwidth, osu_bibw
from repro.osu.collective import COLLECTIVE_SIZES, osu_allreduce, osu_alltoall
from repro.osu.multi import osu_multi_lat

#: The OSU default message-size sweep (powers of two, 1 B .. 4 MB).
DEFAULT_SIZES = tuple(2**k for k in range(0, 23))

__all__ = [
    "COLLECTIVE_SIZES",
    "DEFAULT_SIZES",
    "osu_allreduce",
    "osu_alltoall",
    "osu_bandwidth",
    "osu_bibw",
    "osu_latency",
    "osu_multi_lat",
]
