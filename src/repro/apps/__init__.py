"""The paper's two production-scale application workloads.

* :mod:`repro.apps.metum` — the UK Met Office Unified Model (MetUM)
  v7.8 global atmosphere benchmark on the N320L70 grid (640 x 481 x 70),
  18 timesteps, 1.6 GB initial dump (paper section V-C.2, Fig 6,
  Table III, Fig 7);
* :mod:`repro.apps.chaste` — the Chaste v2.1 multi-scale cardiac
  simulation on a ~4-million-node rabbit-heart mesh, 250 timesteps of a
  monodomain solve with a conjugate-gradient ``KSp`` section (paper
  section V-C.1, Fig 5).

Both are *section-instrumented skeletons* in the style of the NPB
modules: per-timestep compute bursts calibrated against the paper's
``t8`` baselines, the real communication structure (halo exchanges,
solver all-reduces, polar filtering), and the I/O phases through the
platform filesystem models.
"""

from repro.apps.metum import MetumBenchmark, MetumConfig
from repro.apps.chaste import ChasteBenchmark, ChasteConfig

__all__ = [
    "ChasteBenchmark",
    "ChasteConfig",
    "MetumBenchmark",
    "MetumConfig",
]
