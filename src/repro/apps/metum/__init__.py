"""MetUM — the UK Met Office Unified Model global atmosphere benchmark.

Paper configuration (section V-C.2): UM v7.8, N320L70 grid
(640 x 481 x 70), 2.5 simulated hours = 18 timesteps, Intel ifort
11.1.072, no output data — the only I/O is the initial 1.6 GB dump read.
Reported quantities: the "warmed" execution-time speedup (Fig 6),
32-core statistics (Table III) and per-process ``ATM_STEP`` breakdowns
(Fig 7).
"""

from repro.apps.metum.grid import N320L70, Subdomain, decompose, factor_procgrid
from repro.apps.metum.model import MetumBenchmark, MetumConfig, MetumResult

__all__ = [
    "MetumBenchmark",
    "MetumConfig",
    "MetumResult",
    "N320L70",
    "Subdomain",
    "decompose",
    "factor_procgrid",
]
