"""The MetUM benchmark driver.

Per-timestep structure (the ``ATM_STEP`` region, with phase sub-regions):

* ``atm_dynamics`` — semi-Lagrangian advection and continuity: the bulk
  of the halo traffic (wide halos, many exchanged fields);
* ``atm_helmholtz`` — the semi-implicit Helmholtz solve: tens of
  iterations, each a thin single-field halo swap plus an 8-byte
  all-reduce (the short-collective load the paper blames for DCC's
  communication costs);
* ``atm_physics`` — column physics: no communication, but
  latitude-weighted cost (the structured part of the load imbalance).

Work calibration (documented in EXPERIMENTS.md): total flops/traffic are
fitted to the paper's ``t8`` values — Vayu 963 s (memory-bound at 8
ranks/node), EC2 812 s (same silicon, undersubscribed over 2 nodes,
hence *faster* than Vayu at 8), DCC 1486 s — and Table III's 32-core
times follow from the platform models.
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as _t

from repro.apps.metum.grid import N320L70, decompose, physics_weight
from repro.errors import ConfigError
from repro.ipm.monitor import IpmMonitor
from repro.ipm.report import summarize
from repro.npb.base import mixed_msg_time
from repro.platforms.base import PlatformSpec
from repro.smpi import Placement
from repro.smpi.world import run_program

#: IPM region names.
IO_REGION = "IO"
STEP_REGION = "ATM_STEP"


@dataclasses.dataclass(frozen=True, slots=True)
class MetumConfig:
    """The N320L70 benchmark configuration."""

    grid: tuple[int, int, int] = N320L70
    timesteps: int = 18
    dump_bytes: float = 1.6e9
    #: Whole-run work over all timesteps (fitted to the paper's t8 set).
    total_flops: float = 2.1e13
    total_mem_bytes: float = 2.88e13
    #: Resident model state; drives the EC2 "cannot run on fewer than
    #: two nodes" memory constraint.
    footprint_bytes: float = 22e9
    #: Phase split of the per-step compute.
    dynamics_frac: float = 0.35
    helmholtz_frac: float = 0.30
    physics_frac: float = 0.35
    #: Halo model: exchange depth (points) and full-field exchanges per
    #: step across all advected/updated variables.
    halo_depth: int = 4
    halo_exchanges: int = 120
    #: Helmholtz solver iterations per step.
    helmholtz_iters: int = 100

    def __post_init__(self) -> None:
        total = self.dynamics_frac + self.helmholtz_frac + self.physics_frac
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"phase fractions must sum to 1, got {total}")

    @property
    def points(self) -> int:
        nx, ny, nz = self.grid
        return nx * ny * nz

    def min_nodes(self, node_dram_bytes: float) -> int:
        """Smallest node count whose aggregate memory holds the model."""
        return max(1, -(-int(self.footprint_bytes) // int(node_dram_bytes)))


@dataclasses.dataclass(slots=True)
class MetumResult:
    """Outcome of one MetUM run."""

    nprocs: int
    platform: str
    placement_nodes: int
    wall_time: float
    steady_time: float
    sim_steps: int
    timesteps: int
    io_time: float
    monitor: IpmMonitor

    @property
    def per_step_time(self) -> float:
        return self.steady_time / self.sim_steps

    @property
    def warmed_time(self) -> float:
        """The Fig 6 quantity: steady per-step time over all timesteps."""
        return self.per_step_time * self.timesteps

    @property
    def total_time(self) -> float:
        """The Table III 'time' quantity: warmed time plus I/O."""
        return self.warmed_time + self.io_time

    def comm_percent(self, region: str = STEP_REGION) -> float:
        return summarize(self.monitor, region).comm_percent

    def comm_time(self, region: str = STEP_REGION) -> float:
        """Mean per-rank MPI seconds in ``region``, projected to the
        full run length."""
        rep = summarize(self.monitor, region)
        scale = self.timesteps / self.sim_steps
        return rep.comm_time / self.monitor.nprocs * scale

    def compute_time(self, region: str = STEP_REGION) -> float:
        """Mean per-rank compute seconds in ``region`` (projected)."""
        rep = summarize(self.monitor, region)
        scale = self.timesteps / self.sim_steps
        return rep.compute_time / self.monitor.nprocs * scale

    def imbalance_percent(self, region: str = STEP_REGION) -> float:
        from repro.ipm.loadbalance import imbalance_percent

        return imbalance_percent(self.monitor, region)


class MetumBenchmark:
    """Runs the MetUM skeleton on a platform model."""

    def __init__(self, config: MetumConfig | None = None, sim_steps: int = 3) -> None:
        self.cfg = config or MetumConfig()
        if sim_steps < 1:
            raise ConfigError(f"sim_steps must be >= 1: {sim_steps}")
        self.sim_steps = min(sim_steps, self.cfg.timesteps)

    # -- placement ----------------------------------------------------------
    def placement_for(
        self, platform: PlatformSpec, nprocs: int, num_nodes: int | None = None
    ) -> Placement:
        """Choose a placement honouring the memory constraint.

        EC2's 20 GB nodes cannot hold the ~30 GB model on one node,
        reproducing the paper's "could not be run on fewer than 2
        nodes"; when a node count is given (the EC2-4 series) processes
        are distributed evenly (cyclic), as the paper describes.
        """
        min_nodes = self.cfg.min_nodes(platform.node.dram_bytes)
        slots = platform.node.cpu.schedulable_slots
        needed = max(min_nodes, -(-nprocs // slots))
        nodes = num_nodes if num_nodes is not None else needed
        if nodes < needed:
            raise ConfigError(
                f"MetUM needs >= {needed} {platform.name} nodes for "
                f"{nprocs} ranks (memory/slots), got {nodes}"
            )
        if nodes > platform.num_nodes:
            raise ConfigError(
                f"{platform.name} has only {platform.num_nodes} nodes; "
                f"{nodes} requested"
            )
        if nprocs < nodes:
            raise ConfigError(f"cannot spread {nprocs} ranks over {nodes} nodes")
        return Placement(strategy="cyclic", num_nodes=nodes)

    # -- program --------------------------------------------------------------
    def make_program(self) -> _t.Callable[..., _t.Generator]:
        cfg = self.cfg
        sim_steps = self.sim_steps

        def program(comm) -> _t.Generator:
            p = comm.size
            sub, ew, ns = decompose(cfg.grid, p, comm.rank)
            share = sub.points / cfg.points
            w_step = cfg.total_flops / cfg.timesteps * share
            q_step = cfg.total_mem_bytes / cfg.timesteps * share
            ws = cfg.footprint_bytes * share
            phys_w = physics_weight(sub, ew, ns)

            # Initial dump read: rank 0 reads, then scatters the fields.
            with comm.region(IO_REGION):
                if comm.rank == 0:
                    yield from comm.io_read(cfg.dump_bytes, concurrent=1)
                yield from comm.scatter(
                    cfg.dump_bytes / max(1, p), root=0,
                    values=[None] * p if comm.rank == 0 else None,
                )

            # Halo message sizes (bytes): depth x edge x levels x 8.
            ew_face = 8 * cfg.halo_depth * sub.ny * sub.levels
            ns_face = 8 * cfg.halo_depth * sub.nx * sub.levels
            thin_ew = ew_face // cfg.halo_depth
            thin_ns = ns_face // cfg.halo_depth

            def advection_halo(ctx, _n: float) -> float:
                per_exchange = 2.0 * mixed_msg_time(ctx, ew_face, 1) + 2.0 * (
                    mixed_msg_time(ctx, ns_face, ew)
                )
                return cfg.halo_exchanges * per_exchange

            def helmholtz_halo(ctx, _n: float) -> float:
                return 2.0 * mixed_msg_time(ctx, thin_ew, 1) + 2.0 * mixed_msg_time(
                    ctx, thin_ns, ew
                )

            def polar_comm(ctx, _n: float) -> float:
                # Polar rows gather/filter along the EW ring; only the
                # polar ranks pay, but the step synchronises everyone.
                rounds = max(1, ew.bit_length() - 1)
                return rounds * mixed_msg_time(ctx, 8 * sub.nx * sub.levels, 1)

            halo_volume = cfg.halo_exchanges * 2 * (ew_face + ns_face)

            def atm_step(timed: bool) -> _t.Generator:
                if timed:
                    comm.world.monitor[comm.world_rank].enter(
                        STEP_REGION, comm.wtime()
                    )
                with comm.region("atm_dynamics") if timed else _null():
                    yield from comm.compute(
                        flops=w_step * cfg.dynamics_frac,
                        mem_bytes=q_step * cfg.dynamics_frac,
                        working_set=ws,
                    )
                    if p > 1:
                        yield from comm.composite(
                            "MPI_Sendrecv(swap_bounds)", halo_volume, advection_halo
                        )
                        yield from comm.composite(
                            "MPI_Gatherv(polar)", 8 * sub.nx * sub.levels, polar_comm
                        )
                with comm.region("atm_helmholtz") if timed else _null():
                    per_iter_f = w_step * cfg.helmholtz_frac / cfg.helmholtz_iters
                    per_iter_q = q_step * cfg.helmholtz_frac / cfg.helmholtz_iters
                    for _ in range(cfg.helmholtz_iters):
                        yield from comm.compute(
                            flops=per_iter_f, mem_bytes=per_iter_q, working_set=ws
                        )
                        if p > 1:
                            yield from comm.composite(
                                "MPI_Sendrecv(helm_halo)",
                                2 * (thin_ew + thin_ns),
                                helmholtz_halo,
                            )
                            yield from comm.allreduce(8, value=0.0)
                with comm.region("atm_physics") if timed else _null():
                    yield from comm.compute(
                        flops=w_step * cfg.physics_frac * phys_w,
                        mem_bytes=q_step * cfg.physics_frac * phys_w,
                        working_set=ws,
                    )
                if timed:
                    comm.world.monitor[comm.world_rank].exit(
                        STEP_REGION, comm.wtime()
                    )

            # Warm-up step (spin-up costs, excluded from 'warmed' time).
            yield from atm_step(False)
            for step in range(sim_steps):
                yield from comm.iteration_scope(
                    step, sim_steps, lambda: atm_step(True), label="atm_step"
                )
            return None

        program.__name__ = "metum"
        return program

    # -- driver ------------------------------------------------------------------
    def run(
        self,
        platform: PlatformSpec,
        nprocs: int,
        *,
        num_nodes: int | None = None,
        seed: int = 0,
        reps: int = 1,
    ) -> MetumResult:
        placement = self.placement_for(platform, nprocs, num_nodes)
        result = run_program(
            platform, nprocs, self.make_program(),
            placement=placement, seed=seed, reps=reps,
        )
        mon = result.monitor
        steady = max(
            p.regions[STEP_REGION].wall_time
            for p in mon.profiles
            if STEP_REGION in p.regions
        )
        io_time = max(
            (p.regions[IO_REGION].io_time for p in mon.profiles if IO_REGION in p.regions),
            default=0.0,
        )
        return MetumResult(
            nprocs=nprocs,
            platform=platform.name,
            placement_nodes=placement.num_nodes or 0,
            wall_time=result.wall_time,
            steady_time=steady,
            sim_steps=self.sim_steps,
            timesteps=self.cfg.timesteps,
            io_time=io_time,
            monitor=mon,
        )


@contextlib.contextmanager
def _null() -> _t.Iterator[None]:
    """No-op stand-in for a region during untimed warm-up steps."""
    yield
