"""MetUM grid and domain decomposition.

The N320L70 configuration is a 640 x 481 x 70 lat-lon-height grid.  UM
decomposes the horizontal plane over a 2-D ``(ew, ns)`` processor grid;
481 latitude rows divide unevenly over typical NS process counts, which
is one physical source of the load imbalance the paper's IPM profiles
show (the other being latitude-dependent physics).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigError

#: N320L70 grid dimensions (east-west, north-south, levels).
N320L70 = (640, 481, 70)


def factor_procgrid(p: int) -> tuple[int, int]:
    """UM-style ``(ew, ns)`` factorisation: as square as possible with
    ``ew >= ns`` and ``ew`` even (the polar transpose prefers it)."""
    if p < 1:
        raise ConfigError(f"invalid process count: {p}")
    best: tuple[int, int] | None = None
    for ns in range(1, int(math.isqrt(p)) + 1):
        if p % ns:
            continue
        ew = p // ns
        if ew > 1 and ew % 2:
            continue  # odd ew (other than 1) complicates polar pairing
        best = (ew, ns)
    if best is None:
        best = (p, 1)
    return best


@dataclasses.dataclass(frozen=True, slots=True)
class Subdomain:
    """One rank's share of the horizontal grid."""

    ew_index: int
    ns_index: int
    nx: int
    ny: int
    levels: int

    @property
    def points(self) -> int:
        return self.nx * self.ny * self.levels

    @property
    def touches_pole(self) -> bool:
        """Polar rows need the semi-Lagrangian polar communication."""
        return self.ns_index in (0, -1)


def decompose(
    grid: tuple[int, int, int], p: int, rank: int
) -> tuple[Subdomain, int, int]:
    """Rank ``rank``'s subdomain plus the processor grid ``(ew, ns)``.

    Rows/columns are dealt as evenly as possible; the first remainder
    chunks get one extra point, so 481 rows over e.g. 4 NS ranks yield
    121/120/120/120 — a ~0.8% built-in imbalance before physics.
    """
    nx_g, ny_g, nz = grid
    ew, ns = factor_procgrid(p)
    if not (0 <= rank < p):
        raise ConfigError(f"rank {rank} out of range for p={p}")
    ei, ni = rank % ew, rank // ew

    def chunk(total: int, parts: int, idx: int) -> int:
        base, extra = divmod(total, parts)
        return base + (1 if idx < extra else 0)

    sub = Subdomain(
        ew_index=ei,
        ns_index=ni if ni < ns - 1 else -1,
        nx=chunk(nx_g, ew, ei),
        ny=chunk(ny_g, ns, ni),
        levels=nz,
    )
    return sub, ew, ns


def physics_weight(sub: Subdomain, ew: int, ns: int) -> float:
    """Spatially varying physics cost factor, ~1.0 on average.

    Two zero-mean-by-construction components of UM's structured load
    imbalance:

    * latitude: convection/radiation are far more expensive in the
      tropics — a cosine profile normalised by its mean (``2 / pi``);
    * longitude: day-side radiation exceeds night-side — a cosine in the
      east-west direction (zero mean over the full circle).

    Amplitudes are calibrated so the Table III "%imbal" figures (13%
    Vayu, 18-19% EC2) emerge from the decomposition.
    """
    weight = 1.0
    if ns > 1:
        idx = sub.ns_index if sub.ns_index >= 0 else ns - 1
        centre = (idx + 0.5) / ns
        lat_amp = 0.45
        weight *= (1.0 + lat_amp * math.cos((centre - 0.5) * math.pi)) / (
            1.0 + lat_amp * 2.0 / math.pi
        )
    if ew > 1:
        ew_centre = (sub.ew_index + 0.5) / ew
        weight *= 1.0 + 0.22 * math.cos(2.0 * math.pi * ew_centre)
    return weight
