"""Chaste — multi-scale cardiac electrophysiology simulation.

Paper configuration (section V-C.1): Chaste v2.1 built with Intel icpc
11.1.046, high-resolution rabbit heart mesh (~4 million nodes, 24
million elements), 2.0 ms simulation = 250 timesteps of a monodomain
solve with a conjugate-gradient linear solver.  Chaste could not be
installed on EC2 in the available time, so the paper (and this model's
experiment index) compares Vayu and DCC only.

Reported quantities: total and ``KSp``-section speedups (Fig 5), the
32-core IPM analysis (48% communication on DCC vs 11% on Vayu; KSp
communication "entirely 4-byte all-reduce operations"), and the I/O
behaviour of the input-mesh and output sections.
"""

from repro.apps.chaste.mesh import HeartMesh, partition_stats
from repro.apps.chaste.model import ChasteBenchmark, ChasteConfig, ChasteResult

__all__ = [
    "ChasteBenchmark",
    "ChasteConfig",
    "ChasteResult",
    "HeartMesh",
    "partition_stats",
]
