"""The rabbit-heart mesh model and its partition statistics.

We do not store 24 million tetrahedra; what the performance model needs
from the mesh is, per rank, (a) its share of nodes/elements (with the
partitioner's characteristic imbalance) and (b) the size of its halo
(the partition surface), which a 3-D geometric argument gives as
``O((N/p)^(2/3))`` nodes per neighbour face.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError

#: Paper figures for the high-resolution rabbit heart.
RABBIT_NODES = 4_000_000
RABBIT_ELEMENTS = 24_000_000


@dataclasses.dataclass(frozen=True, slots=True)
class HeartMesh:
    """Summary description of the cardiac mesh."""

    nodes: int = RABBIT_NODES
    elements: int = RABBIT_ELEMENTS
    #: Bytes of the on-disk mesh files (paper: 1.4 GB read at startup).
    file_bytes: float = 1.4e9
    #: Relative spread of partition sizes from the graph partitioner
    #: (METIS-class partitioners typically land within a few percent).
    partition_imbalance: float = 0.04

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.elements < 1:
            raise ConfigError(f"invalid mesh: {self}")


@dataclasses.dataclass(frozen=True, slots=True)
class PartitionStats:
    """One rank's share of the mesh."""

    local_nodes: int
    local_elements: int
    halo_nodes: int
    neighbours: int


def partition_stats(
    mesh: HeartMesh, p: int, rank: int, *, seed: int = 5
) -> PartitionStats:
    """Deterministic per-rank partition statistics.

    Sizes are drawn around ``N/p`` with the partitioner's imbalance
    (deterministic in ``(seed, p, rank)``), the halo scales with the
    partition surface, and interior partitions have ~6 neighbours
    (boundary ones fewer).
    """
    if not (0 <= rank < p):
        raise ConfigError(f"invalid rank {rank} of {p}")
    rng = np.random.default_rng(np.random.SeedSequence((seed, p, rank)))
    skew = 1.0 + mesh.partition_imbalance * float(rng.uniform(-1.0, 1.0))
    local_nodes = max(1, int(mesh.nodes / p * skew))
    local_elements = max(1, int(mesh.elements / p * skew))
    if p == 1:
        return PartitionStats(local_nodes, local_elements, 0, 0)
    surface = int(4.0 * local_nodes ** (2.0 / 3.0))
    neighbours = int(min(p - 1, max(2, rng.integers(4, 8))))
    return PartitionStats(local_nodes, local_elements, surface, neighbours)
