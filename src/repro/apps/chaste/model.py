"""The Chaste benchmark driver.

Per-timestep structure:

* ``cell_ODE`` — per-node ionic cell models: compute-dominated, no
  communication, partition-imbalanced;
* ``assembly`` — monodomain PDE assembly: compute plus one halo swap;
* ``KSp`` — the PETSc-style conjugate-gradient solve: per iteration an
  SpMV halo swap plus **two 4-byte all-reduces** (the paper observes the
  KSp section's communication "are entirely 4-byte all-reduce
  operations").

Plus the non-loop sections the paper analyses: ``input_mesh`` (read +
partition; 1.37x faster on Vayu, weak 1.25x scaling on both platforms)
and ``output`` (constant-time on DCC's NFS, inverse scaling on Vayu's
Lustre as writer/lock contention grows).

Work calibration: KSp is a random-access memory-bound solve fitted to
the 8-core section baselines; Fig 5's legend pairs in the source text
are ambiguous (they read as if DCC were *faster*, contradicting the
paper's own analysis: DCC computation is 1.5x Vayu's and its scaling
"much poorer"), so we adopt the consistent assignment — Vayu t8 = 1017 s
total / 579 s KSp, DCC t8 = 1599 s / 938 s — and record the discrepancy
in EXPERIMENTS.md.
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as _t

from repro.apps.chaste.mesh import HeartMesh, partition_stats
from repro.errors import ConfigError
from repro.ipm.monitor import IpmMonitor
from repro.ipm.report import summarize
from repro.npb.base import mixed_msg_time
from repro.platforms.base import PlatformSpec
from repro.smpi import Placement
from repro.smpi.world import run_program

#: IPM region names.
INPUT_REGION = "input_mesh"
ODE_REGION = "cell_ODE"
ASSEMBLY_REGION = "assembly"
KSP_REGION = "KSp"
OUTPUT_REGION = "output"
STEP_REGION = "timestep"


@dataclasses.dataclass(frozen=True, slots=True)
class ChasteConfig:
    """The rabbit-heart benchmark configuration."""

    mesh: HeartMesh = HeartMesh()
    timesteps: int = 250
    #: Conjugate-gradient iterations per timestep.
    ksp_iters: int = 60
    #: Per-timestep work of the KSp solve (fitted to Vayu/DCC t8).
    ksp_flops_per_step: float = 4.8e10
    ksp_mem_per_step: float = 7.4e10
    #: Per-timestep work outside KSp (cell ODEs + assembly).
    other_flops_per_step: float = 4.51e10
    other_mem_per_step: float = 1.4e10
    #: Fraction of the non-KSp work in the cell-ODE sweep.
    ode_frac: float = 0.7
    #: Resident footprint (the paper notes it exceeds MetUM's).
    footprint_bytes: float = 23e9
    #: Output written per run (small; the benchmark is not I/O heavy).
    output_bytes: float = 2.0e8
    #: Serial + parallelisable compute of the input-mesh section
    #: (reference seconds at the DCC core rate).
    input_serial_seconds: float = 30.0
    input_parallel_seconds: float = 80.0


@dataclasses.dataclass(slots=True)
class ChasteResult:
    """Outcome of one Chaste run."""

    nprocs: int
    platform: str
    wall_time: float
    steady_time: float
    sim_steps: int
    timesteps: int
    monitor: IpmMonitor

    @property
    def per_step_time(self) -> float:
        return self.steady_time / self.sim_steps

    def section_wall(self, region: str) -> float:
        """Max-over-ranks wall time of one section, projected to the
        full run for per-step sections."""
        wall = max(
            (p.regions[region].wall_time for p in self.monitor.profiles
             if region in p.regions),
            default=0.0,
        )
        if region in (ODE_REGION, ASSEMBLY_REGION, KSP_REGION, STEP_REGION):
            wall *= self.timesteps / self.sim_steps
        return wall

    @property
    def total_time(self) -> float:
        """Projected full-run elapsed time (the Fig 5 'total')."""
        return (
            self.section_wall(INPUT_REGION)
            + self.per_step_time * self.timesteps
            + self.section_wall(OUTPUT_REGION)
        )

    @property
    def ksp_time(self) -> float:
        """Projected KSp section time (the Fig 5 'KSp')."""
        return self.section_wall(KSP_REGION)

    def comm_percent(self, region: str = STEP_REGION) -> float:
        """Communication percentage over the steady timestep loop (the
        quantity of the paper's 32-core IPM analysis)."""
        return summarize(self.monitor, region).comm_percent


class ChasteBenchmark:
    """Runs the Chaste skeleton on a platform model."""

    def __init__(self, config: ChasteConfig | None = None, sim_steps: int = 3) -> None:
        self.cfg = config or ChasteConfig()
        if sim_steps < 1:
            raise ConfigError(f"sim_steps must be >= 1: {sim_steps}")
        self.sim_steps = min(sim_steps, self.cfg.timesteps)

    def make_program(self) -> _t.Callable[..., _t.Generator]:
        cfg = self.cfg
        sim_steps = self.sim_steps

        def program(comm) -> _t.Generator:
            p = comm.size
            part = partition_stats(cfg.mesh, p, comm.rank)
            share = part.local_nodes / cfg.mesh.nodes  # skewed ~1/p
            ws = cfg.footprint_bytes * share

            # ---- input mesh: parallel read + mostly-serial partition ----
            with comm.region(INPUT_REGION):
                yield from comm.io_read(cfg.mesh.file_bytes / p, concurrent=p)
                ref_rate = 2.27e9  # reference core rate for the constants
                yield from comm.compute(
                    flops=(cfg.input_serial_seconds
                           + cfg.input_parallel_seconds / p) * ref_rate
                )
                yield from comm.barrier()

            halo_bytes = 8 * part.halo_nodes

            def ksp_halo(ctx, _n: float) -> float:
                # Neighbour exchanges; graph partitions have no rank
                # locality, so neighbour strides span the job.
                return part.neighbours * mixed_msg_time(
                    ctx, halo_bytes / max(1, part.neighbours), max(1, p // 4)
                )

            def timestep(timed: bool) -> _t.Generator:
                if timed:
                    comm.world.monitor[comm.world_rank].enter(STEP_REGION, comm.wtime())
                with comm.region(ODE_REGION) if timed else _null():
                    yield from comm.compute(
                        flops=cfg.other_flops_per_step * cfg.ode_frac * share,
                        mem_bytes=cfg.other_mem_per_step * cfg.ode_frac * share,
                        working_set=ws,
                    )
                with comm.region(ASSEMBLY_REGION) if timed else _null():
                    yield from comm.compute(
                        flops=cfg.other_flops_per_step * (1 - cfg.ode_frac) * share,
                        mem_bytes=cfg.other_mem_per_step * (1 - cfg.ode_frac) * share,
                        working_set=ws,
                    )
                    if p > 1:
                        yield from comm.composite(
                            "MPI_Sendrecv(assembly_halo)", halo_bytes, ksp_halo
                        )
                with comm.region(KSP_REGION) if timed else _null():
                    it_f = cfg.ksp_flops_per_step * share / cfg.ksp_iters
                    it_q = cfg.ksp_mem_per_step * share / cfg.ksp_iters
                    for _ in range(cfg.ksp_iters):
                        yield from comm.compute(
                            flops=it_f, mem_bytes=it_q,
                            working_set=ws, access="random",
                        )
                        if p > 1:
                            yield from comm.composite(
                                "MPI_Sendrecv(spmv_halo)", halo_bytes, ksp_halo
                            )
                            yield from comm.allreduce(4, value=0.0)
                            yield from comm.allreduce(4, value=0.0)
                if timed:
                    comm.world.monitor[comm.world_rank].exit(STEP_REGION, comm.wtime())

            yield from timestep(False)  # warm-up step (untimed, unmarked)
            for step in range(sim_steps):
                yield from comm.iteration_scope(
                    step, sim_steps, lambda: timestep(True), label="timestep"
                )

            # ---- output: every rank writes its piece to the shared fs ----
            with comm.region(OUTPUT_REGION):
                yield from comm.io_write(cfg.output_bytes / p, concurrent=p)
                if comm.world.platform.fs.name.lower().startswith("lustre"):
                    # Lock/metadata contention grows with writer count —
                    # the paper's "scaled inversely on Vayu" observation.
                    yield from comm.delay(0.12 * p, account="io")
            return None

        program.__name__ = "chaste"
        return program

    def run(
        self,
        platform: PlatformSpec,
        nprocs: int,
        *,
        placement: Placement | None = None,
        seed: int = 0,
        reps: int = 1,
    ) -> ChasteResult:
        result = run_program(
            platform, nprocs, self.make_program(),
            placement=placement, seed=seed, reps=reps,
        )
        mon = result.monitor
        steady = max(
            p.regions[STEP_REGION].wall_time
            for p in mon.profiles
            if STEP_REGION in p.regions
        )
        return ChasteResult(
            nprocs=nprocs,
            platform=platform.name,
            wall_time=result.wall_time,
            steady_time=steady,
            sim_steps=self.sim_steps,
            timesteps=self.cfg.timesteps,
            monitor=mon,
        )


@contextlib.contextmanager
def _null() -> _t.Iterator[None]:
    """No-op stand-in for a region during untimed warm-up steps."""
    yield
