"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``platforms``
    Print the Table-I platform inventory.
``experiments``
    List the registered paper experiments.
``run <ids...>``
    Regenerate experiments (``all`` for everything); ``--full`` runs the
    complete sweeps, ``--jobs N`` fans sweep cells over N processes,
    ``--sanitize`` runs every world under the MPI sanitizer,
    ``--faults <spec>`` injects a fault schedule into every world,
    ``--replay``/``--no-replay`` control steady-iteration fast-forward,
    ``--fastcollect``/``--no-fastcollect`` control the analytic
    collective fast-forward,
    ``--sim-iters N`` overrides the NPB steady-loop length,
    ``--supervise``/``--timeout``/``--retries`` run sweep cells under
    the supervised harness (watchdog, bounded retries, degrade),
    ``--journal PATH`` appends completed cells to a crash-safe JSONL
    journal and ``--resume PATH`` skips cells already journaled there,
    ``--store PATH|tcp://HOST:PORT`` serves/publishes cells through the
    content-addressed global cell store — a local directory or a
    ``repro store serve`` server (also via ``REPRO_STORE``; see
    ``docs/caching.md`` and ``docs/resilience.md``),
    ``--json``/``--csv``/``--out`` export results.

Exit codes
----------
``0``
    Success — every requested cell/experiment completed.
``3``
    Partial — some supervised sweep cells ultimately failed, but the
    report rendered with explicit ``FAILED(<cause>)`` entries.
``1``
    Fatal — bad configuration or an unhandled failure; no report.
``bench engine``
    Engine dispatch-throughput microbenchmark; writes
    ``BENCH_engine.json``, can gate against a baseline (``--check``)
    and can append a per-commit trajectory row (``--append-history``).
``faults sweep``
    Sweep the checkpoint/restart model over failure rate x checkpoint
    interval (see ``docs/resilience.md``).
``store <op> <path>``
    Maintain a content-addressed cell store (``docs/caching.md``):
    ``stats`` tallies records/shards/workers (also for ``tcp://``
    endpoints), ``verify`` re-derives every record's key and payload
    hash (exit 1 on integrity problems), ``gc`` compacts
    stale/duplicate/malformed records, ``export`` and ``import`` stream
    records between hosts as a single JSONL file in bounded memory,
    ``serve`` exposes a root over TCP for ``--store tcp://HOST:PORT``
    fleets and ``ping`` probes such a server (``docs/resilience.md``).
``lint [paths...]``
    Static determinism linter over ``src``/``benchmarks`` (or the given
    paths); exits 1 when findings remain (see ``docs/analysis.md``).
    ``--deep`` adds the whole-program analysis (call-graph closures,
    DET007-DET011, per-worker code fingerprints); ``--format sarif``
    and ``--baseline`` support CI gating on new findings only.
``fingerprint [workers...]``
    Print (or ``--check`` the stability of) the semantic code
    fingerprint of each registered cell worker — the journal-v2 /
    result-cache code-identity key.
``worker --connect HOST:PORT``
    Join a distributed sweep as a TCP cell worker: connect to the
    coordinator of a ``--backend tcp:...`` run (retrying the initial
    connection with bounded backoff) and execute leased cells until
    told to stop (see ``docs/distributed.md``).
``chaos proxy LISTEN UPSTREAM``
    Forward TCP traffic while mangling it on a seeded schedule
    (drop/delay/truncate/sever) — the harness for exercising the
    resilience layer's failure matrix (``docs/resilience.md``).
``bench harness``
    Executor dispatch-overhead microbenchmark (cells/sec for serial,
    pool, chunked and loopback-TCP backends); writes
    ``BENCH_harness.json``, gates with ``--check`` and appends
    trajectory rows with ``--append-history``.
``osu <platform>``
    Run the OSU latency + bandwidth pair on one platform.
``npb <bench> <platform> <nprocs>``
    Run one NPB benchmark point and print its result.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.errors import ReproError


def _cmd_platforms(_args: argparse.Namespace) -> int:
    from repro.platforms import platform_table

    print(platform_table())
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    from repro.harness.experiments import EXPERIMENTS

    for eid, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{eid:<10} {doc}")
    return 0


def _supervisor_policy(args: argparse.Namespace) -> "_t.Any | None":
    """Build a SupervisorPolicy from CLI flags (None: unsupervised).

    Any supervision-related flag implies supervision; ``--resume``
    keeps journaling into the resumed file unless ``--journal`` names a
    different one.
    """
    wanted = (
        args.supervise
        or args.timeout is not None
        or args.retries is not None
        or args.journal_path
        or args.resume
    )
    if not wanted:
        return None
    from repro.harness.supervisor import SupervisorPolicy

    return SupervisorPolicy(
        timeout=args.timeout,
        retries=1 if args.retries is None else args.retries,
        journal=args.journal_path or args.resume or None,
        resume=args.resume or None,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.experiments import EXPERIMENTS
    from repro.harness.runner import run_batch

    ids = list(EXPERIMENTS) if "all" in args.ids else args.ids
    batch = run_batch(
        ids, quick=not args.full, seed=args.seed, jobs=args.jobs,
        sanitize=args.sanitize, faults=args.faults,
        replay=args.replay, fastcollect=args.fastcollect,
        sim_iters=args.sim_iters,
        supervisor=_supervisor_policy(args),
        store=args.store,
        backend=args.backend,
        progress=lambda eid: print(f"[running] {eid}", file=sys.stderr),
    )
    print(batch.render())
    if batch.harness_summary:
        print(f"[{batch.harness_summary}]", file=sys.stderr)
    if batch.store_summary:
        print(f"[{batch.store_summary}]", file=sys.stderr)
    if batch.executor_summary:
        print(f"[{batch.executor_summary}]", file=sys.stderr)
    if args.json:
        batch.write_json(args.json)
        print(f"[written] {args.json}", file=sys.stderr)
    if args.csv:
        batch.write_csv(args.csv)
        print(f"[written] {args.csv}", file=sys.stderr)
    if args.out:
        batch.write_text(args.out)
        print(f"[written] {args.out}", file=sys.stderr)
    return 3 if batch.failures else 0


def _cmd_osu(args: argparse.Namespace) -> int:
    from repro.osu import osu_bandwidth, osu_latency
    from repro.platforms import get_platform

    spec = get_platform(args.platform)
    sizes = [2**k for k in range(0, 23, 2)]
    lat = osu_latency(spec, sizes, iterations=50, seed=args.seed)
    bw = osu_bandwidth(spec, sizes, iterations=10, seed=args.seed)
    print(f"# OSU on {spec.name}")
    print(f"{'bytes':>9} {'latency(us)':>12} {'bw(MB/s)':>10}")
    for n in sizes:
        print(f"{n:>9} {lat[n] * 1e6:>12.2f} {bw[n] / 1e6:>10.1f}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.npb.kernels.validate import render_verifications, run_all_verifications

    records = run_all_verifications(
        quick=not args.full,
        progress=lambda name: print(f"[verify] {name}", file=sys.stderr),
    )
    print(render_verifications(records))
    return 0 if all(r.passed for r in records) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.lint import RULES, lint_paths, render_findings

    fmt = args.format
    if args.json:  # pre---format spelling, kept for compatibility
        fmt = "json"
    paths = args.paths or ["src", "benchmarks"]
    # Per-file scan stays intra-file (DET001-DET006); the deep rules
    # (DET007-DET011) are interprocedural by definition and run over
    # the worker call-graph closures in analyze_workers() below.
    findings: list[_t.Any] = list(lint_paths(paths))
    report = None
    if args.deep:
        from repro.analysis.static import analyze_workers

        report = analyze_workers()
        findings.extend(report.findings)
    if args.baseline:
        from repro.analysis.static import load_baseline, new_findings

        findings = new_findings(findings, load_baseline(args.baseline))
    if fmt == "sarif":
        from repro.analysis.static import to_sarif

        print(json.dumps(to_sarif(findings, RULES), indent=2))
    elif fmt == "json":
        payload: _t.Any = [
            {"path": f.path, "line": f.line, "col": f.col,
             "rule": f.rule, "message": f.message,
             **({"workers": list(f.workers)} if hasattr(f, "workers") else {})}
            for f in findings
        ]
        if args.deep and report is not None:
            payload = {"findings": payload,
                       "workers": report.to_dict()["workers"]}
        print(json.dumps(payload, indent=2))
    else:
        if args.deep and report is not None:
            for c in report.closures:
                print(f"  {c.describe()}")
        plain = [f for f in findings if not hasattr(f, "workers")]
        deep = [f for f in findings if hasattr(f, "workers")]
        if plain or not deep:
            print(render_findings(plain))
        for f in deep:
            print(f.render())
    return 1 if findings else 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.static import ModuleIndex, worker_closure

    index = ModuleIndex()
    names = sorted(index.workers()) if (args.all or not args.workers) \
        else list(args.workers)
    closures = [worker_closure(w, index) for w in names]
    if args.check:
        # Recompute from a fresh index: any nondeterminism in parsing,
        # traversal or hashing shows up as a mismatch.
        fresh = ModuleIndex()
        for c in closures:
            again = worker_closure(c.worker, fresh)
            if again.fingerprint != c.fingerprint:
                print(
                    f"[unstable] {c.worker}: {c.fingerprint} != "
                    f"{again.fingerprint}",
                    file=sys.stderr,
                )
                return 1
        print(f"[ok] {len(closures)} fingerprint(s) stable", file=sys.stderr)
    if args.json:
        print(json.dumps(
            {c.worker: {
                "fingerprint": c.fingerprint,
                "root": list(c.root),
                "definitions": len(c.definitions),
                "modules": list(c.modules),
            } for c in closures},
            indent=2, sort_keys=True,
        ))
    else:
        for c in closures:
            print(c.describe())
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.faults.sweep import sweep_failure_checkpoint

    if args.faults_command == "sweep":
        result = sweep_failure_checkpoint(
            args.rates, args.intervals,
            work=args.work,
            checkpoint_cost=args.checkpoint_cost,
            restart_cost=args.restart_cost,
            trials=args.trials,
            seed=args.seed,
            jobs=args.jobs,
            supervisor=_supervisor_policy(args),
            store=args.store,
            backend=args.backend,
        )
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(result.render())
        if result.harness_summary:
            print(f"[{result.harness_summary}]", file=sys.stderr)
        if result.store_summary:
            print(f"[{result.store_summary}]", file=sys.stderr)
        if result.executor_summary:
            print(f"[{result.executor_summary}]", file=sys.stderr)
        return 3 if result.failures else 0
    raise AssertionError(f"unhandled faults subcommand {args.faults_command!r}")


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConfigError
    from repro.harness.cellstore import CellStore

    remote = args.path.startswith("tcp://")
    if args.store_command == "serve":
        from repro.harness.netstore import parse_endpoint, serve

        host, port = parse_endpoint(args.bind)
        return serve(
            args.path, host, port,
            lease_ttl=args.lease_ttl, max_requests=args.max_requests,
        )
    if args.store_command == "ping":
        from repro.errors import UnavailableError
        from repro.harness.netstore import RemoteCellStore

        client = RemoteCellStore(args.path)
        try:
            pong = client.ping()
        except UnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            client.close()
        print(
            f"[pong] {args.path} protocol={pong.get('version')} "
            f"root={pong.get('root')}"
        )
        return 0
    if remote and args.store_command != "stats":
        raise ConfigError(
            f"store {args.store_command} needs a local store root, not "
            f"{args.path!r} (run it on the serving host)"
        )
    if args.store_command == "stats":
        if remote:
            from repro.harness.netstore import RemoteCellStore

            client = RemoteCellStore(args.path)
            try:
                tallies = client.remote_stats()
            finally:
                client.close()
            if args.json:
                print(json.dumps(tallies, indent=2))
            else:
                from repro.harness.cellstore import StoreStats

                stats = StoreStats(**{
                    k: v for k, v in tallies.items()
                    if k in StoreStats.__dataclass_fields__
                })
                print(stats.render())
            return 0
        stats = CellStore(args.path).stats()
        if args.json:
            print(json.dumps(stats.to_dict(), indent=2))
        else:
            print(stats.render())
        return 0
    store = CellStore(args.path)
    if args.store_command == "verify":
        report = store.verify()
        print(report.render())
        return 0 if report.clean else 1
    if args.store_command == "gc":
        report = store.gc(
            drop_unknown=args.drop_unknown, dry_run=args.dry_run
        )
        print(report.render())
        return 0
    if args.store_command == "export":
        if args.out:
            count = store.export(args.out)
            print(f"[exported] {count} record(s) to {args.out}", file=sys.stderr)
        else:
            count = 0
            for line in store.export_lines():
                print(line)
                count += 1
            print(f"[exported] {count} record(s)", file=sys.stderr)
        return 0
    if args.store_command == "import":
        added, dup, invalid = store.import_file(args.file)
        print(
            f"[imported] {added} record(s) added, {dup} already present, "
            f"{invalid} invalid skipped",
            file=sys.stderr,
        )
        return 0 if invalid == 0 else 1
    raise AssertionError(f"unhandled store subcommand {args.store_command!r}")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.enginebench import (
        append_history,
        check_against_baseline,
        load_rows,
        render_rows,
        write_rows,
    )

    if args.bench_command == "harness":
        from repro.perf.harnessbench import run_harness_bench

        rows = run_harness_bench(
            cells=args.cells, jobs=args.jobs, reps=args.reps,
            modes=args.modes,
        )
    elif args.bench_command == "engine":
        from repro.perf.enginebench import run_engine_bench

        rows = run_engine_bench(reps=args.reps, workloads=args.workloads)
    else:
        raise AssertionError(f"unhandled bench subcommand {args.bench_command!r}")
    print(render_rows(rows))
    if args.out:
        write_rows(rows, args.out)
        print(f"[written] {args.out}", file=sys.stderr)
    if args.append_history:
        records = append_history(rows, args.append_history)
        print(
            f"[appended] {len(records)} row(s) to {args.append_history}",
            file=sys.stderr,
        )
    if args.check:
        failures = check_against_baseline(
            rows, load_rows(args.check), tolerance=args.tolerance
        )
        if args.bench_command == "harness":
            from repro.perf.harnessbench import check_speedup

            failures += check_speedup(rows)
        if failures:
            for line in failures:
                print(f"[regression] {line}", file=sys.stderr)
            return 1
        print(f"[ok] within {args.tolerance:.0%} of {args.check}", file=sys.stderr)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.harness.netqueue import run_worker

    host, sep, port = args.connect.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"--connect needs HOST:PORT, got {args.connect!r}"
        )
    try:
        port_n = int(port)
    except ValueError:
        raise ConfigError(f"bad port in --connect: {port!r}") from None
    return run_worker(
        host, port_n,
        heartbeat=args.heartbeat,
        connect_retries=args.connect_retries,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.netchaos import run_proxy

    if args.chaos_command == "proxy":
        return run_proxy(
            args.listen, args.upstream, spec=args.spec, seed=args.seed
        )
    raise AssertionError(f"unhandled chaos subcommand {args.chaos_command!r}")


def _cmd_npb(args: argparse.Namespace) -> int:
    from repro.npb import get_benchmark
    from repro.platforms import get_platform

    bench = get_benchmark(args.bench, klass=args.klass)
    result = bench.run(get_platform(args.platform), args.nprocs, seed=args.seed)
    print(f"{result.label()} on {result.platform}:")
    print(f"  projected time : {result.projected_time:10.2f} s")
    print(f"  per-iteration  : {result.per_iter_time:10.4f} s")
    print(f"  %comm (steady) : {result.comm_percent:10.1f} %")
    return 0


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    """Shared harness flags (supervision + cell store) for sweep commands."""
    parser.add_argument(
        "--supervise", action="store_true",
        help="run sweep cells under the supervised harness: watchdog "
             "timeouts, bounded retries, and degradation of broken-pool "
             "cells to inline execution (also via REPRO_SUPERVISE=1); "
             "cells that still fail render as FAILED(<cause>) entries "
             "and the command exits 3",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-sweep watchdog window in seconds: if no cell completes "
             "for S seconds the hung workers are killed and their cells "
             "retried (needs --jobs >= 2; implies --supervise)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="additional attempts per failing/hung cell (default 1; "
             "implies --supervise)",
    )
    parser.add_argument(
        "--journal", dest="journal_path", default=None, metavar="PATH",
        help="append each completed cell to a crash-safe JSONL run "
             "journal at PATH (implies --supervise)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="skip cells already completed in PATH's journal and merge "
             "their results by key — the report is byte-identical to an "
             "uninterrupted run; keeps journaling into PATH (implies "
             "--supervise)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH|tcp://HOST:PORT",
        help="serve sweep cells from (and publish fresh results to) the "
             "content-addressed cell store — a directory rooted at PATH "
             "or a `repro store serve` server at tcp://HOST:PORT; "
             "entries are keyed by worker + args + code fingerprint so "
             "they can never go stale; a networked store that goes down "
             "degrades gracefully (results spool locally and drain on "
             "reconnect) (also via REPRO_STORE; see docs/caching.md and "
             "docs/resilience.md)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="SPEC",
        help="execution backend for sweep cells: 'serial', "
             "'pool[:chunk=K|auto]', 'chunked', "
             "'tcp:HOST:PORT[,spawn=N][,lease=S]' (a multi-host TCP "
             "work queue; spawn=N launches N local workers, others join "
             "with `repro worker --connect`), or 'transient:<spec>' to "
             "absorb worker loss by resubmitting; output is "
             "byte-identical on every backend (see docs/distributed.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPC/private/public-cloud performance study framework",
        epilog="exit codes: 0 success (all cells ok); 3 partial — some "
               "sweep cells failed but the report rendered with "
               "FAILED(<cause>) entries; 1 fatal error (bad "
               "configuration or unhandled failure). `repro verify`, "
               "`repro lint` and `repro bench engine --check` keep "
               "exit 1 for their own failed-check verdicts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="print the Table-I platform inventory")
    sub.add_parser("experiments", help="list registered paper experiments")

    run = sub.add_parser("run", help="regenerate paper experiments")
    run.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    run.add_argument("--full", action="store_true", help="full sweeps (slower)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep cells (0 = all CPUs); output is "
             "identical to --jobs 1",
    )
    run.add_argument(
        "--sanitize", action="store_true",
        help="run every simulated world under the MPI sanitizer "
             "(deadlock/collective-mismatch/message-leak checks)",
    )
    run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject a fault schedule into every simulated world, e.g. "
             "'nfs:start=0,dur=30,factor=4;link:start=10,dur=5,bw=0.5' "
             "(see docs/resilience.md; also via REPRO_FAULTS)",
    )
    run.add_argument(
        "--replay", action="store_true", default=None,
        help="fast-forward provably steady iterations (never changes "
             "results; adds a [perf: ...] banner; also via REPRO_REPLAY)",
    )
    run.add_argument(
        "--no-replay", dest="replay", action="store_false",
        help="force iteration replay off, overriding REPRO_REPLAY",
    )
    run.add_argument(
        "--fastcollect", action="store_true", default=None,
        help="fast-forward whole collective phases analytically (never "
             "changes results; adds a [perf: ...] banner; also via "
             "REPRO_FASTCOLLECT)",
    )
    run.add_argument(
        "--no-fastcollect", dest="fastcollect", action="store_false",
        help="force collective fast-forward off, overriding "
             "REPRO_FASTCOLLECT",
    )
    run.add_argument(
        "--sim-iters", type=int, default=None, metavar="N",
        help="override the NPB steady-loop iteration count (N >= 1)",
    )
    _add_supervision_args(run)
    run.add_argument("--json", help="export comparisons as JSON")
    run.add_argument("--csv", help="export comparisons as CSV")
    run.add_argument("--out", help="write the text report to a file")

    faults = sub.add_parser(
        "faults", help="fault-injection and resilience tooling"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    sweep = faults_sub.add_parser(
        "sweep", help="sweep failure rate x checkpoint interval"
    )
    sweep.add_argument(
        "--rates", type=float, nargs="+", required=True,
        help="failure rates (per simulated second)",
    )
    sweep.add_argument(
        "--intervals", type=float, nargs="+", required=True,
        help="checkpoint intervals (seconds of useful work)",
    )
    sweep.add_argument(
        "--work", type=float, default=3600.0,
        help="total useful work per run (seconds, default 3600)",
    )
    sweep.add_argument(
        "--checkpoint-cost", type=float, default=30.0,
        help="seconds per checkpoint write (default 30)",
    )
    sweep.add_argument(
        "--restart-cost", type=float, default=60.0,
        help="seconds to relaunch after a failure (default 60)",
    )
    sweep.add_argument(
        "--trials", type=int, default=32,
        help="seeded trials averaged per cell (default 32)",
    )
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep cells (0 = all CPUs); output is "
             "identical to --jobs 1",
    )
    _add_supervision_args(sweep)
    sweep.add_argument("--json", action="store_true", help="JSON output")

    lint = sub.add_parser(
        "lint", help="static determinism linter (DET001-DET012)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src benchmarks)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="JSON findings (same as --format json)",
    )
    lint.add_argument(
        "--deep", action="store_true",
        help="whole-program analysis: resolve every registered cell "
             "worker's call-graph closure, enable the interprocedural "
             "rules (DET007-DET011) over it, and print per-worker code "
             "fingerprints",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="output format (default text)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppress findings whose (path, rule) pair appears in this "
             "committed baseline JSON; exit 1 only on new findings",
    )

    fingerprint = sub.add_parser(
        "fingerprint",
        help="semantic code fingerprints of registered cell workers",
    )
    fingerprint.add_argument(
        "workers", nargs="*",
        help="worker names (default: all statically registered workers)",
    )
    fingerprint.add_argument(
        "--all", action="store_true",
        help="fingerprint every statically registered worker",
    )
    fingerprint.add_argument(
        "--check", action="store_true",
        help="recompute each fingerprint from a fresh module index and "
             "exit 1 on any instability",
    )
    fingerprint.add_argument(
        "--json", action="store_true", help="JSON output"
    )

    store = sub.add_parser(
        "store",
        help="content-addressed global cell result store maintenance",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    st_stats = store_sub.add_parser(
        "stats", help="record/shard/worker tallies for a store"
    )
    st_stats.add_argument("path", help="store root directory")
    st_stats.add_argument("--json", action="store_true", help="JSON output")
    st_verify = store_sub.add_parser(
        "verify",
        help="re-derive every record's key and payload hash; exit 1 on "
             "integrity problems (torn lines are tolerated and reported)",
    )
    st_verify.add_argument("path", help="store root directory")
    st_gc = store_sub.add_parser(
        "gc",
        help="compact the store: drop stale (code-fingerprint-mismatched), "
             "duplicate, malformed and torn records",
    )
    st_gc.add_argument("path", help="store root directory")
    st_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be dropped without rewriting shards",
    )
    st_gc.add_argument(
        "--drop-unknown", action="store_true",
        help="also drop records for workers this host cannot fingerprint "
             "(default: keep them — they may still serve another host)",
    )
    st_export = store_sub.add_parser(
        "export",
        help="dump all records as one deterministic JSONL stream for "
             "cross-host sharing",
    )
    st_export.add_argument("path", help="store root directory")
    st_export.add_argument(
        "--out", default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )
    st_import = store_sub.add_parser(
        "import",
        help="merge an exported JSONL file into a store (each record is "
             "re-validated; existing keys are kept)",
    )
    st_import.add_argument("path", help="store root directory")
    st_import.add_argument("file", help="exported JSONL file to merge")
    st_serve = store_sub.add_parser(
        "serve",
        help="serve a store root over TCP so fleets share results "
             "without a shared filesystem (clients use "
             "--store tcp://HOST:PORT)",
    )
    st_serve.add_argument("path", help="store root directory to serve")
    st_serve.add_argument(
        "bind", metavar="HOST:PORT",
        help="address to listen on (PORT 0 binds an ephemeral port)",
    )
    st_serve.add_argument(
        "--lease-ttl", type=float, default=None, metavar="S",
        help="seconds before an unrefreshed lease is presumed orphaned "
             "(default: REPRO_STORE_LEASE_TTL or 600)",
    )
    st_serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="exit after handling N frames — a deterministic mid-sweep "
             "crash for chaos testing (clients degrade to their spool)",
    )
    st_ping = store_sub.add_parser(
        "ping",
        help="round-trip a tcp:// store server (readiness probe; the "
             "attempt is retried under the default backoff policy)",
    )
    st_ping.add_argument("path", metavar="tcp://HOST:PORT",
                         help="store server endpoint")

    bench = sub.add_parser("bench", help="performance microbenchmarks")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    engine = bench_sub.add_parser(
        "engine", help="engine dispatch-throughput workloads"
    )
    engine.add_argument(
        "--out", default="BENCH_engine.json", metavar="PATH",
        help="write rows as JSON (default BENCH_engine.json; '' to skip)",
    )
    engine.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare events/sec against a baseline JSON; exit 1 on regression",
    )
    engine.add_argument(
        "--reps", type=int, default=1,
        help="repetitions per workload, keeping the fastest (default 1)",
    )
    engine.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional events/sec drop for --check (default 0.30)",
    )
    engine.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="run only these workloads (default: all registered)",
    )
    engine.add_argument(
        "--append-history", nargs="?", const="BENCH_history.jsonl",
        default=None, metavar="PATH",
        help="append one {commit, workload, events_per_sec} JSONL row per "
             "workload to PATH (default BENCH_history.jsonl)",
    )

    harness_bench = bench_sub.add_parser(
        "harness",
        help="executor dispatch-overhead workloads (cells/sec per backend)",
    )
    harness_bench.add_argument(
        "--cells", type=int, default=600,
        help="synthetic bench_cell cells per mode (default 600)",
    )
    harness_bench.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the pool/chunked/tcp modes (default 2)",
    )
    harness_bench.add_argument(
        "--reps", type=int, default=1,
        help="repetitions per mode, keeping the fastest (default 1)",
    )
    harness_bench.add_argument(
        "--modes", nargs="+", default=None, metavar="MODE",
        help="run only these modes (default: serial pool chunked tcp)",
    )
    harness_bench.add_argument(
        "--out", default="BENCH_harness.json", metavar="PATH",
        help="write rows as JSON (default BENCH_harness.json; '' to skip)",
    )
    harness_bench.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare cells/sec against a baseline JSON and enforce the "
             "chunked-dispatch speedup floor; exit 1 on regression",
    )
    harness_bench.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional cells/sec drop for --check (default 0.30)",
    )
    harness_bench.add_argument(
        "--append-history", nargs="?", const="BENCH_history.jsonl",
        default=None, metavar="PATH",
        help="append one {commit, workload, events_per_sec} JSONL row per "
             "mode to PATH (default BENCH_history.jsonl)",
    )

    worker = sub.add_parser(
        "worker",
        help="join a distributed sweep as a TCP cell worker",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address of a --backend tcp:... run",
    )
    worker.add_argument(
        "--heartbeat", type=float, default=2.0, metavar="S",
        help="liveness heartbeat interval in seconds (default 2)",
    )
    worker.add_argument(
        "--connect-retries", type=int, default=5, metavar="N",
        help="initial-connection retries with bounded backoff, absorbing "
             "the coordinator/worker startup race (default 5; 0 = fail "
             "immediately on connection-refused)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="network chaos tools for exercising the resilience layer",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    ch_proxy = chaos_sub.add_parser(
        "proxy",
        help="forward LISTEN to UPSTREAM, mangling traffic on a seeded "
             "schedule (drop/delay/truncate/sever per chunk)",
    )
    ch_proxy.add_argument("listen", metavar="HOST:PORT",
                          help="address to listen on (PORT 0 = ephemeral)")
    ch_proxy.add_argument("upstream", metavar="HOST:PORT",
                          help="address to forward to")
    ch_proxy.add_argument(
        "--spec", default="", metavar="RULES",
        help="chaos rules, e.g. 'drop:p=0.05;delay:p=0.2,ms=50;"
             "truncate:p=0.02;sever:p=0.01' (default: pass everything)",
    )
    ch_proxy.add_argument(
        "--seed", type=int, default=0,
        help="seed for the per-connection mangling schedule (default 0)",
    )

    osu = sub.add_parser("osu", help="run OSU latency/bandwidth on a platform")
    osu.add_argument("platform", choices=["vayu", "dcc", "ec2"])
    osu.add_argument("--seed", type=int, default=1)

    verify = sub.add_parser(
        "verify", help="run all numeric-kernel verifications"
    )
    verify.add_argument("--full", action="store_true", help="larger problems")

    npb = sub.add_parser("npb", help="run one NPB benchmark point")
    npb.add_argument("bench")
    npb.add_argument("platform", choices=["vayu", "dcc", "ec2"])
    npb.add_argument("nprocs", type=int)
    npb.add_argument("--class", dest="klass", default="B")
    npb.add_argument("--seed", type=int, default=1)

    return parser


_COMMANDS: dict[str, _t.Callable[[argparse.Namespace], int]] = {
    "platforms": _cmd_platforms,
    "experiments": _cmd_experiments,
    "run": _cmd_run,
    "osu": _cmd_osu,
    "npb": _cmd_npb,
    "verify": _cmd_verify,
    "lint": _cmd_lint,
    "fingerprint": _cmd_fingerprint,
    "faults": _cmd_faults,
    "bench": _cmd_bench,
    "store": _cmd_store,
    "worker": _cmd_worker,
    "chaos": _cmd_chaos,
}


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, ValueError) as exc:
        # Fatal: bad configuration or an unhandled failure (exit 1);
        # partial supervised sweeps return 3 from the command itself.
        # ValueError covers argument-validation errors raised below
        # argparse, e.g. a negative --jobs.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. piping into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
