"""Deterministic parallel execution of independent simulation cells.

A *cell* is one independent unit of a sweep — one ``(experiment,
config-point, seed)`` simulation such as "CG class B on Vayu at 16
processes with seed 1".  Every simulation builds its own engine from an
explicit seed and touches no shared state, so cells can run in any
process in any order; determinism then only requires that results are
**merged by cell key, never by completion order**, which
:func:`run_cells` guarantees.  ``jobs=1`` executes the very same worker
functions inline, so serial and parallel sweeps render byte-identical
reports.

Workers are plain module-level functions (registered with
:func:`cell_worker`) taking only picklable primitives and returning
plain dicts/floats — the contract that keeps cells cheap to ship to a
``ProcessPoolExecutor`` and trivially deterministic to merge.

Supervision (watchdog timeouts, bounded retries, degradation to inline
execution, journal/resume) layers on top of this module without
changing it from the caller's point of view: when a
:func:`repro.harness.supervisor.supervision_scope` is active — or
``REPRO_SUPERVISE=1`` is set — :func:`run_cells` routes through the
supervisor and still returns the same ``{key: result}`` mapping.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import typing as _t
from concurrent.futures import as_completed

from repro.errors import CellExecutionError, ConfigError


@dataclasses.dataclass(frozen=True, slots=True)
class Cell:
    """One independent simulation unit of a sweep.

    ``key`` is the stable merge identity (a tuple of primitives, unique
    within one :func:`run_cells` call); ``worker`` names a registered
    worker function; ``args`` are its positional arguments.
    """

    key: tuple
    worker: str
    args: tuple = ()


#: Registered worker functions, by name.
_WORKERS: dict[str, _t.Callable[..., _t.Any]] = {}


def cell_worker(name: str) -> _t.Callable[[_t.Callable], _t.Callable]:
    """Register a module-level function as a named cell worker.

    Registration is picklable-by-construction: lambdas and nested
    functions are rejected here (their qualified names cannot be
    resolved by a pool worker's unpickler), so a sweep cannot discover
    the problem only once ``--jobs`` fans it out to a process pool.
    """

    def deco(fn: _t.Callable) -> _t.Callable:
        if name in _WORKERS:
            raise ConfigError(f"cell worker {name!r} already registered")
        qualname = getattr(fn, "__qualname__", "")
        if fn.__name__ == "<lambda>" or "<locals>" in qualname:
            raise ConfigError(
                f"cell worker {name!r} ({qualname or fn!r}) is not a "
                "module-level function; pool workers cannot unpickle "
                "lambdas or nested functions"
            )
        _WORKERS[name] = fn  # lint-ok: DET007 import-time worker registration, not run-time state
        return fn

    return deco


#: True only in a process-pool worker (set by :func:`_pool_worker_init`).
_IS_POOL_WORKER = False


def _pool_worker_init() -> None:
    """Pool-worker initializer: mark this process as a pool worker."""
    global _IS_POOL_WORKER
    _IS_POOL_WORKER = True


def _maybe_chaos_kill() -> None:
    """Test/CI chaos hook: kill one pool worker once per marker file.

    When ``REPRO_CHAOS_KILL`` is set, the first pool worker to claim the
    marker file (the variable's value, or a tempdir default for ``1``)
    exits abruptly mid-cell — simulating a real worker death so the
    chaos CI job can assert the supervisor retries/degrades the affected
    cells and the sweep still completes.  Never fires in the supervising
    process itself, and is a no-op when the variable is unset.
    """
    spec = os.environ.get("REPRO_CHAOS_KILL")
    if not spec or not _IS_POOL_WORKER:
        return
    marker = spec
    if spec in ("1", "true"):
        marker = os.path.join(
            tempfile.gettempdir(), f"repro-chaos-kill-{os.getppid()}"
        )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(17)


def _execute(cell: Cell) -> _t.Any:
    """Run one cell (in this process or a pool worker)."""
    _maybe_chaos_kill()
    try:
        fn = _WORKERS[cell.worker]
    except KeyError:
        raise ConfigError(
            f"unknown cell worker {cell.worker!r}; available: {sorted(_WORKERS)}"
        ) from None
    return fn(*cell.args)


def check_unique_keys(cells: _t.Sequence[Cell]) -> None:
    """Reject duplicate cell keys up front.

    A duplicate key would silently overwrite the earlier cell's result
    during the key-ordered merge, so it is a configuration error in
    every execution mode (serial, pooled, supervised, resumed).
    """
    keys = [c.key for c in cells]
    if len(set(keys)) != len(keys):
        seen: set[tuple] = set()
        dupes: list[tuple] = []
        for k in keys:
            if k in seen and k not in dupes:
                dupes.append(k)
            seen.add(k)
        # Name the offenders (sorted for a stable message, capped so a
        # million-cell sweep with a systematic collision stays readable).
        dupes.sort(key=repr)
        shown = ", ".join(repr(k) for k in dupes[:10])
        more = f", ... ({len(dupes) - 10} more)" if len(dupes) > 10 else ""
        raise ConfigError(
            f"duplicate cell keys ({len(dupes)} distinct): {shown}{more}"
        )


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value (``None``/``0`` → all CPUs).

    Only ``None`` and ``0`` mean "all CPUs"; a negative value is a typo
    (``--jobs -2``) that used to be silently promoted to all-CPUs and
    now raises a clear :class:`ValueError` instead.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 or omitted = all CPUs), got {jobs}"
        )
    return jobs


def _collect(
    executor: _t.Any, cells: _t.Sequence[Cell], store: _t.Any
) -> dict[tuple, _t.Any]:
    """Drive ``cells`` through a :class:`~repro.harness.executor.CellExecutor`.

    Fresh results publish to ``store`` as they complete; errors are
    collected per cell and the first one *in cell order* (never
    completion order, which would be scheduling-dependent) re-raises
    after the sweep drains.  A ``BaseException`` — a ``KeyboardInterrupt``
    above all — cancels every outstanding future before propagating, so
    the caller can tear the backend down without dangling work.
    """
    from repro.harness.executor import WORKER_LOSS_ERRORS

    futures = executor.submit_many(cells)
    index = {id(f): i for i, f in enumerate(futures)}
    fresh: dict[tuple, _t.Any] = {}
    errors: dict[int, BaseException] = {}
    try:
        for f in as_completed(futures):
            i = index[id(f)]
            c = cells[i]
            try:
                value = f.result()
            except Exception as exc:
                errors[i] = exc
            else:
                fresh[c.key] = value
                if store is not None:
                    store.publish(c.worker, c.args, value)
    except BaseException:
        for f in futures:
            f.cancel()
        raise
    if errors:
        i = min(errors)
        exc = errors[i]
        if isinstance(exc, WORKER_LOSS_ERRORS):
            c = cells[i]
            raise CellExecutionError(
                key=c.key,
                worker=c.worker,
                attempts=1,
                cause="worker-death",
                detail=(
                    f"{exc} (a worker process died; run under "
                    "supervision — --supervise / REPRO_SUPERVISE=1 — "
                    "to retry or degrade instead of aborting)"
                ),
            ) from exc
        raise exc
    return fresh


def run_cells(
    cells: _t.Sequence[Cell], jobs: int = 1, executor: _t.Any = None
) -> dict[tuple, _t.Any]:
    """Execute ``cells`` and return ``{cell.key: result}`` in cell order.

    Cells are scheduled through a transport-agnostic
    :class:`~repro.harness.executor.CellExecutor`: pass one explicitly,
    install one for a whole batch with
    :func:`~repro.harness.executor.executor_scope` (what ``--backend``
    does), or rely on the default — inline for ``jobs <= 1``, a local
    process pool otherwise.  The result mapping is always assembled in
    the order the cells were given, so downstream rendering is
    independent of the backend and of scheduling: serial, pooled,
    chunked and multi-host TCP execution render byte-identical reports.
    A failing cell re-raises its exception here, whichever process (or
    host) it ran in; a dying *worker* surfaces as a structured
    :class:`~repro.errors.CellExecutionError` naming the offending cell
    instead of an opaque transport traceback.  A ``KeyboardInterrupt``
    cancels outstanding cells and tears the backend down before
    re-raising — nothing is left dangling.

    Under an active supervision scope (or ``REPRO_SUPERVISE=1``) the
    cells run through :mod:`repro.harness.supervisor` instead — same
    mapping, same values, plus watchdog/retry/degrade/journal handling
    — on the same executor.

    Under an active cell store (:func:`repro.harness.cellstore.store_scope`
    or ``REPRO_STORE``) the sweep is *store-aware scheduled*: the plan
    partitions cells into store hits (served), cells leased to this
    executor (run and published), and cells another executor sharing the
    store is computing right now (awaited from the peer instead of
    computed twice).  Served, awaited and fresh results merge by key in
    cell order, so a store-backed sweep renders byte-identically.
    """
    from repro.harness import cellstore as _cellstore
    from repro.harness import executor as _executor
    from repro.harness import supervisor as _supervisor

    supervised = _supervisor.supervised_results(cells, jobs, executor)
    if supervised is not None:
        return supervised
    cells = list(cells)
    check_unique_keys(cells)
    jobs = resolve_jobs(jobs)

    store = _cellstore.active_store()
    backend = executor if executor is not None else _executor.active_executor()

    served: dict[tuple, _t.Any] = {}
    pending: _t.Sequence[Cell] = cells
    deferred: list[Cell] = []
    if store is not None:
        plan = store.plan_cells(cells)
        served, pending, deferred = plan.served, plan.to_run, plan.deferred

    fresh: dict[tuple, _t.Any] = {}
    try:
        if backend is None and (jobs <= 1 or len(pending) <= 1):
            for c in pending:
                fresh[c.key] = _execute(c)
                if store is not None:
                    store.publish(c.worker, c.args, fresh[c.key])
        elif pending:
            owned = backend is None
            exec_ = (
                backend
                if backend is not None
                else _executor.LocalPoolExecutor(min(jobs, len(pending)))
            )
            try:
                fresh.update(_collect(exec_, pending, store))
            except BaseException:
                if owned:
                    # Satellite fix: shut the pool down hard (cancelled
                    # futures, terminated workers) before re-raising, so
                    # a KeyboardInterrupt never leaves it dangling.
                    exec_.shutdown(kill=True)
                raise
            else:
                if owned:
                    exec_.shutdown()
        for c in deferred:
            value = store.await_peer(c.worker, c.args)
            if value is _cellstore.MISS:
                value = _execute(c)
                store.publish(c.worker, c.args, value)
            served[c.key] = value
    except BaseException:
        if store is not None:
            store.release_leases()
        raise
    return {
        c.key: served[c.key] if c.key in served else fresh[c.key] for c in cells
    }


# ---------------------------------------------------------------------------
# Workers for the registered experiments' sweeps
# ---------------------------------------------------------------------------
# Each returns only the scalars the experiment renders, keeping the
# pickled payload small (an IpmMonitor for a 64-rank run is far heavier
# than the three numbers a speedup curve needs).


@cell_worker("npb_point")
def npb_point(
    bench: str,
    platform: str,
    nprocs: int,
    seed: int,
    klass: str = "B",
    sim_iters: int | None = None,
) -> dict[str, float]:
    """One NPB benchmark point: projected time and steady %comm."""
    from repro.npb import get_benchmark
    from repro.platforms import get_platform

    r = get_benchmark(bench, klass=klass, sim_iters=sim_iters).run(
        get_platform(platform), nprocs, seed=seed
    )
    return {
        "projected_time": r.projected_time,
        "per_iter_time": r.per_iter_time,
        "comm_percent": r.comm_percent,
    }


@cell_worker("osu_curve")
def osu_curve(
    kind: str, platform: str, sizes: tuple, iterations: int, warmup: int, seed: int
) -> dict[int, float]:
    """One OSU sweep (``kind``: latency|bandwidth) on one platform."""
    from repro.osu import osu_bandwidth, osu_latency
    from repro.platforms import get_platform

    fns = {"latency": osu_latency, "bandwidth": osu_bandwidth}
    try:
        fn = fns[kind]
    except KeyError:
        raise ConfigError(f"unknown OSU kind {kind!r}; expected {sorted(fns)}") from None
    return fn(
        get_platform(platform), list(sizes), iterations=iterations, warmup=warmup,
        seed=seed,
    )


@cell_worker("chaste_point")
def chaste_point(
    platform: str, nprocs: int, seed: int, sim_steps: int
) -> dict[str, float]:
    """One Chaste run: total and KSp-section times."""
    from repro.apps.chaste import ChasteBenchmark
    from repro.platforms import get_platform

    r = ChasteBenchmark(sim_steps=sim_steps).run(
        get_platform(platform), nprocs, seed=seed
    )
    return {"total_time": r.total_time, "ksp_time": r.ksp_time}


@cell_worker("metum_point")
def metum_point(
    platform: str, nprocs: int, num_nodes: int | None, seed: int, sim_steps: int
) -> dict[str, float]:
    """One UM run: the 'warmed' (I/O-free steady) time."""
    from repro.apps.metum import MetumBenchmark
    from repro.platforms import get_platform

    r = MetumBenchmark(sim_steps=sim_steps).run(
        get_platform(platform), nprocs, num_nodes=num_nodes, seed=seed
    )
    return {"warmed_time": r.warmed_time, "total_time": r.total_time}


@cell_worker("metum_stats")
def metum_stats(
    platform: str, nprocs: int, num_nodes: int | None, seed: int, sim_steps: int
) -> dict[str, float]:
    """One UM run reduced to the Table-III section statistics."""
    from repro.apps.metum import MetumBenchmark
    from repro.platforms import get_platform

    r = MetumBenchmark(sim_steps=sim_steps).run(
        get_platform(platform), nprocs, num_nodes=num_nodes, seed=seed
    )
    return {
        "time": r.total_time,
        "comp": r.compute_time(),
        "comm": r.comm_time(),
        "comm_percent": r.comm_percent(),
        "imbalance_percent": r.imbalance_percent(),
        "io": r.io_time,
    }


@cell_worker("arrivef_point")
def arrivef_point(seed: int) -> dict[str, float]:
    """One ARRIVE-F workload comparison at one seed."""
    from repro.arrivef.framework import throughput_experiment

    return throughput_experiment(seed=seed)


@cell_worker("bench_cell")
def bench_cell(idx: int, spin: int = 64) -> dict[str, float]:
    """One near-zero-cost synthetic cell for the dispatch microbenchmark.

    ``repro bench harness`` sweeps hundreds of these to measure pure
    harness overhead (pickling, IPC, scheduling) per backend; the tiny
    deterministic spin keeps the payload from optimising away while the
    cell stays far cheaper than any real simulation.
    """
    acc = 0
    for i in range(spin):
        acc = (acc * 31 + idx + i) % 1000003
    return {"value": float(acc)}


@cell_worker("faults_point")
def faults_point(
    rate: float,
    interval: float,
    work: float,
    checkpoint_cost: float,
    restart_cost: float,
    trials: int,
    seed: int,
) -> dict[str, float]:
    """One (failure rate x checkpoint interval) resilience-sweep cell.

    The cell's random stream is derived from its own parameters, not
    from execution order, so a sweep renders byte-identically whichever
    process (or order) the cell runs in.
    """
    from repro.faults.checkpoint import CheckpointPolicy, simulate_completion
    from repro.sim.rng import RandomStreams

    policy = CheckpointPolicy(interval, checkpoint_cost, restart_cost)
    stream = RandomStreams(seed).child("faults-sweep").stream(
        f"rate={rate!r}:interval={interval!r}"
    )
    completion = restarts = wasted = 0.0
    for _ in range(trials):
        stats = simulate_completion(work, policy, rate, stream)
        completion += stats.completion_time
        restarts += stats.restarts
        wasted += stats.wasted_work
    return {
        "completion_time": completion / trials,
        "restarts": restarts / trials,
        "wasted_work": wasted / trials,
    }
