"""Deterministic parallel execution of independent simulation cells.

A *cell* is one independent unit of a sweep — one ``(experiment,
config-point, seed)`` simulation such as "CG class B on Vayu at 16
processes with seed 1".  Every simulation builds its own engine from an
explicit seed and touches no shared state, so cells can run in any
process in any order; determinism then only requires that results are
**merged by cell key, never by completion order**, which
:func:`run_cells` guarantees.  ``jobs=1`` executes the very same worker
functions inline, so serial and parallel sweeps render byte-identical
reports.

Workers are plain module-level functions (registered with
:func:`cell_worker`) taking only picklable primitives and returning
plain dicts/floats — the contract that keeps cells cheap to ship to a
``ProcessPoolExecutor`` and trivially deterministic to merge.

Supervision (watchdog timeouts, bounded retries, degradation to inline
execution, journal/resume) layers on top of this module without
changing it from the caller's point of view: when a
:func:`repro.harness.supervisor.supervision_scope` is active — or
``REPRO_SUPERVISE=1`` is set — :func:`run_cells` routes through the
supervisor and still returns the same ``{key: result}`` mapping.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import typing as _t
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import CellExecutionError, ConfigError


@dataclasses.dataclass(frozen=True, slots=True)
class Cell:
    """One independent simulation unit of a sweep.

    ``key`` is the stable merge identity (a tuple of primitives, unique
    within one :func:`run_cells` call); ``worker`` names a registered
    worker function; ``args`` are its positional arguments.
    """

    key: tuple
    worker: str
    args: tuple = ()


#: Registered worker functions, by name.
_WORKERS: dict[str, _t.Callable[..., _t.Any]] = {}


def cell_worker(name: str) -> _t.Callable[[_t.Callable], _t.Callable]:
    """Register a module-level function as a named cell worker.

    Registration is picklable-by-construction: lambdas and nested
    functions are rejected here (their qualified names cannot be
    resolved by a pool worker's unpickler), so a sweep cannot discover
    the problem only once ``--jobs`` fans it out to a process pool.
    """

    def deco(fn: _t.Callable) -> _t.Callable:
        if name in _WORKERS:
            raise ConfigError(f"cell worker {name!r} already registered")
        qualname = getattr(fn, "__qualname__", "")
        if fn.__name__ == "<lambda>" or "<locals>" in qualname:
            raise ConfigError(
                f"cell worker {name!r} ({qualname or fn!r}) is not a "
                "module-level function; pool workers cannot unpickle "
                "lambdas or nested functions"
            )
        _WORKERS[name] = fn  # lint-ok: DET007 import-time worker registration, not run-time state
        return fn

    return deco


#: True only in a process-pool worker (set by :func:`_pool_worker_init`).
_IS_POOL_WORKER = False


def _pool_worker_init() -> None:
    """Pool-worker initializer: mark this process as a pool worker."""
    global _IS_POOL_WORKER
    _IS_POOL_WORKER = True


def _maybe_chaos_kill() -> None:
    """Test/CI chaos hook: kill one pool worker once per marker file.

    When ``REPRO_CHAOS_KILL`` is set, the first pool worker to claim the
    marker file (the variable's value, or a tempdir default for ``1``)
    exits abruptly mid-cell — simulating a real worker death so the
    chaos CI job can assert the supervisor retries/degrades the affected
    cells and the sweep still completes.  Never fires in the supervising
    process itself, and is a no-op when the variable is unset.
    """
    spec = os.environ.get("REPRO_CHAOS_KILL")
    if not spec or not _IS_POOL_WORKER:
        return
    marker = spec
    if spec in ("1", "true"):
        marker = os.path.join(
            tempfile.gettempdir(), f"repro-chaos-kill-{os.getppid()}"
        )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(17)


def _execute(cell: Cell) -> _t.Any:
    """Run one cell (in this process or a pool worker)."""
    _maybe_chaos_kill()
    try:
        fn = _WORKERS[cell.worker]
    except KeyError:
        raise ConfigError(
            f"unknown cell worker {cell.worker!r}; available: {sorted(_WORKERS)}"
        ) from None
    return fn(*cell.args)


def check_unique_keys(cells: _t.Sequence[Cell]) -> None:
    """Reject duplicate cell keys up front.

    A duplicate key would silently overwrite the earlier cell's result
    during the key-ordered merge, so it is a configuration error in
    every execution mode (serial, pooled, supervised, resumed).
    """
    keys = [c.key for c in cells]
    if len(set(keys)) != len(keys):
        seen: set[tuple] = set()
        dupes: list[tuple] = []
        for k in keys:
            if k in seen and k not in dupes:
                dupes.append(k)
            seen.add(k)
        raise ConfigError(f"duplicate cell keys: {dupes}")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value (``None``/``0`` → all CPUs).

    Only ``None`` and ``0`` mean "all CPUs"; a negative value is a typo
    (``--jobs -2``) that used to be silently promoted to all-CPUs and
    now raises a clear :class:`ValueError` instead.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 or omitted = all CPUs), got {jobs}"
        )
    return jobs


def run_cells(cells: _t.Sequence[Cell], jobs: int = 1) -> dict[tuple, _t.Any]:
    """Execute ``cells`` and return ``{cell.key: result}`` in cell order.

    With ``jobs > 1`` the cells fan out over a process pool; the result
    mapping is always assembled in the order the cells were given, so
    downstream rendering is independent of scheduling.  A failing cell
    re-raises its exception here, whichever process it ran in; a dying
    *worker process* surfaces as a structured
    :class:`~repro.errors.CellExecutionError` naming the offending cell
    instead of an opaque ``BrokenProcessPool`` traceback.

    Under an active supervision scope (or ``REPRO_SUPERVISE=1``) the
    cells run through :mod:`repro.harness.supervisor` instead — same
    mapping, same values, plus watchdog/retry/degrade/journal handling.

    Under an active cell store (:func:`repro.harness.cellstore.store_scope`
    or ``REPRO_STORE``) each cell is first looked up by its content
    address — worker, encoded args, code fingerprint — and served from
    the store when present; only the misses execute, and their fresh
    results are published back.  Served and fresh results merge by key
    in cell order, so a store-backed sweep renders byte-identically.
    """
    from repro.harness import cellstore as _cellstore
    from repro.harness import supervisor as _supervisor

    supervised = _supervisor.supervised_results(cells, jobs)
    if supervised is not None:
        return supervised
    cells = list(cells)
    check_unique_keys(cells)
    jobs = resolve_jobs(jobs)

    store = _cellstore.active_store()
    served: dict[tuple, _t.Any] = {}
    pending = cells
    if store is not None:
        pending = []
        for c in cells:
            value = store.lookup(c.worker, c.args)
            if value is _cellstore.MISS:
                pending.append(c)
            else:
                served[c.key] = value

    fresh: dict[tuple, _t.Any] = {}
    if jobs <= 1 or len(pending) <= 1:
        for c in pending:
            fresh[c.key] = _execute(c)
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), initializer=_pool_worker_init
        ) as pool:
            futures = [pool.submit(_execute, c) for c in pending]
            for c, f in zip(pending, futures):
                try:
                    fresh[c.key] = f.result()
                except BrokenProcessPool as exc:
                    raise CellExecutionError(
                        key=c.key,
                        worker=c.worker,
                        attempts=1,
                        cause="worker-death",
                        detail=(
                            f"{exc} (a pool worker process died; run under "
                            "supervision — --supervise / REPRO_SUPERVISE=1 — "
                            "to retry or degrade instead of aborting)"
                        ),
                    ) from exc
    if store is not None:
        for c in pending:
            store.publish(c.worker, c.args, fresh[c.key])
    return {
        c.key: served[c.key] if c.key in served else fresh[c.key] for c in cells
    }


# ---------------------------------------------------------------------------
# Workers for the registered experiments' sweeps
# ---------------------------------------------------------------------------
# Each returns only the scalars the experiment renders, keeping the
# pickled payload small (an IpmMonitor for a 64-rank run is far heavier
# than the three numbers a speedup curve needs).


@cell_worker("npb_point")
def npb_point(
    bench: str,
    platform: str,
    nprocs: int,
    seed: int,
    klass: str = "B",
    sim_iters: int | None = None,
) -> dict[str, float]:
    """One NPB benchmark point: projected time and steady %comm."""
    from repro.npb import get_benchmark
    from repro.platforms import get_platform

    r = get_benchmark(bench, klass=klass, sim_iters=sim_iters).run(
        get_platform(platform), nprocs, seed=seed
    )
    return {
        "projected_time": r.projected_time,
        "per_iter_time": r.per_iter_time,
        "comm_percent": r.comm_percent,
    }


@cell_worker("osu_curve")
def osu_curve(
    kind: str, platform: str, sizes: tuple, iterations: int, warmup: int, seed: int
) -> dict[int, float]:
    """One OSU sweep (``kind``: latency|bandwidth) on one platform."""
    from repro.osu import osu_bandwidth, osu_latency
    from repro.platforms import get_platform

    fns = {"latency": osu_latency, "bandwidth": osu_bandwidth}
    try:
        fn = fns[kind]
    except KeyError:
        raise ConfigError(f"unknown OSU kind {kind!r}; expected {sorted(fns)}") from None
    return fn(
        get_platform(platform), list(sizes), iterations=iterations, warmup=warmup,
        seed=seed,
    )


@cell_worker("chaste_point")
def chaste_point(
    platform: str, nprocs: int, seed: int, sim_steps: int
) -> dict[str, float]:
    """One Chaste run: total and KSp-section times."""
    from repro.apps.chaste import ChasteBenchmark
    from repro.platforms import get_platform

    r = ChasteBenchmark(sim_steps=sim_steps).run(
        get_platform(platform), nprocs, seed=seed
    )
    return {"total_time": r.total_time, "ksp_time": r.ksp_time}


@cell_worker("metum_point")
def metum_point(
    platform: str, nprocs: int, num_nodes: int | None, seed: int, sim_steps: int
) -> dict[str, float]:
    """One UM run: the 'warmed' (I/O-free steady) time."""
    from repro.apps.metum import MetumBenchmark
    from repro.platforms import get_platform

    r = MetumBenchmark(sim_steps=sim_steps).run(
        get_platform(platform), nprocs, num_nodes=num_nodes, seed=seed
    )
    return {"warmed_time": r.warmed_time, "total_time": r.total_time}


@cell_worker("metum_stats")
def metum_stats(
    platform: str, nprocs: int, num_nodes: int | None, seed: int, sim_steps: int
) -> dict[str, float]:
    """One UM run reduced to the Table-III section statistics."""
    from repro.apps.metum import MetumBenchmark
    from repro.platforms import get_platform

    r = MetumBenchmark(sim_steps=sim_steps).run(
        get_platform(platform), nprocs, num_nodes=num_nodes, seed=seed
    )
    return {
        "time": r.total_time,
        "comp": r.compute_time(),
        "comm": r.comm_time(),
        "comm_percent": r.comm_percent(),
        "imbalance_percent": r.imbalance_percent(),
        "io": r.io_time,
    }


@cell_worker("arrivef_point")
def arrivef_point(seed: int) -> dict[str, float]:
    """One ARRIVE-F workload comparison at one seed."""
    from repro.arrivef.framework import throughput_experiment

    return throughput_experiment(seed=seed)


@cell_worker("faults_point")
def faults_point(
    rate: float,
    interval: float,
    work: float,
    checkpoint_cost: float,
    restart_cost: float,
    trials: int,
    seed: int,
) -> dict[str, float]:
    """One (failure rate x checkpoint interval) resilience-sweep cell.

    The cell's random stream is derived from its own parameters, not
    from execution order, so a sweep renders byte-identically whichever
    process (or order) the cell runs in.
    """
    from repro.faults.checkpoint import CheckpointPolicy, simulate_completion
    from repro.sim.rng import RandomStreams

    policy = CheckpointPolicy(interval, checkpoint_cost, restart_cost)
    stream = RandomStreams(seed).child("faults-sweep").stream(
        f"rate={rate!r}:interval={interval!r}"
    )
    completion = restarts = wasted = 0.0
    for _ in range(trials):
        stats = simulate_completion(work, policy, rate, stream)
        completion += stats.completion_time
        restarts += stats.restarts
        wasted += stats.wasted_work
    return {
        "completion_time": completion / trials,
        "restarts": restarts / trials,
        "wasted_work": wasted / trials,
    }
