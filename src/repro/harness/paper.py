"""The paper's published numbers, transcribed for comparison.

Sources: Strazdins, Cai, Atif & Antony, "Scientific Application
Performance on HPC, Private and Public Cloud Resources: A Case Study
Using Climate, Cardiac Model Codes and the NPB Benchmark Suite".
Figure-read values are approximate (the figures are log-scale plots);
table values are exact transcriptions.
"""

from __future__ import annotations

#: Fig 3 inset: absolute wall times (s) of single-process NPB class B on DCC.
FIG3_DCC_SERIAL_SECONDS: dict[str, float] = {
    "bt": 1696.9,
    "ep": 141.5,
    "cg": 244.9,
    "ft": 327.6,
    "is": 8.6,
    "lu": 1514.7,
    "mg": 72.0,
    "sp": 1936.1,
}

#: Fig 3: times normalised w.r.t. DCC — approximate bar heights.  The
#: paper's figure shows Vayu and EC2 around 0.7-0.8 for all benchmarks.
FIG3_NORMALIZED_RANGE = (0.65, 0.85)

#: Table II: IPM-reported percentage communication, np -> (DCC, EC2, Vayu).
TABLE2_COMM_PERCENT: dict[str, dict[int, tuple[float, float, float]]] = {
    "cg": {
        2: (1.5, 1.2, 0.9), 4: (5.3, 3.0, 1.9), 8: (68.3, 5.1, 3.8),
        16: (85.7, 9.4, 8.5), 32: (78.0, 38.8, 12.5), 64: (90.3, 58.0, 21.7),
    },
    "ft": {
        2: (2.5, 2.1, 1.9), 4: (3.6, 3.4, 2.9), 8: (8.3, 5.4, 4.2),
        16: (59.3, 7.2, 7.7), 32: (75.7, 38.2, 12.5), 64: (84.4, 55.3, 20.8),
    },
    "is": {
        2: (6.3, 4.6, 4.4), 4: (8.6, 7.4, 8.2), 8: (14.2, 13.5, 12.9),
        16: (82.4, 19.2, 22.1), 32: (88.3, 58.9, 44.4), 64: (98.1, 84.9, 68.2),
    },
}

#: Fig 5 legend: Chaste 8-core execution times (s).  NOTE: the legend as
#: printed pairs Vayu with the larger totals, contradicting the paper's
#: own analysis (DCC computation is 1.5x Vayu's, scaling "much poorer");
#: we transcribe the printed values and adopt the swapped assignment for
#: calibration (see EXPERIMENTS.md).
FIG5_T8_AS_PRINTED = {
    "vayu_total": 1599.0,
    "dcc_total": 1017.0,
    "vayu_ksp": 938.0,
    "dcc_ksp": 579.0,
}
FIG5_T8_ADOPTED = {
    "vayu_total": 1017.0,
    "dcc_total": 1599.0,
    "vayu_ksp": 579.0,
    "dcc_ksp": 938.0,
}

#: Chaste 32-core IPM analysis (section V-C.1).
CHASTE_32: dict[str, float] = {
    "dcc_comm_percent": 48.0,
    "vayu_comm_percent": 11.0,
    "dcc_over_vayu_compute": 1.5,
    "ksp_comm_ratio_dcc_over_vayu": 13.0,
}

#: Fig 6 legend: UM 8-core "warmed" execution times (s).
FIG6_T8 = {
    "Vayu": 963.0,
    "DCC": 1486.0,
    "EC2": 812.0,
    "EC2-4": 646.0,
}

#: Table III: UM statistics at 32 cores.
TABLE3_UM_32: dict[str, dict[str, float]] = {
    "Vayu": {"time": 303.0, "rcomp": 1.0, "rcomm": 1.0, "comm": 13.0,
             "imbal": 13.0, "io": 4.5},
    "DCC": {"time": 624.0, "rcomp": 1.37, "rcomm": 6.71, "comm": 42.0,
            "imbal": 4.0, "io": 37.8},
    "EC2": {"time": 770.0, "rcomp": 2.39, "rcomm": 3.53, "comm": 18.0,
            "imbal": 18.0, "io": 9.1},
    "EC2-4": {"time": 380.0, "rcomp": 1.17, "rcomm": 1.0, "comm": 18.0,
              "imbal": 19.0, "io": 7.6},
}

#: Fig 1: OSU bandwidth landmarks (bytes/s).
FIG1_LANDMARKS = {
    "ec2_peak_bw": 560e6,        # "peak bandwidth of ~560MB/s for 256KB"
    "dcc_peak_bw": 190e6,        # "peak bandwidth of ~190MB/s"
    "vayu_margin_over_ec2": 10.0,  # "more than one order of magnitude"
}

#: ARRIVE-F (section II): "improve the average job waiting times by up
#: to 33%".
ARRIVEF_MAX_WAIT_IMPROVEMENT_PCT = 33.0

#: Qualitative claims checked by tests/benches, with paper section refs.
QUALITATIVE_CLAIMS = (
    ("fig2", "DCC latency fluctuates between 1B and 512KB (V-A)"),
    ("fig4", "EP near-linear on Vayu and DCC; EC2 fluctuates upward (V-B)"),
    ("fig4", "DCC kernels drop when first spanning GigE nodes; recover as "
             "All-to-all messages shrink (V-B)"),
    ("fig4", "EC2 drops at 16 cores, not 32: HyperThreading (V-B)"),
    ("fig4", "CG drops at 8 on DCC: masked NUMA (V-B)"),
    ("fig4", "IS scales poorly everywhere (V-B)"),
    ("fig5", "Chaste KSp scaling determines total; DCC much poorer (V-C.1)"),
    ("fig6", "UM: EC2-4 runs always significantly faster below 64 (V-C.2)"),
    ("fig7", "DCC comm time mostly system time; more irregular imbalance "
             "(V-C.2)"),
)
