"""Networked cell store: a TCP result service plus a resilient client.

PR 8's content-addressed store (:mod:`repro.harness.cellstore`) shares
results between executors through a directory — which multi-host fleets
can only use over a shared filesystem.  This module lifts the same
store onto a socket so hosts share nothing but the wire:

* :class:`CellStoreServer` — ``repro store serve ROOT HOST:PORT``, a
  stdlib-only threaded server in front of a directory-backed
  :class:`~repro.harness.cellstore.CellStore`.  It speaks the work
  queue's length-prefixed JSON framing
  (:func:`repro.harness.netqueue.send_frame`) and trusts nothing: every
  published record is re-validated with
  :func:`~repro.harness.cellstore.record_problem` (key and payload hash
  must re-derive from the payload), and lookups match the *full*
  content address the client derived from code it can see — the server
  itself never needs to fingerprint a worker.

* :class:`RemoteCellStore` — the client behind ``--store
  tcp://HOST:PORT`` / ``REPRO_STORE=tcp://...``.  It subclasses
  :class:`~repro.harness.cellstore.CellStore` rooted at a local
  **spool** directory, so the whole maintenance toolbox keeps working
  and, crucially, sweeps *degrade instead of failing*: when the server
  is unreachable (or the circuit breaker is open) lookups miss, leases
  grant locally, and publishes land in the crash-safe spool, which
  drains back to the server on the next successful call and in a
  patient final pass at :meth:`RemoteCellStore.close`.  Reports stay
  byte-identical to a healthy-store run — only the stderr ``[store:]``
  banner records the spool and degraded-interval counts.

Every network call is deadline-bounded and retried under
:mod:`repro.harness.resilience` (bounded exponential backoff with
deterministic jitter, per-endpoint circuit breaker).  The failure
matrix — and how each cell of it recovers — is tabulated in
``docs/resilience.md``.

Wire protocol (one JSON object per frame, ``op``-discriminated)::

    client -> server   {"op": "hello", "pid", "host"}
    server -> client   {"op": "welcome", "version"}
    client -> server   {"op": "ping"}                        -> "pong"
    client -> server   {"op": "lookup", "k", "worker", "code", "hash"}
    server -> client   {"op": "found", "result"} | {"op": "miss"}
    client -> server   {"op": "plan", "cells": [{...address...}]}
    server -> client   {"op": "plan", "served", "granted", "busy"}
    client -> server   {"op": "lease", "k"}                  -> {"granted"}
    client -> server   {"op": "release", "keys"}             -> "ok"
    client -> server   {"op": "publish", "record"}           -> "ok" | "reject"
    client -> server   {"op": "stats"}                       -> {"stats"}
    client -> server   {"op": "bye"}
"""

from __future__ import annotations

import contextlib
import os
import socket
import tempfile
import threading
import time
import typing as _t

from repro.errors import ConfigError, StoreUnavailableError, UnavailableError
from repro.harness.cellstore import (
    MISS,
    CellStore,
    StorePlan,
    _worker_code,
    build_record,
    record_problem,
    store_key,
)
from repro.harness.journal import decode_value, encode_value, payload_hash
from repro.harness.netqueue import recv_frame, send_frame
from repro.harness.resilience import (
    TRANSPORT_ERRORS,
    CircuitBreaker,
    RetryPolicy,
    retry_call,
)

#: Store wire-protocol version; client and server must agree exactly.
PROTOCOL_VERSION = 1

#: Cells per ``plan`` frame — bounds frame size for arbitrarily large
#: sweeps (an address is a few hundred bytes; 200 stays far under the
#: netqueue frame cap while amortizing the round trip).
PLAN_CHUNK = 200

#: Environment override for the offline spool directory.
SPOOL_ENV = "REPRO_STORE_SPOOL"


def parse_endpoint(spec: str) -> tuple[str, int]:
    """``(host, port)`` from ``tcp://HOST:PORT`` (or bare ``HOST:PORT``)."""
    text = spec.strip()
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ConfigError(f"store endpoint must be tcp://HOST:PORT: {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(f"bad store endpoint port: {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ConfigError(f"store endpoint port out of range: {spec!r}")
    return host, port


def default_spool_root(host: str, port: int) -> str:
    """The crash-safe spool directory for one store endpoint.

    Deterministic per ``(user, endpoint)`` — *not* per process — so a
    run that crashed (or was killed) with results still spooled hands
    them to the next run against the same endpoint, which drains them
    on its first successful call.  ``REPRO_STORE_SPOOL`` overrides.
    """
    override = os.environ.get(SPOOL_ENV, "").strip()
    if override:
        return override
    uid = getattr(os, "getuid", lambda: 0)()
    safe_host = host.replace(":", "_").replace("/", "_")
    return os.path.join(
        tempfile.gettempdir(), f"repro-spool-{uid}-{safe_host}-{port}"
    )


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

class CellStoreServer:
    """TCP front end for a directory-backed cell store.

    One thread per connection; the underlying store's append-only file
    discipline already serializes concurrent publishes, so handler
    threads only synchronize around the in-memory lease table.  Leases
    are granted per connection, expire after the store's TTL, and are
    released when their connection drops — a crashed executor can never
    wedge a cell for longer than the TTL.

    ``port=0`` binds an ephemeral port (``.port`` has the real one).
    ``max_requests`` makes the server stop after handling that many
    frames — the deterministic "server dies mid-sweep" crash CI's chaos
    guard wraps in a restart loop.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_ttl: float | None = None,
        max_requests: int | None = None,
        clock: _t.Callable[[], float] | None = None,
    ) -> None:
        if max_requests is not None and max_requests < 1:
            raise ConfigError(f"max_requests must be >= 1: {max_requests}")
        self.store = CellStore(root, lease_ttl=lease_ttl)
        self.requests = 0
        self._max = max_requests
        # Wall-clock liveness only (lease expiry), never in results.
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._leases: dict[str, tuple[int, float]] = {}  # key -> (conn, expiry)
        self._conn_socks: dict[int, socket.socket] = {}
        self._next_conn = 0
        self._stopping = False

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host or "127.0.0.1", port))
        self._listener.listen(128)
        self.host = host or "127.0.0.1"
        self.port = self._listener.getsockname()[1]

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "CellStoreServer":
        """Serve in a daemon thread (the in-process test harness path)."""
        threading.Thread(target=self.serve_forever, daemon=True).start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` (or the request budget)."""
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: stopping
            with self._lock:
                if self._stopping:
                    with contextlib.suppress(OSError):
                        sock.close()
                    return
                cid = self._next_conn
                self._next_conn += 1
                self._conn_socks[cid] = sock
            threading.Thread(
                target=self._serve_conn, args=(sock, cid), daemon=True
            ).start()

    def stop(self) -> None:
        """Close the listener and sever every live connection."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            socks = list(self._conn_socks.values())
        with contextlib.suppress(OSError):
            self._listener.close()
        for sock in socks:
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()

    # -- per-connection ---------------------------------------------------
    def _serve_conn(self, sock: socket.socket, cid: int) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    return
                try:
                    resp, done = self._handle(frame, cid)
                except Exception as exc:  # a bad frame must not kill the server
                    resp, done = (
                        {"op": "error",
                         "message": f"{type(exc).__name__}: {exc}"},
                        False,
                    )
                if resp is not None:
                    send_frame(sock, resp)
                if done or self._count_request():
                    return
        except (OSError, ConnectionError):
            return
        finally:
            self._disconnect(cid)
            with contextlib.suppress(OSError):
                sock.close()

    def _count_request(self) -> bool:
        with self._lock:
            self.requests += 1
            exhausted = self._max is not None and self.requests >= self._max
        if exhausted:
            self.stop()
        return exhausted

    def _disconnect(self, cid: int) -> None:
        with self._lock:
            self._conn_socks.pop(cid, None)
            for key in [k for k, (o, _e) in self._leases.items() if o == cid]:
                del self._leases[key]

    # -- ops --------------------------------------------------------------
    def _handle(self, frame: dict, cid: int) -> tuple[dict | None, bool]:
        op = frame.get("op")
        if op == "hello":
            return {"op": "welcome", "version": PROTOCOL_VERSION}, False
        if op == "ping":
            return {"op": "pong", "version": PROTOCOL_VERSION,
                    "root": str(self.store.root)}, False
        if op == "bye":
            return None, True
        if op == "lookup":
            value = self.store.find_by_address(
                frame.get("k", ""), frame.get("worker", ""),
                frame.get("code", ""), frame.get("hash", ""),
            )
            if value is MISS:
                return {"op": "miss"}, False
            return {"op": "found", "result": encode_value(value)}, False
        if op == "plan":
            served: list[list] = []
            granted: list[str] = []
            busy: list[str] = []
            for cell in frame.get("cells") or []:
                key = cell.get("k", "")
                value = self.store.find_by_address(
                    key, cell.get("worker", ""),
                    cell.get("code", ""), cell.get("hash", ""),
                )
                if value is not MISS:
                    served.append([key, encode_value(value)])
                elif self._lease(key, cid):
                    granted.append(key)
                else:
                    busy.append(key)
            return {"op": "plan", "served": served,
                    "granted": granted, "busy": busy}, False
        if op == "lease":
            return {"op": "lease",
                    "granted": self._lease(frame.get("k", ""), cid)}, False
        if op == "release":
            self._release_keys(frame.get("keys") or [], cid)
            return {"op": "ok"}, False
        if op == "publish":
            rec = frame.get("record")
            if not isinstance(rec, dict):
                return {"op": "reject", "problem": "record is not an object"}, False
            problem = self.store.append_record(rec)
            if problem is not None:
                return {"op": "reject", "problem": problem}, False
            with self._lock:  # the published record supersedes any lease
                self._leases.pop(rec["k"], None)
            return {"op": "ok"}, False
        if op == "stats":
            return {"op": "stats", "stats": self.store.stats().to_dict()}, False
        return {"op": "error", "message": f"unknown op: {op!r}"}, False

    def _lease(self, key: str, cid: int) -> bool:
        now = self._clock()
        with self._lock:
            held = self._leases.get(key)
            if held is not None and held[0] != cid and held[1] > now:
                return False
            self._leases[key] = (cid, now + self.store.lease_ttl)
            return True

    def _release_keys(self, keys: _t.Iterable[str], cid: int) -> None:
        with self._lock:
            for key in keys:
                held = self._leases.get(key)
                if held is not None and held[0] == cid:
                    del self._leases[key]


def serve(
    root: str,
    host: str,
    port: int,
    *,
    lease_ttl: float | None = None,
    max_requests: int | None = None,
) -> int:
    """Run ``repro store serve`` in the foreground; the process exit code."""
    import sys

    server = CellStoreServer(
        root, host, port, lease_ttl=lease_ttl, max_requests=max_requests
    )
    budget = f", max_requests={max_requests}" if max_requests else ""
    print(
        f"[store-serve] listening on {server.host}:{server.port} "
        f"root={root}{budget}",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(
        f"[store-serve] stopped after {server.requests} request(s)",
        file=sys.stderr,
        flush=True,
    )
    return 0


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------

class RemoteCellStore(CellStore):
    """Cell-store client for ``--store tcp://HOST:PORT``.

    Subclasses :class:`~repro.harness.cellstore.CellStore` *rooted at
    the local spool directory*: the inherited machinery is the offline
    buffer, and every store operation is overridden to try the server
    first and fall back to the spool.  The degradation contract:

    ==============  =====================================================
    operation       while the server is unreachable / breaker open
    ==============  =====================================================
    ``lookup``      spool hit if we spooled it earlier, else ``MISS``
                    (the cell simply executes locally)
    ``try_lease``   granted — duplicate computation between partitioned
                    hosts is redundant, never incorrect (same address)
    ``publish``     appended to the crash-safe spool, drained to the
                    server on reconnect (and in a patient pass on close)
    ``await_peer``  ``MISS`` immediately — compute it ourselves
    ==============  =====================================================

    Reports therefore stay byte-identical whatever the network does;
    only the stderr banner shows ``spooled``/``pending``/``degraded``
    counts.  All I/O is deadline-bounded and retried with deterministic
    jitter; consecutive failures open the per-endpoint breaker so a
    dead server costs one fast refusal per call, not a retry ladder.
    """

    def __init__(
        self,
        spec: str,
        *,
        spool_root: str | os.PathLike | None = None,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep: _t.Callable[[float], None] = time.sleep,
    ) -> None:
        host, port = parse_endpoint(spec)
        self.endpoint_host = host
        self.endpoint_port = port
        self.endpoint = f"{host}:{port}"
        if spool_root is None:
            spool_root = default_spool_root(host, port)
        super().__init__(spool_root)
        self._policy = policy if policy is not None else RetryPolicy(
            attempts=3, base_delay=0.05, max_delay=0.5
        )
        self._breaker = breaker if breaker is not None else CircuitBreaker(
            self.endpoint
        )
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._lock = threading.RLock()
        self._degraded = False
        self._draining = False
        self._closed = False
        #: Publishes buffered locally because the server was unreachable.
        self.spooled = 0
        #: Spooled records handed to the server on reconnect.
        self.drained = 0
        #: Transitions into degraded (offline) operation.
        self.degraded_intervals = 0
        #: Spool records not yet on the server (includes crash leftovers).
        self.pending = sum(1 for _ in self._spool_records())

    # -- connection -------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.endpoint_host, self.endpoint_port),
            timeout=self._policy.deadline,
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_frame(sock, {"op": "hello", "pid": os.getpid(),
                              "host": socket.gethostname()})
            welcome = recv_frame(sock)
        except TRANSPORT_ERRORS:
            with contextlib.suppress(OSError):
                sock.close()
            raise
        if not welcome or welcome.get("op") != "welcome":
            with contextlib.suppress(OSError):
                sock.close()
            raise ConnectionError(f"store server did not welcome us: {welcome!r}")
        if welcome.get("version") != PROTOCOL_VERSION:
            with contextlib.suppress(OSError):
                sock.close()
            raise ConfigError(  # wrong software, not a flaky wire: fatal
                f"store server speaks protocol {welcome.get('version')}, "
                f"this client speaks {PROTOCOL_VERSION}"
            )
        return sock

    def _drop_sock(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    def _roundtrip(self, payload: dict) -> dict:
        """One request/response attempt over the (re)established socket."""
        if self._sock is None:
            self._sock = self._connect()
        try:
            send_frame(self._sock, payload)
            resp = recv_frame(self._sock)
        except TRANSPORT_ERRORS:
            self._drop_sock()
            raise
        if resp is None:
            self._drop_sock()
            raise ConnectionError("store server closed the connection")
        return resp

    def _call(self, payload: dict) -> dict:
        """A resilient round trip; :class:`StoreUnavailableError` when down.

        Success while degraded flips us back online and drains the
        spool; exhausted retries (or an open breaker) raise the
        internal unavailability signal the overrides translate into
        graceful degradation.
        """
        with self._lock:
            try:
                resp = retry_call(
                    lambda: self._roundtrip(payload),
                    policy=self._policy,
                    breaker=self._breaker,
                    token=f"store {self.endpoint}",
                    sleep=self._sleep,
                )
            except UnavailableError as exc:
                if not self._degraded:
                    self._degraded = True
                    self.degraded_intervals += 1
                raise StoreUnavailableError(str(exc)) from exc
            self._degraded = False
            if resp.get("op") == "error":
                raise ConfigError(f"store server error: {resp.get('message')}")
            if self.pending and not self._draining:
                self._drain()
            return resp

    # -- the spool --------------------------------------------------------
    def _spool_records(self) -> _t.Iterator[dict]:
        """Every valid record currently buffered in the spool."""
        for shard in self.shard_files():
            for _lineno, _line, rec in self._scan_shard(shard):
                if isinstance(rec, dict) and record_problem(rec) is None:
                    yield rec

    def _spool(self, record: dict) -> None:
        """Buffer a publish locally (fsynced) until the server is back."""
        CellStore.append_record(self, record)
        self.spooled += 1
        self.pending += 1

    def _drain(self) -> None:
        """Hand every spooled record to the server, then clear the spool.

        The spool is only deleted after *every* record is acknowledged:
        a crash (or re-outage) mid-drain leaves all records in place,
        and re-sending already-acknowledged ones is harmless — records
        are content-addressed, duplicates collapse last-wins.
        """
        self._draining = True
        try:
            count = 0
            for rec in list(self._spool_records()):
                resp = self._call({"op": "publish", "record": rec})
                if resp.get("op") == "reject":
                    continue  # impossible for honestly built records
                count += 1
            for shard in self.shard_files():
                with contextlib.suppress(OSError):
                    shard.unlink()
            self.drained += count
            self.published += count
            self.pending = 0
        except StoreUnavailableError:
            pass  # back offline: the spool survives for the next reconnect
        finally:
            self._draining = False

    # -- store interface --------------------------------------------------
    def _address(
        self, worker: str, args: _t.Sequence[_t.Any]
    ) -> tuple[str, str, str] | None:
        code = _worker_code(worker)
        if code is None:
            return None
        return store_key(worker, args, code), code, payload_hash(worker, args)

    def lookup(self, worker: str, args: _t.Sequence[_t.Any]) -> _t.Any:
        address = self._address(worker, args)
        if address is None:
            self.misses += 1
            return MISS
        key, code, digest = address
        local = self.find_by_address(key, worker, code, digest)
        if local is not MISS:
            self.hits += 1
            return local
        try:
            resp = self._call({"op": "lookup", "k": key, "worker": worker,
                               "code": code, "hash": digest})
        except StoreUnavailableError:
            self.misses += 1
            return MISS
        if resp.get("op") == "found":
            self.hits += 1
            return decode_value(resp.get("result"))
        self.misses += 1
        return MISS

    def publish(
        self, worker: str, args: _t.Sequence[_t.Any], result: _t.Any
    ) -> bool:
        record = build_record(worker, args, result)
        if record is None:
            return False
        self._held.discard(record["k"])  # the publish supersedes our lease
        try:
            resp = self._call({"op": "publish", "record": record})
        except StoreUnavailableError:
            self._spool(record)
            return True
        if resp.get("op") == "reject":
            raise ConfigError(
                f"store server rejected record: {resp.get('problem')}"
            )
        self.published += 1
        return True

    def try_lease(self, worker: str, args: _t.Sequence[_t.Any]) -> bool:
        address = self._address(worker, args)
        if address is None:
            return True
        return self.try_lease_key(address[0])

    def try_lease_key(self, key: str) -> bool:
        try:
            resp = self._call({"op": "lease", "k": key})
        except StoreUnavailableError:
            # Partitioned hosts may compute the same cell: redundant,
            # never incorrect (both publishes carry the same address).
            return True
        granted = bool(resp.get("granted"))
        if granted:
            self._held.add(key)
        return granted

    def release_leases(self) -> None:
        keys = sorted(self._held)
        self._held.clear()
        if not keys:
            return
        with contextlib.suppress(StoreUnavailableError):
            # Best effort: the server reclaims leases on disconnect (and
            # by TTL) anyway; peers just wait a little longer.
            self._call({"op": "release", "keys": keys})

    def plan_cells(self, cells: _t.Sequence[_t.Any]) -> StorePlan:
        """One batched scheduling pass — ``PLAN_CHUNK`` cells per frame.

        Where the directory store pays a filesystem probe per cell, the
        remote plan is one round trip per chunk; offline it degrades to
        "serve spool hits, run everything else here".
        """
        plan = StorePlan()
        addressed: list[tuple[_t.Any, str, str, str]] = []
        for cell in cells:
            address = self._address(cell.worker, cell.args)
            if address is None:
                self.misses += 1
                plan.to_run.append(cell)
                continue
            key, code, digest = address
            local = self.find_by_address(key, cell.worker, code, digest)
            if local is not MISS:
                self.hits += 1
                plan.served[cell.key] = local
                continue
            addressed.append((cell, key, code, digest))
        for start in range(0, len(addressed), PLAN_CHUNK):
            chunk = addressed[start:start + PLAN_CHUNK]
            try:
                resp = self._call({
                    "op": "plan",
                    "cells": [
                        {"k": key, "worker": cell.worker,
                         "code": code, "hash": digest}
                        for cell, key, code, digest in chunk
                    ],
                })
            except StoreUnavailableError:
                for cell, _key, _code, _digest in chunk:
                    self.misses += 1
                    plan.to_run.append(cell)
                continue
            served = {
                pair[0]: pair[1]
                for pair in resp.get("served") or []
                if isinstance(pair, list) and len(pair) == 2
            }
            granted = set(resp.get("granted") or [])
            for cell, key, _code, _digest in chunk:
                if key in served:
                    self.hits += 1
                    plan.served[cell.key] = decode_value(served[key])
                elif key in granted:
                    self.misses += 1
                    self._held.add(key)
                    plan.to_run.append(cell)
                else:
                    self.misses += 1
                    plan.deferred.append(cell)
        return plan

    def await_peer(
        self,
        worker: str,
        args: _t.Sequence[_t.Any],
        *,
        poll: float = 0.05,
        max_wait: float | None = None,
    ) -> _t.Any:
        address = self._address(worker, args)
        if address is None:
            return MISS
        key, code, digest = address
        if max_wait is None:
            max_wait = self.lease_ttl
        deadline = time.monotonic() + max_wait  # lint-ok: DET001 lease liveness only, never in results
        while True:
            try:
                resp = self._call({"op": "lookup", "k": key, "worker": worker,
                                   "code": code, "hash": digest})
            except StoreUnavailableError:
                return MISS  # partitioned: compute it ourselves
            if resp.get("op") == "found":
                self.hits += 1
                self.misses -= 1  # the planned miss became a peer-served hit
                self.peer_waits += 1
                return decode_value(resp.get("result"))
            # No result yet: if the peer's lease lapsed (it died or gave
            # up) the server grants it to us and we compute the cell.
            try:
                lease = self._call({"op": "lease", "k": key})
            except StoreUnavailableError:
                return MISS
            if lease.get("granted"):
                self._held.add(key)
                return MISS
            if time.monotonic() >= deadline:  # lint-ok: DET001 lease liveness only, never in results
                return MISS
            self._sleep(poll)

    # -- reporting / lifecycle --------------------------------------------
    def banner(self) -> str:
        text = super().banner()
        text += f", {self.spooled} spooled, {self.pending} pending"
        if self.degraded_intervals:
            text += f", {self.degraded_intervals} degraded interval(s)"
        if self._breaker.opened:
            text += f", breaker opened {self._breaker.opened}x"
        return text

    def remote_stats(self) -> dict:
        """The *server's* store tallies (``repro store stats tcp://...``)."""
        return dict(self._call({"op": "stats"}).get("stats") or {})

    def ping(self) -> dict:
        """One resilient round trip; the server's ``pong`` frame."""
        return self._call({"op": "ping"})

    def close(self) -> None:
        """Drain the spool (patiently), say goodbye, drop the socket.

        Called by ``store_scope`` when the sweep ends.  The final drain
        gets a more generous retry ladder and a fresh breaker — the
        spool holds the only copies of these results, and CI's chaos
        guard restarts the server precisely so this pass can finish
        with ``0 pending``.  If the server stays gone, the spool (and
        its deterministic path) survives for the next run to drain.
        """
        if self._closed:
            return
        self._closed = True
        if self.pending:
            self._policy = RetryPolicy(
                attempts=max(8, self._policy.attempts),
                base_delay=max(0.25, self._policy.base_delay),
                max_delay=max(2.0, self._policy.max_delay),
                jitter=self._policy.jitter,
                deadline=self._policy.deadline,
                seed=self._policy.seed,
            )
            self._breaker = CircuitBreaker(self.endpoint)  # a fresh fuse
            with contextlib.suppress(StoreUnavailableError, ConfigError):
                self._call({"op": "ping"})  # reconnect: success drains
        with self._lock:
            if self._sock is not None:
                with contextlib.suppress(OSError, ConnectionError):
                    send_frame(self._sock, {"op": "bye"})
            self._drop_sock()
