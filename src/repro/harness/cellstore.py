"""Content-addressed global cell result store: simulate once, serve millions.

The resume journal (:mod:`repro.harness.journal`) persists completed
cells for *one* interrupted run.  This module generalises that idea
into a store shared across runs, hosts and users: every cell result is
keyed by a canonical content hash of

* the registered **worker name**,
* its **encoded arguments** (the journal's typed encoding, so tuples
  and int-keyed dicts hash stably),
* the worker's static **code fingerprint**
  (:func:`repro.analysis.static.worker_fingerprint` — the semantic
  identity of every function the worker can reach), and
* the journal **format version** (so an encoding change can never
  alias old records).

Because the code fingerprint participates in the key, entries can never
go stale: editing any function in a worker's call-graph closure moves
the key, so old results simply stop being found — they are garbage, not
hazards — and ``repro store gc`` reclaims them.  A worker without a
static fingerprint (e.g. one registered from a test module) bypasses
the store entirely: no code identity means no safe cache key.

Storage layout
--------------
An append-friendly sharded directory, safe for concurrent writers::

    <root>/cells/<first-two-hex-of-key>.jsonl

Each record is one self-contained JSON line appended with a single
``O_APPEND`` ``write`` and fsynced, so concurrent publishers on the
same shard interleave whole records; readers tolerate torn records
anywhere (a half-written line is skipped, never fatal).  Duplicate keys
are resolved last-record-wins on read and compacted by ``gc``.

Wiring
------
:func:`repro.harness.parallel.run_cells` and the supervisor consult the
active store before dispatching any cell and publish fresh results
after.  A store becomes active via :func:`store_scope` (what
``repro run --store PATH`` and ``run_batch(store=...)`` use) or the
``REPRO_STORE`` environment variable.  Store hits merge by cell key
exactly like journal hits, so a store-served sweep renders
byte-identically to a fresh one — the CI round-trip guard holds this.

The ``repro store`` CLI exposes maintenance: ``stats``, ``verify``
(full integrity re-derivation of every key and payload hash), ``gc``
(drop stale/duplicate/malformed records) and ``export``/``import`` for
cross-host sharing.  See ``docs/caching.md``.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import hashlib
import json
import os
import pathlib
import socket
import time
import typing as _t

from repro.errors import ConfigError
from repro.harness.journal import (
    FORMAT_VERSION as JOURNAL_FORMAT_VERSION,
    decode_value,
    encode_value,
    payload_hash,
)

#: Bump when the store record layout changes incompatibly.
STORE_VERSION = 1

#: Hex chars of the key used to pick a shard file (256 shards).
SHARD_WIDTH = 2

#: Default seconds before another host may take over an unpublished lease.
LEASE_TTL = 600.0


class _Miss:
    """Sentinel for "not in the store" (distinct from a stored ``None``)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<store miss>"


#: Returned by :meth:`CellStore.lookup` when no servable entry exists.
MISS = _Miss()

_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex(value: _t.Any, length: int | None = None) -> bool:
    """Whether ``value`` is a lowercase hex string (of ``length`` chars)."""
    if not isinstance(value, str) or (length is not None and len(value) != length):
        return False
    return bool(value) and all(c in _HEX_DIGITS for c in value)


def store_key(worker: str, args: _t.Sequence[_t.Any], code: str) -> str:
    """Canonical content-address of one cell result.

    The digest covers ``(journal format version, worker, encoded args,
    code fingerprint)``; any change to the worker's reachable code (or
    to the typed encoding itself) moves the key, which is the store's
    entire staleness story — entries are immutable and can only ever
    stop being found.
    """
    blob = json.dumps(
        [JOURNAL_FORMAT_VERSION, worker, encode_value(tuple(args)), code],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _worker_code(worker: str) -> str | None:
    """Static code fingerprint of ``worker`` (None: no safe cache key)."""
    from repro.analysis.static import worker_fingerprint

    return worker_fingerprint(worker)


def record_problem(rec: _t.Any) -> str | None:
    """Why ``rec`` is not a well-formed store record (None: it is).

    Shared by :meth:`CellStore.verify`, ``gc`` and ``import``: a record
    is well-formed when every field is present and the key re-derives
    from the payload — so a corrupted or hand-edited record can never
    be served as a different cell's result.
    """
    if not isinstance(rec, dict):
        return "record is not an object"
    version = rec.get("v")
    if not isinstance(version, int) or isinstance(version, bool):
        return f"non-integer store version {version!r}"
    if version > STORE_VERSION:
        return f"store version {version} is newer than supported {STORE_VERSION}"
    for field in ("k", "worker", "args", "code", "hash", "result"):
        if field not in rec:
            return f"missing field {field!r}"
    if not _is_hex(rec["k"], 64):
        return "key is not 64 lowercase hex chars"
    if not isinstance(rec["worker"], str) or not rec["worker"]:
        return "worker is not a non-empty string"
    if not _is_hex(rec["code"]):
        return "code fingerprint is not lowercase hex"
    if not _is_hex(rec["hash"], 32):
        return "payload hash is not 32 lowercase hex chars"
    args = decode_value(rec["args"])
    if not isinstance(args, tuple):
        return "args do not decode to a tuple"
    if store_key(rec["worker"], args, rec["code"]) != rec["k"]:
        return "key does not re-derive from (worker, args, code)"
    if payload_hash(rec["worker"], args) != rec["hash"]:
        return "payload hash does not re-derive from (worker, args)"
    return None


def build_record(
    worker: str, args: _t.Sequence[_t.Any], result: _t.Any
) -> dict | None:
    """The store record for one fresh result; None for uncacheable workers.

    One construction site for every publisher — the local store, the
    offline spool and the networked client all emit byte-identical
    record lines for the same result, which is what lets a spooled
    record drain to a server verbatim.
    """
    code = _worker_code(worker)
    if code is None:
        return None
    return {
        "v": STORE_VERSION,
        "k": store_key(worker, args, code),
        "worker": worker,
        "args": encode_value(tuple(args)),
        "code": code,
        "hash": payload_hash(worker, args),
        "result": encode_value(result),
    }


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class StoreStats:
    """What ``repro store stats`` reports."""

    root: str
    shards: int = 0
    records: int = 0
    unique_keys: int = 0
    torn_lines: int = 0
    bytes: int = 0
    workers: dict[str, int] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"# cell store at {self.root}",
            f"shards       : {self.shards}",
            f"records      : {self.records}",
            f"unique keys  : {self.unique_keys}",
            f"torn lines   : {self.torn_lines}",
            f"bytes        : {self.bytes}",
        ]
        for worker in sorted(self.workers):
            lines.append(f"  {worker:<16} {self.workers[worker]} record(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, _t.Any]:
        return {
            "root": self.root,
            "shards": self.shards,
            "records": self.records,
            "unique_keys": self.unique_keys,
            "torn_lines": self.torn_lines,
            "bytes": self.bytes,
            "workers": {w: self.workers[w] for w in sorted(self.workers)},
        }


@dataclasses.dataclass(slots=True)
class VerifyReport:
    """What ``repro store verify`` found.

    ``problems`` are structural integrity failures (a parseable record
    whose key or hash does not re-derive, or that sits in the wrong
    shard) — these fail the gate.  ``torn_lines`` are unparseable lines
    (the signature of a writer killed mid-append); tolerated by every
    reader, so they are reported but do not fail verification.
    """

    ok: int = 0
    torn_lines: int = 0
    problems: list[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [
            f"store verify: {self.ok} record(s) ok, "
            f"{self.torn_lines} torn line(s), "
            f"{len(self.problems)} problem(s)"
        ]
        lines.extend(f"  {p}" for p in self.problems)
        return "\n".join(lines)


@dataclasses.dataclass(slots=True)
class GcReport:
    """What ``repro store gc`` did (or, with ``dry_run``, would do)."""

    kept: int = 0
    dropped_stale: int = 0
    dropped_duplicate: int = 0
    dropped_malformed: int = 0
    dropped_unknown: int = 0
    dropped_torn: int = 0
    dry_run: bool = False

    @property
    def dropped(self) -> int:
        return (
            self.dropped_stale + self.dropped_duplicate
            + self.dropped_malformed + self.dropped_unknown
            + self.dropped_torn
        )

    def render(self) -> str:
        verb = "would drop" if self.dry_run else "dropped"
        return (
            f"store gc: kept {self.kept}, {verb} {self.dropped} "
            f"({self.dropped_stale} stale, {self.dropped_duplicate} duplicate, "
            f"{self.dropped_malformed} malformed, {self.dropped_unknown} "
            f"unknown-worker, {self.dropped_torn} torn)"
        )


@dataclasses.dataclass(slots=True)
class StorePlan:
    """A dispatch plan: every cell of a sweep, partitioned by the store.

    Produced by :meth:`CellStore.plan_cells` before any dispatch:
    ``served`` cells already have a result, ``to_run`` cells are ours to
    execute (a lease was claimed for every cacheable one), and
    ``deferred`` cells are being computed *right now* by another
    executor sharing this store — the scheduler awaits their results via
    :meth:`CellStore.await_peer` instead of computing them twice.
    """

    served: dict[tuple, _t.Any] = dataclasses.field(default_factory=dict)
    to_run: list[_t.Any] = dataclasses.field(default_factory=list)
    deferred: list[_t.Any] = dataclasses.field(default_factory=list)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class CellStore:
    """One content-addressed store rooted at a directory.

    Instances are cheap (no open handles are held between operations)
    and safe to use from many processes at once: publishes are single
    ``O_APPEND`` writes and reads tolerate torn records.  Hit/miss/
    publish counters accumulate on the instance — the source of the
    ``store: ...`` banner a batch prints to stderr.
    """

    def __init__(
        self, root: str | pathlib.Path, *, lease_ttl: float | None = None
    ) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.published = 0
        self.peer_waits = 0
        self.takeovers = 0
        if lease_ttl is None:
            lease_ttl = float(os.environ.get("REPRO_STORE_LEASE_TTL") or LEASE_TTL)
        if lease_ttl <= 0:
            raise ConfigError(f"lease TTL must be > 0: {lease_ttl}")
        self.lease_ttl = lease_ttl
        self._held: set[str] = set()
        self._owner = f"{socket.gethostname()}:{os.getpid()}:{id(self):x}"

    # -- paths ------------------------------------------------------------
    @property
    def cells_dir(self) -> pathlib.Path:
        return self.root / "cells"

    @property
    def leases_dir(self) -> pathlib.Path:
        return self.root / "leases"

    def shard_path(self, key: str) -> pathlib.Path:
        return self.cells_dir / f"{key[:SHARD_WIDTH]}.jsonl"

    def lease_path(self, key: str) -> pathlib.Path:
        return self.leases_dir / f"{key}.json"

    def shard_files(self) -> list[pathlib.Path]:
        """All shard files, in deterministic (name) order."""
        if not self.cells_dir.is_dir():
            return []
        return sorted(self.cells_dir.glob("*.jsonl"))

    # -- scanning ---------------------------------------------------------
    @staticmethod
    def _scan_shard(
        path: pathlib.Path,
    ) -> _t.Iterator[tuple[int, str, _t.Any | None]]:
        """Yield ``(lineno, line, record-or-None)`` for one shard file.

        ``None`` marks a torn/unparseable line — tolerated everywhere,
        accounted by ``stats``/``verify`` and reclaimed by ``gc``.
        """
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                rec = None
            yield lineno, line, rec

    # -- the hot path -----------------------------------------------------
    def find_by_address(
        self, key: str, worker: str, code: str, digest: str
    ) -> _t.Any:
        """Uncounted lookup by full content address — :data:`MISS` or the result.

        The primitive the networked store server
        (:mod:`repro.harness.netstore`) serves directly: the client
        derives ``key``/``code``/``digest`` from code it can see, and a
        hit requires every component to match, so a server that cannot
        fingerprint the worker itself still never serves a stale entry.
        """
        found: _t.Any = MISS
        for _lineno, _line, rec in self._scan_shard(self.shard_path(key)):
            if (
                isinstance(rec, dict)
                and rec.get("k") == key
                and rec.get("worker") == worker
                and rec.get("code") == code
                and rec.get("hash") == digest
                and "result" in rec
            ):
                found = decode_value(rec["result"])  # last record wins
        return found

    def _find(self, worker: str, args: _t.Sequence[_t.Any]) -> _t.Any:
        """Uncounted lookup — :data:`MISS` or the stored result.

        The counter-free primitive behind :meth:`lookup` and the peer
        polling loop (:meth:`await_peer` re-reads a shard many times for
        one logical lookup; counting each poll would garble the banner).
        """
        code = _worker_code(worker)
        if code is None:
            return MISS
        key = store_key(worker, args, code)
        return self.find_by_address(
            key, worker, code, payload_hash(worker, args)
        )

    def lookup(self, worker: str, args: _t.Sequence[_t.Any]) -> _t.Any:
        """The stored result for ``(worker, args)``, or :data:`MISS`.

        A hit requires the full content address to match: the record's
        key (which bakes in the code fingerprint current *now*), its
        payload hash, and its worker name.  An entry published by
        different code therefore can never be served — the never-stale
        discipline shared with the journal and ``CollectiveMemo``.
        """
        found = self._find(worker, args)
        if found is MISS:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def _append_record_line(self, key: str, line: str) -> None:
        """Append one complete record line to ``key``'s shard, fsynced.

        The single ``O_APPEND`` write is the store's whole concurrency
        story: publishers in other processes (or other hosts on a
        shared filesystem) interleave whole records, never bytes.
        """
        path = self.shard_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    def append_record(self, rec: dict) -> str | None:
        """Validate and append a prebuilt record; the problem string on reject.

        The primitive behind ``import`` and the networked store server's
        ``publish`` op: every record is re-checked with
        :func:`record_problem` before it touches a shard, so a tampered
        client (or transit corruption) can never plant a record whose
        key does not re-derive from its payload.  Does not count as a
        local publish and never touches leases.
        """
        problem = record_problem(rec)
        if problem is not None:
            return problem
        self._append_record_line(rec["k"], json.dumps(rec, sort_keys=True) + "\n")
        return None

    def publish(
        self, worker: str, args: _t.Sequence[_t.Any], result: _t.Any
    ) -> bool:
        """Append one result record; False when the worker is uncacheable."""
        record = build_record(worker, args, result)
        if record is None:
            return False
        self._append_record_line(
            record["k"], json.dumps(record, sort_keys=True) + "\n"
        )
        self.published += 1
        self._release(record["k"])  # the published record supersedes our claim
        return True

    def banner(self) -> str:
        """One-line ``store: ...`` summary (stderr only, never in reports)."""
        text = (
            f"store: {self.hits + self.misses} lookup(s): "
            f"{self.hits} served, {self.misses} executed, "
            f"{self.published} published"
        )
        if self.peer_waits:
            text += f", {self.peer_waits} awaited from peer(s)"
        return text

    # -- leases: store-aware scheduling ------------------------------------
    def _lease_key(self, worker: str, args: _t.Sequence[_t.Any]) -> str | None:
        code = _worker_code(worker)
        if code is None:
            return None
        return store_key(worker, args, code)

    def _lease_stale(self, path: pathlib.Path) -> bool:
        try:
            age = time.time() - path.stat().st_mtime  # lint-ok: DET001 lease liveness only, never in results
        except OSError:
            return False  # gone: not stale, just released
        return age > self.lease_ttl

    def try_lease(self, worker: str, args: _t.Sequence[_t.Any]) -> bool:
        """Claim the right to compute ``(worker, args)``; False: a peer has it.

        Uncacheable workers have no content address and therefore no
        lease: ``True``, just run it.  See :meth:`try_lease_key` for the
        claim protocol.
        """
        key = self._lease_key(worker, args)
        if key is None:
            return True
        return self.try_lease_key(key)

    def try_lease_key(self, key: str) -> bool:
        """Claim the lease for content address ``key``; False: a peer has it.

        The claim is an ``O_CREAT | O_EXCL`` lease file named by the
        cell's content address — the same lockless append-only
        filesystem discipline publishes use, so any number of executors
        (processes, hosts on a shared filesystem) race safely.  A lease
        older than the TTL is presumed orphaned (its owner crashed
        without publishing) and taken over through
        :meth:`_take_over_stale`, whose exclusive-marker protocol
        guarantees at most one racer wins.
        """
        path = self.lease_path(key)
        payload = json.dumps({"owner": self._owner, "k": key}, sort_keys=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            if not self._lease_stale(path):
                return False
            return self._take_over_stale(path, key, payload)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        self._held.add(key)
        return True

    def _take_over_stale(
        self, path: pathlib.Path, key: str, payload: str
    ) -> bool:
        """Atomically take over a stale lease; True only for one winner.

        The old protocol (write a tmp file, ``os.replace`` it over the
        lease, read back to confirm) was last-write-wins: two racers
        that both replaced *before* either read back each saw their own
        payload and both claimed the lease.  The fix is an exclusive
        takeover **marker** (``<key>.takeover``, ``O_CREAT | O_EXCL``):

        1. only one racer can create the marker — everyone else loses
           immediately;
        2. the marker holder re-checks that the lease is *still* stale
           (a racer that completed a takeover in the meantime has
           refreshed it — backing off here is what closes the old
           protocol's double-win window);
        3. the stale lease is unlinked and a fresh one created with the
           normal ``O_EXCL`` path, so even a brand-new claimant sneaking
           into the gap demotes us to a loser instead of being
           clobbered;
        4. the marker is removed (markers are TTL-reaped by ``gc``
           should a holder crash between 1 and 4).
        """
        marker = self.leases_dir / f"{key}.takeover"
        try:
            mfd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            # Another racer is mid-takeover; unless its marker is itself
            # orphaned (holder crashed), we lose.  A stale marker is
            # removed so the *next* attempt can proceed.
            if self._lease_stale(marker):
                with contextlib.suppress(OSError):
                    marker.unlink()
            return False
        os.close(mfd)
        try:
            if not self._lease_stale(path):
                return False  # a completed takeover refreshed it first
            with contextlib.suppress(OSError):
                path.unlink()
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                return False  # a fresh claimant won the re-creation race
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            self.takeovers += 1
            self._held.add(key)
            return True
        finally:
            with contextlib.suppress(OSError):
                marker.unlink()

    def _release(self, key: str) -> None:
        if key in self._held:
            self._held.discard(key)
            with contextlib.suppress(OSError):
                self.lease_path(key).unlink()

    def release_leases(self) -> None:
        """Drop every lease this instance still holds (error-path cleanup).

        Called by the harness when a sweep aborts, so peers waiting on
        our unpublished cells fall back to computing them immediately
        instead of waiting out the TTL.
        """
        for key in list(self._held):
            self._release(key)

    def plan_cells(self, cells: _t.Sequence[_t.Any]) -> StorePlan:
        """Partition a sweep into store-hit / ours-to-run / in-flight-elsewhere.

        The scheduling pass every executor backend runs before dispatch:
        cells with a stored result are served; each remaining cacheable
        cell is leased — won leases go to ``to_run``, lost ones (a peer
        executor sharing this store is computing that cell right now) go
        to ``deferred`` for :meth:`await_peer` to resolve after our own
        dispatch.  Two hosts sharing one store therefore never compute
        the same cell twice, whatever their backends.
        """
        plan = StorePlan()
        for cell in cells:
            value = self._find(cell.worker, cell.args)
            if value is not MISS:
                self.hits += 1
                plan.served[cell.key] = value
                continue
            self.misses += 1
            if self.try_lease(cell.worker, cell.args):
                plan.to_run.append(cell)
            else:
                plan.deferred.append(cell)
        return plan

    def await_peer(
        self,
        worker: str,
        args: _t.Sequence[_t.Any],
        *,
        poll: float = 0.05,
        max_wait: float | None = None,
    ) -> _t.Any:
        """Wait for a peer executor's result for a deferred cell.

        Polls the store until the peer publishes; a released or
        TTL-expired lease without a published result means the peer gave
        up (or died), in which case we claim the lease ourselves and
        return :data:`MISS` — the caller executes the cell locally.
        After ``max_wait`` seconds (default: the lease TTL) the wait
        also gives up with :data:`MISS`; computing the cell twice is
        merely redundant, never incorrect, because both publishes carry
        the same content address.
        """
        if max_wait is None:
            max_wait = self.lease_ttl
        deadline = time.monotonic() + max_wait  # lint-ok: DET001 lease liveness only, never in results
        while True:
            value = self._find(worker, args)
            if value is not MISS:
                self.hits += 1
                self.misses -= 1  # the planned miss became a peer-served hit
                self.peer_waits += 1
                return value
            key = self._lease_key(worker, args)
            if key is None:
                return MISS
            path = self.lease_path(key)
            if (not path.exists() or self._lease_stale(path)) and self.try_lease(
                worker, args
            ):
                return MISS
            if time.monotonic() >= deadline:  # lint-ok: DET001 lease liveness only, never in results
                return MISS
            time.sleep(poll)

    # -- maintenance ------------------------------------------------------
    def stats(self) -> StoreStats:
        """Record/shard/worker tallies over the whole store."""
        out = StoreStats(root=str(self.root))
        keys: set[str] = set()
        for shard in self.shard_files():
            out.shards += 1
            out.bytes += shard.stat().st_size
            for _lineno, _line, rec in self._scan_shard(shard):
                if rec is None:
                    out.torn_lines += 1
                    continue
                out.records += 1
                if isinstance(rec, dict):
                    if isinstance(rec.get("k"), str):
                        keys.add(rec["k"])
                    worker = rec.get("worker")
                    if isinstance(worker, str):
                        out.workers[worker] = out.workers.get(worker, 0) + 1
        out.unique_keys = len(keys)
        return out

    def verify(self) -> VerifyReport:
        """Re-derive every record's key and payload hash from its payload.

        The integrity gate CI runs after populating a store: any
        parseable record that fails :func:`record_problem`, or that
        lives in the wrong shard file, is a problem; torn lines are
        reported but tolerated (readers skip them).
        """
        report = VerifyReport()
        for shard in self.shard_files():
            for lineno, _line, rec in self._scan_shard(shard):
                where = f"{shard.name}:{lineno}"
                if rec is None:
                    report.torn_lines += 1
                    continue
                problem = record_problem(rec)
                if problem is None and shard.name != f"{rec['k'][:SHARD_WIDTH]}.jsonl":
                    problem = f"record in wrong shard (key {rec['k'][:8]}...)"
                if problem is not None:
                    report.problems.append(f"{where}: {problem}")
                else:
                    report.ok += 1
        return report

    def gc(self, *, drop_unknown: bool = False, dry_run: bool = False) -> GcReport:
        """Compact the store, dropping records that can never be served.

        Dropped: malformed/torn records, duplicate keys (last record
        wins, matching read semantics), records whose code fingerprint
        differs from the worker's *current* fingerprint (stale — the
        never-stale key discipline means they are unreachable garbage),
        and — only with ``drop_unknown`` — records for workers this
        host cannot fingerprint (they may still serve another host).
        Shards are rewritten to a temp file and atomically renamed, so
        concurrent readers always see a complete shard.
        """
        report = GcReport(dry_run=dry_run)
        for shard in self.shard_files():
            survivors: dict[str, str] = {}  # key -> line, last wins
            for _lineno, line, rec in self._scan_shard(shard):
                if rec is None:
                    report.dropped_torn += 1
                    continue
                if record_problem(rec) is not None:
                    report.dropped_malformed += 1
                    continue
                current = _worker_code(rec["worker"])
                if current is None:
                    if drop_unknown:
                        report.dropped_unknown += 1
                        continue
                elif current != rec["code"]:
                    report.dropped_stale += 1
                    continue
                if rec["k"] in survivors:
                    report.dropped_duplicate += 1
                survivors[rec["k"]] = line
            report.kept += len(survivors)
            if dry_run:
                continue
            if not survivors:
                shard.unlink()
                continue
            tmp = shard.with_suffix(".jsonl.tmp")
            body = "".join(
                survivors[k] + "\n" for k in sorted(survivors)
            )
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(body)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, shard)
        if not dry_run and self.leases_dir.is_dir():
            # TTL-expired lease files and takeover markers are orphans
            # (their owner is gone); reclaim them so they stop delaying
            # future takeovers.
            for pattern in ("*.json", "*.takeover"):
                for lease in sorted(self.leases_dir.glob(pattern)):
                    if self._lease_stale(lease):
                        with contextlib.suppress(OSError):
                            lease.unlink()
        return report

    def export_lines(self) -> _t.Iterator[str]:
        """All well-formed records as JSON lines, sorted by key.

        Duplicates collapse last-wins; the output is deterministic for
        a given store content, so two hosts can diff their exports.
        Streams one shard at a time: a key's 2-hex prefix names its
        shard, so shards partition the key space, shard files sorted by
        name yield global key order, and the working set is bounded by
        the largest shard — never the whole store.
        """
        for shard in self.shard_files():
            records: dict[str, str] = {}
            for _lineno, line, rec in self._scan_shard(shard):
                if rec is None or record_problem(rec) is not None:
                    continue
                records[rec["k"]] = line
            for key in sorted(records):
                yield records[key]

    def export(self, path: str | pathlib.Path) -> int:
        """Write :meth:`export_lines` to ``path``; returns the record count."""
        count = 0
        out = pathlib.Path(path)
        with open(out, "w", encoding="utf-8") as fh:
            for line in self.export_lines():
                fh.write(line + "\n")
                count += 1
        return count

    def import_file(self, path: str | pathlib.Path) -> tuple[int, int, int]:
        """Merge an exported JSONL file into this store.

        Every record is re-validated (:func:`record_problem`) before it
        is appended to its shard — a tampered export cannot plant a
        record whose key does not re-derive from its payload.  Returns
        ``(added, skipped_existing, skipped_invalid)``.

        Streams the file line by line (never materializing it) with a
        one-shard existing-keys cache, reloaded when the incoming key's
        shard changes.  Sorted dumps (what :meth:`export` writes) load
        each shard's keys exactly once; unsorted input stays correct,
        just with more cache reloads.  Memory is bounded by the largest
        shard's key set, so arbitrarily large dumps transport cleanly.
        """
        src = pathlib.Path(path)
        if not src.exists():
            raise ConfigError(f"store import file not found: {src}")
        cached_shard: str | None = None
        existing: set[str] = set()
        added = skipped_existing = skipped_invalid = 0
        with open(src, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.rstrip("\n")
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    skipped_invalid += 1
                    continue
                if record_problem(rec) is not None:
                    skipped_invalid += 1
                    continue
                prefix = rec["k"][:SHARD_WIDTH]
                if prefix != cached_shard:
                    cached_shard = prefix
                    existing = set()
                    for _lineno, _l, old in self._scan_shard(
                        self.shard_path(rec["k"])
                    ):
                        if isinstance(old, dict) and isinstance(old.get("k"), str):
                            existing.add(old["k"])
                if rec["k"] in existing:
                    skipped_existing += 1
                    continue
                self._append_record_line(rec["k"], line + "\n")
                existing.add(rec["k"])
                added += 1
        return added, skipped_existing, skipped_invalid

    def close(self) -> None:
        """Release resources; a no-op for the directory-backed store.

        Exists so store consumers (:func:`store_scope` above all) can
        close whatever :func:`resolve_store` handed them without
        type-switching — the networked client's override disconnects
        and drains its offline spool.
        """


# ---------------------------------------------------------------------------
# Activation: scope + environment
# ---------------------------------------------------------------------------

_STORE: contextvars.ContextVar[CellStore | None] = contextvars.ContextVar(
    "repro_cell_store", default=None
)

#: Stores resolved from ``REPRO_STORE``, one per spec, so hit/miss
#: counters survive across the many ``run_cells`` calls of one process.
_ENV_STORES: dict[str, CellStore] = {}


def resolve_store(spec: "CellStore | str | pathlib.Path") -> CellStore:
    """The store named by ``spec`` — a directory root or ``tcp://HOST:PORT``.

    A ``tcp://`` spec resolves to a
    :class:`repro.harness.netstore.RemoteCellStore` talking to a
    ``repro store serve`` server (imported lazily — netstore depends on
    this module); anything else is a local directory-backed
    :class:`CellStore`.  Instances pass through unchanged.
    """
    if isinstance(spec, CellStore):
        return spec
    text = str(spec)
    if text.startswith("tcp://"):
        from repro.harness.netstore import RemoteCellStore

        return RemoteCellStore(text)
    return CellStore(spec)


def active_store() -> CellStore | None:
    """The cell store in force, if any.

    An explicit :func:`store_scope` wins; otherwise ``REPRO_STORE``
    names a store root or a ``tcp://HOST:PORT`` server (resolved once
    per spec per process).  Store consultation happens only in the
    dispatching process — pool workers never touch the store, so this
    is free of cross-process races beyond the append-safe file protocol
    (or the server's request serialization) itself.
    """
    store = _STORE.get()
    if store is not None:
        return store
    spec = os.environ.get("REPRO_STORE", "").strip()
    if not spec:
        return None
    store = _ENV_STORES.get(spec)
    if store is None:
        store = _ENV_STORES[spec] = resolve_store(spec)
    return store


@contextlib.contextmanager
def store_scope(store: "CellStore | str | pathlib.Path") -> _t.Iterator[CellStore]:
    """Make ``store`` (an instance, root path, or ``tcp://`` spec) active.

    A store *resolved here* (passed as a spec rather than an instance)
    is closed on exit — for a remote store that disconnects and drains
    any offline spool; instances passed in stay open, their lifecycle
    belongs to the caller.
    """
    owned = not isinstance(store, CellStore)
    if owned:
        store = resolve_store(store)
    token = _STORE.set(store)
    try:
        yield store
    finally:
        _STORE.reset(token)
        if owned:
            store.close()
