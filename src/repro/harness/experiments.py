"""The per-figure/table experiment registry.

Each experiment regenerates one artefact of the paper's evaluation and
returns an :class:`ExperimentOutput` holding the structured data, a text
rendering (the "same rows/series the paper reports"), and a list of
paper-vs-measured comparison points.

``quick=True`` trims sweep sizes for test/bench budgets without changing
what is measured; ``quick=False`` runs the full grids.

Sweep-style experiments decompose into independent simulation *cells*
(see :mod:`repro.harness.parallel`) keyed by config point; ``jobs > 1``
fans the cells over a process pool with results merged in cell order, so
parallel and serial runs are byte-identical.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.metum import MetumBenchmark
from repro.analysis.stats import SectionStats, render_stats_table
from repro.errors import ConfigError
from repro.harness import paper
from repro.harness.figures import (
    percent_delta,
    render_series_table,
    render_speedup_plot,
)
from repro.harness.parallel import Cell, run_cells
from repro.ipm.report import fig7_breakdown, render_fig7_ascii
from repro.platforms import DCC, EC2, VAYU, platform_table


@dataclasses.dataclass(slots=True)
class ExperimentOutput:
    """The result of regenerating one paper artefact."""

    experiment_id: str
    title: str
    data: dict[str, _t.Any]
    text: str
    #: (metric, measured, paper) triples for EXPERIMENTS.md.
    comparisons: list[tuple[str, float, float]] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ===", self.text]
        if self.comparisons:
            lines.append("paper-vs-measured:")
            for metric, measured, ref in self.comparisons:
                lines.append(
                    f"  {metric:<42} measured {measured:>10.2f}  paper "
                    f"{ref:>10.2f}  ({percent_delta(measured, ref)})"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Individual experiments
# ---------------------------------------------------------------------------

_PLATFORMS = (DCC, EC2, VAYU)


def exp_tab1(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Table I: the experimental platforms."""
    text = platform_table()
    return ExperimentOutput("tab1", "Experimental platforms", {"table": text}, text)


def _osu_sizes(quick: bool) -> list[int]:
    if quick:
        return [1, 64, 1024, 16384, 262144, 1 << 22]
    return [2**k for k in range(0, 23)]


def exp_fig1(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Fig 1: OSU bandwidth on the three platforms."""
    sizes = _osu_sizes(quick)
    iters = 4 if quick else 20
    cells = [
        Cell((spec.name,), "osu_curve",
             ("bandwidth", spec.name, tuple(sizes), iters, 1, seed))
        for spec in _PLATFORMS
    ]
    curves = run_cells(cells, jobs=jobs)
    series = {spec.name: curves[(spec.name,)] for spec in _PLATFORMS}
    rows = {n: [series[s.name][n] / 1e6 for s in _PLATFORMS] for n in sizes}
    text = render_series_table(
        "OSU bandwidth (MB/s)", [s.name for s in _PLATFORMS], rows, "{:.1f}",
        row_label="bytes",
    )
    peak = {name: max(curve.values()) for name, curve in series.items()}
    # The paper's "more than one order of magnitude" margin is a
    # per-size statement; it is widest in the latency-bound small/mid
    # range, so compare at 1 KiB.
    margin_size = min(sizes, key=lambda n: abs(n - 1024))
    comparisons = [
        ("EC2 peak bandwidth (B/s)", peak["EC2"], paper.FIG1_LANDMARKS["ec2_peak_bw"]),
        ("DCC peak bandwidth (B/s)", peak["DCC"], paper.FIG1_LANDMARKS["dcc_peak_bw"]),
        (
            "Vayu/EC2 bandwidth margin @1KiB (x)",
            series["Vayu"][margin_size] / series["EC2"][margin_size],
            paper.FIG1_LANDMARKS["vayu_margin_over_ec2"],
        ),
    ]
    return ExperimentOutput("fig1", "OSU MPI bandwidth", {"series": series}, text, comparisons)


def exp_fig2(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Fig 2: OSU latency on the three platforms."""
    sizes = _osu_sizes(quick)
    iters = 20 if quick else 100
    cells = [
        Cell((spec.name,), "osu_curve",
             ("latency", spec.name, tuple(sizes), iters, 2, seed))
        for spec in _PLATFORMS
    ]
    curves = run_cells(cells, jobs=jobs)
    series = {spec.name: curves[(spec.name,)] for spec in _PLATFORMS}
    rows = {n: [series[s.name][n] * 1e6 for s in _PLATFORMS] for n in sizes}
    text = render_series_table(
        "OSU latency (us)", [s.name for s in _PLATFORMS], rows, "{:.2f}",
        row_label="bytes",
    )
    # Fluctuation check: coefficient of variation of DCC's sub-eager
    # latencies after removing the size trend (vs Vayu's).
    import numpy as np

    def _smallmsg_cv(curve: dict[int, float]) -> float:
        vals = np.array([v for n, v in sorted(curve.items()) if n <= 65536])
        base = vals.min()
        return float((vals - base).std() / vals.mean())

    comparisons = [
        (
            "DCC/Vayu small-message latency ratio",
            series["DCC"][1] / series["Vayu"][1],
            50.0,  # order-of-magnitude from Fig 2's log axis
        ),
    ]
    return ExperimentOutput(
        "fig2", "OSU MPI latency",
        {"series": series, "dcc_cv": _smallmsg_cv(series["DCC"])},
        text, comparisons,
    )


def exp_fig3(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Fig 3: single-process NPB times, normalised to DCC."""
    benches = ("bt", "ep", "cg", "ft", "is", "lu", "mg", "sp")
    cells = [
        Cell((name, spec.name), "npb_point",
             (name, spec.name, 1, seed, "B", sim_iters))
        for name in benches
        for spec in _PLATFORMS
    ]
    points = run_cells(cells, jobs=jobs)
    data: dict[str, dict[str, float]] = {}
    comparisons = []
    for name in benches:
        times = {
            spec.name: points[(name, spec.name)]["projected_time"]
            for spec in _PLATFORMS
        }
        data[name] = times
        comparisons.append(
            (
                f"{name.upper()}.B.1 DCC wall (s)",
                times["DCC"],
                paper.FIG3_DCC_SERIAL_SECONDS[name],
            )
        )
    rows = {
        name.upper(): [
            data[name]["DCC"] / data[name]["DCC"],
            data[name]["EC2"] / data[name]["DCC"],
            data[name]["Vayu"] / data[name]["DCC"],
        ]
        for name in benches
    }
    text = render_series_table(
        "NPB class B serial time normalised to DCC",
        ["DCC", "EC2", "Vayu"], rows, "{:.2f}", row_label="bench",
    )
    return ExperimentOutput("fig3", "NPB serial times", {"times": data}, text, comparisons)


def _npb_counts(name: str, quick: bool) -> list[int]:
    if name in ("bt", "sp"):
        return [1, 4, 16, 64] if quick else [1, 4, 9, 16, 25, 36, 64]
    return [1, 8, 64] if quick else [1, 2, 4, 8, 16, 32, 64]


def exp_fig4(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Fig 4: NPB speedup curves on the three platforms."""
    benches = ("cg", "ep", "is") if quick else (
        "bt", "ep", "cg", "ft", "is", "lu", "mg", "sp"
    )
    cells = [
        Cell((name, spec.name, p), "npb_point",
             (name, spec.name, p, seed, "B", sim_iters))
        for name in benches
        for spec in _PLATFORMS
        for p in _npb_counts(name, quick)
    ]
    points = run_cells(cells, jobs=jobs)
    plots = []
    data: dict[str, dict[str, dict[int, float]]] = {}
    for name in benches:
        counts = _npb_counts(name, quick)
        series: dict[str, dict[int, float]] = {}
        for spec in _PLATFORMS:
            times = {
                p: points[(name, spec.name, p)]["projected_time"] for p in counts
            }
            base = times[counts[0]]
            series[spec.name] = {p: base / t for p, t in times.items()}
        data[name] = series
        plots.append(render_speedup_plot(f"{name.upper()} speedup (class B)", series))
    return ExperimentOutput(
        "fig4", "NPB speedup scalability", {"series": data}, "\n\n".join(plots)
    )


def exp_tab2(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Table II: IPM percentage communication for CG, FT and IS."""
    counts = [2, 8, 64] if quick else [2, 4, 8, 16, 32, 64]
    cells = [
        Cell((name, spec.name, p), "npb_point",
             (name, spec.name, p, seed, "B", sim_iters))
        for name in ("cg", "ft", "is")
        for p in counts
        for spec in _PLATFORMS
    ]
    points = run_cells(cells, jobs=jobs)
    blocks = []
    comparisons = []
    data: dict[str, dict[int, tuple[float, float, float]]] = {}
    for name in ("cg", "ft", "is"):
        rows = {}
        data[name] = {}
        for p in counts:
            vals = [
                points[(name, spec.name, p)]["comm_percent"] for spec in _PLATFORMS
            ]
            data[name][p] = tuple(vals)  # type: ignore[assignment]
            rows[p] = vals
            ref = paper.TABLE2_COMM_PERCENT[name][p]
            for i, spec in enumerate(_PLATFORMS):
                comparisons.append(
                    (f"{name.upper()} %comm {spec.name} np={p}", vals[i], ref[i])
                )
        blocks.append(
            render_series_table(
                f"{name.upper()} %comm", [s.name for s in _PLATFORMS], rows,
                "{:.1f}", row_label="np",
            )
        )
    return ExperimentOutput(
        "tab2", "IPM communication percentages", {"comm": data},
        "\n\n".join(blocks), comparisons,
    )


def exp_fig5(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Fig 5: Chaste total and KSp speedups on Vayu and DCC."""
    counts = [8, 32, 64] if quick else [8, 16, 32, 48, 64]
    sim_steps = 2 if quick else 3
    cells = [
        Cell((spec.name, p), "chaste_point", (spec.name, p, seed, sim_steps))
        for spec in (VAYU, DCC)
        for p in counts
    ]
    points = run_cells(cells, jobs=jobs)
    series: dict[str, dict[int, float]] = {}
    t8: dict[str, float] = {}
    for spec in (VAYU, DCC):
        totals = {p: points[(spec.name, p)]["total_time"] for p in counts}
        ksps = {p: points[(spec.name, p)]["ksp_time"] for p in counts}
        t8[f"{spec.name.lower()}_total"] = totals[8]
        t8[f"{spec.name.lower()}_ksp"] = ksps[8]
        series[f"{spec.name} total"] = {p: totals[8] / t for p, t in totals.items()}
        series[f"{spec.name} KSp"] = {p: ksps[8] / t for p, t in ksps.items()}
    text = render_speedup_plot("Chaste speedup over 8 cores", series)
    comparisons = [
        ("Chaste Vayu t8 (s)", t8["vayu_total"], paper.FIG5_T8_ADOPTED["vayu_total"]),
        ("Chaste DCC t8 (s)", t8["dcc_total"], paper.FIG5_T8_ADOPTED["dcc_total"]),
        ("Chaste Vayu KSp t8 (s)", t8["vayu_ksp"], paper.FIG5_T8_ADOPTED["vayu_ksp"]),
        ("Chaste DCC KSp t8 (s)", t8["dcc_ksp"], paper.FIG5_T8_ADOPTED["dcc_ksp"]),
    ]
    return ExperimentOutput(
        "fig5", "Chaste scaling (Vayu vs DCC)", {"series": series, "t8": t8},
        text, comparisons,
    )


def _um_variants() -> list[tuple[str, _t.Any, int | None]]:
    return [("Vayu", VAYU, None), ("DCC", DCC, None), ("EC2", EC2, None),
            ("EC2-4", EC2, 4)]


def exp_fig6(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Fig 6: UM 'warmed' speedups on Vayu, DCC, EC2 and EC2-4."""
    counts = [8, 32, 64] if quick else [8, 16, 32, 48, 64]
    sim_steps = 2 if quick else 3

    def _nodes(label: str, nodes: int | None, p: int) -> int | None:
        if label == "EC2" and nodes is None:
            return max(2, -(-p // 16))
        return nodes

    cells = [
        Cell((label, p), "metum_point",
             (spec.name, p, _nodes(label, nodes, p), seed, sim_steps))
        for label, spec, nodes in _um_variants()
        for p in counts
    ]
    points = run_cells(cells, jobs=jobs)
    series: dict[str, dict[int, float]] = {}
    t8: dict[str, float] = {}
    for label, spec, nodes in _um_variants():
        times = {p: points[(label, p)]["warmed_time"] for p in counts}
        t8[label] = times[8]
        series[label] = {p: times[8] / t for p, t in times.items()}
    text = render_speedup_plot("UM warmed-time speedup over 8 cores", series)
    comparisons = [
        (f"UM {label} t8 (s)", t8[label], paper.FIG6_T8[label])
        for label, _s, _n in _um_variants()
    ]
    return ExperimentOutput(
        "fig6", "MetUM scaling (all platforms)", {"series": series, "t8": t8},
        text, comparisons,
    )


def exp_tab3(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Table III: UM statistics at 32 cores."""
    sim_steps = 2 if quick else 3

    def _nn(label: str, nodes: int | None) -> int | None:
        if label == "EC2" and nodes is None:
            return 2
        return nodes

    cells = [
        Cell((label,), "metum_stats",
             (spec.name, 32, _nn(label, nodes), seed, sim_steps))
        for label, spec, nodes in _um_variants()
    ]
    points = run_cells(cells, jobs=jobs)
    ref = points[("Vayu",)]
    ref_comp, ref_comm = ref["comp"], ref["comm"]
    rows = []
    comparisons = []
    for label, _spec, _nodes in _um_variants():
        r = points[(label,)]
        stats = SectionStats(
            platform=label,
            time=r["time"],
            rcomp=r["comp"] / ref_comp,
            rcomm=r["comm"] / ref_comm if ref_comm > 0 else 0.0,
            comm_percent=r["comm_percent"],
            imbalance_percent=r["imbalance_percent"],
            io_time=r["io"],
        )
        rows.append(stats)
        p = paper.TABLE3_UM_32[label]
        comparisons.extend([
            (f"UM@32 {label} time (s)", stats.time, p["time"]),
            (f"UM@32 {label} rcomp", stats.rcomp, p["rcomp"]),
            (f"UM@32 {label} %comm", stats.comm_percent, p["comm"]),
            (f"UM@32 {label} I/O (s)", stats.io_time, p["io"]),
        ])
    text = render_stats_table(rows)
    return ExperimentOutput(
        "tab3", "UM 32-core statistics", {"rows": rows}, text, comparisons
    )


def exp_fig7(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Fig 7: per-process ATM_STEP breakdown on Vayu and DCC."""
    bench = MetumBenchmark(sim_steps=2 if quick else 3)
    sections = []
    data = {}
    for spec in (VAYU, DCC):
        r = bench.run(spec, 32, seed=seed)
        parts = fig7_breakdown(r.monitor, "ATM_STEP")
        data[spec.name] = parts
        sections.append(f"--- {spec.name} ---")
        sections.append(render_fig7_ascii(r.monitor, "ATM_STEP", width=40))
    dcc = data["DCC"]
    vayu = data["Vayu"]
    comm_dcc = dcc["comm_user"] + dcc["comm_system"]
    comm_vayu = vayu["comm_user"] + vayu["comm_system"]
    # Note: the system-time *attribution* share is a model constant
    # (hypervisor.system_time_share), so comparing it to the paper's
    # "primarily system time" would be circular; only the emergent
    # comm-proportion ratio is a genuine measurement.
    comparisons = [
        (
            "DCC/Vayu comm proportion ratio",
            float(
                (comm_dcc.sum() / (comm_dcc.sum() + dcc["compute"].sum()))
                / (comm_vayu.sum() / (comm_vayu.sum() + vayu["compute"].sum()))
            ),
            42.0 / 13.0,  # Table III proportions
        ),
    ]
    return ExperimentOutput(
        "fig7", "UM per-process time breakdown", {"breakdown": data},
        "\n".join(sections), comparisons,
    )


def exp_arrivef(
    quick: bool = True, seed: int = 0, jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """ARRIVE-F throughput experiment (section II)."""
    seeds = range(4) if quick else range(12)
    cells = [Cell((s,), "arrivef_point", (seed + s,)) for s in seeds]
    points = run_cells(cells, jobs=jobs)
    runs = [points[(s,)] for s in seeds]
    best = max(r["wait_improvement_pct"] for r in runs)
    mean_impr = sum(r["wait_improvement_pct"] for r in runs) / len(runs)
    text = (
        f"ARRIVE-F relocation on a DCC+Vayu farm over {len(runs)} workloads:\n"
        f"  mean wait improvement: {mean_impr:.1f}%\n"
        f"  best wait improvement: {best:.1f}% (paper: up to "
        f"{paper.ARRIVEF_MAX_WAIT_IMPROVEMENT_PCT:.0f}%)"
    )
    comparisons = [
        ("max wait-time improvement (%)", best, paper.ARRIVEF_MAX_WAIT_IMPROVEMENT_PCT)
    ]
    return ExperimentOutput(
        "arrivef", "ARRIVE-F job-wait improvement", {"runs": runs}, text, comparisons
    )


#: The registry, in the paper's presentation order.
EXPERIMENTS: dict[str, _t.Callable[..., ExperimentOutput]] = {
    "tab1": exp_tab1,
    "fig1": exp_fig1,
    "fig2": exp_fig2,
    "fig3": exp_fig3,
    "fig4": exp_fig4,
    "tab2": exp_tab2,
    "fig5": exp_fig5,
    "fig6": exp_fig6,
    "tab3": exp_tab3,
    "fig7": exp_fig7,
    "arrivef": exp_arrivef,
}


def run_experiment(
    experiment_id: str,
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    sim_iters: int | None = None,
) -> ExperimentOutput:
    """Run one registered experiment by id.

    ``jobs > 1`` fans the experiment's independent sweep cells over a
    process pool; results are merged deterministically, so the output is
    byte-identical to a ``jobs=1`` run at the same seed.  ``sim_iters``
    overrides the NPB steady-loop iteration count (non-NPB experiments
    ignore it).
    """
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(quick=quick, seed=seed, jobs=jobs, sim_iters=sim_iters)
