"""Batch experiment runner with result export.

Drives the experiment registry for reports and for regenerating
EXPERIMENTS.md: runs a set of experiments, collects renderings and
comparison triples, and exports machine-readable results (JSON/CSV) next
to the human-readable text.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib
import typing as _t

from repro.errors import CellExecutionError, ConfigError
from repro.harness.experiments import EXPERIMENTS, ExperimentOutput, run_experiment

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.harness.supervisor import SupervisorPolicy


@dataclasses.dataclass(slots=True)
class BatchResult:
    """All outputs of one harness batch."""

    outputs: dict[str, ExperimentOutput]
    #: One-line MPI-sanitizer summary (None when the batch ran unsanitized).
    sanitize_summary: str | None = None
    #: Canonical fault-schedule spec the batch ran under (None: fault-free).
    faults_spec: str | None = None
    #: One-line memo/replay/fastcollect banner (None unless ``replay=True``
    #: or ``fastcollect=True`` was asked).
    perf_summary: str | None = None
    #: One-line ``harness: ...`` supervision banner (None unsupervised).
    #: Deliberately *not* part of :meth:`render` — its retry/journal-hit
    #: tallies vary between an interrupted-and-resumed run and a clean
    #: one, and the rendered report must stay byte-identical across
    #: both.  The CLI prints it to stderr.
    harness_summary: str | None = None
    #: One-line ``store: ...`` cell-store banner (None when the batch ran
    #: without a store).  Also stderr-only and absent from
    #: :meth:`render`: its served/executed tallies differ between a
    #: cold-store and a warm-store run, and both must render
    #: byte-identical reports.
    store_summary: str | None = None
    #: One-line ``executor: ...`` dispatch-backend banner (None unless the
    #: batch ran with an explicit ``backend=``).  Stderr-only like the
    #: harness and store banners: dispatch tallies are scheduling detail,
    #: and every backend must render byte-identical reports.
    executor_summary: str | None = None
    #: Experiments whose sweep cells ultimately failed, by experiment id.
    #: Their outputs render as explicit ``FAILED(<cause>)`` entries and
    #: the CLI exits 3 ("partial") when this is non-empty.
    failures: dict[str, CellExecutionError] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        body = "\n\n".join(o.render() for o in self.outputs.values())
        if self.faults_spec is not None:
            body += f"\n\n[faults: {self.faults_spec}]"
        if self.sanitize_summary is not None:
            body += f"\n\n[{self.sanitize_summary}]"
        if self.perf_summary is not None:
            body += f"\n\n[{self.perf_summary}]"
        return body

    def comparison_rows(self) -> list[dict[str, _t.Any]]:
        """Flat (experiment, metric, measured, paper, delta%) rows."""
        rows = []
        for eid, out in self.outputs.items():
            for metric, measured, ref in out.comparisons:
                delta = 100.0 * (measured - ref) / ref if ref else float("nan")
                rows.append({
                    "experiment": eid,
                    "metric": metric,
                    "measured": measured,
                    "paper": ref,
                    "delta_pct": delta,
                })
        return rows

    # -- export ----------------------------------------------------------
    def write_json(self, path: str | pathlib.Path) -> None:
        """Comparison rows as JSON."""
        pathlib.Path(path).write_text(
            json.dumps(self.comparison_rows(), indent=2) + "\n"
        )

    def write_csv(self, path: str | pathlib.Path) -> None:
        """Comparison rows as CSV."""
        rows = self.comparison_rows()
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(
                fh, fieldnames=["experiment", "metric", "measured", "paper", "delta_pct"]
            )
            writer.writeheader()
            writer.writerows(rows)

    def write_text(self, path: str | pathlib.Path) -> None:
        """The full human-readable report."""
        pathlib.Path(path).write_text(self.render() + "\n")


def _failed_output(eid: str, err: CellExecutionError) -> ExperimentOutput:
    """Render an experiment whose cells ultimately failed as an explicit
    ``FAILED(<cause>)`` entry instead of dying mid-batch."""
    first_line = str(err).splitlines()[0]
    return ExperimentOutput(
        experiment_id=eid,
        title=f"FAILED({err.cause})",
        data={"error": str(err), "cell_key": err.key, "attempts": err.attempts},
        text=f"FAILED({err.cause}): {first_line}",
    )


def run_batch(
    experiment_ids: _t.Sequence[str] | None = None,
    *,
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    sanitize: bool = False,
    faults: str | None = None,
    replay: bool | None = None,
    fastcollect: bool | None = None,
    sim_iters: int | None = None,
    supervisor: "SupervisorPolicy | None" = None,
    store: "str | pathlib.Path | None" = None,
    backend: str | None = None,
    progress: _t.Callable[[str], None] | None = None,
) -> BatchResult:
    """Run ``experiment_ids`` (default: every registered experiment).

    ``jobs > 1`` parallelises each experiment's independent sweep cells
    over a process pool; results are merged by cell key, so the batch
    renders byte-identically to a serial run at the same seed.

    ``sanitize=True`` runs every simulated world in the batch under the
    MPI sanitizer (:mod:`repro.analysis.sanitizer`): a correctness
    violation aborts the batch with a
    :class:`~repro.errors.SanitizerError` (raised in whichever process
    the cell ran), and a clean batch carries a one-line summary of what
    was checked.  Sanitizing never changes results — the checks observe
    the simulation without scheduling events.

    ``faults`` installs a fault schedule (a spec string, see
    :mod:`repro.faults.schedule`) for every simulated world in the
    batch, exported through ``REPRO_FAULTS`` so pool workers inherit the
    very same timeline.

    ``replay`` forces steady-state iteration replay on (``True``, which
    also adds a ``[perf: ...]`` banner) or off (``False``) for every
    world, exported through ``REPRO_REPLAY``; the default ``None``
    leaves the environment's setting in charge and prints no banner.
    Replay is a pure fast-forward optimization — worlds it cannot prove
    safe fall back to full simulation, so results never change.

    ``fastcollect`` does the same for the analytic collective
    fast-forward (:mod:`repro.perf.fastcollect`), exported through
    ``REPRO_FASTCOLLECT``: ``True`` adds its counters to the
    ``[perf: ...]`` banner, worlds it cannot prove safe fall back to the
    per-operation collective path with a recorded reason, and results
    never change.

    ``sim_iters`` overrides the NPB steady-loop iteration count for
    every NPB cell in the batch (the knob that makes replay worthwhile:
    large counts amortise to the cost of the first few iterations).

    ``supervisor`` runs every experiment's sweep cells under the
    supervised harness (:mod:`repro.harness.supervisor`): watchdog
    timeouts, bounded retries, degradation of broken-pool cells to
    inline execution, and journal/resume per the policy.  Cell keys are
    namespaced by experiment id in the journal.  A supervised clean run
    renders byte-identically to an unsupervised one; an experiment whose
    cells ultimately fail becomes an explicit ``FAILED(<cause>)`` entry
    (collected in :attr:`BatchResult.failures`) while the rest of the
    batch keeps running, and the one-line banner lands in
    :attr:`BatchResult.harness_summary`.

    ``store`` activates the content-addressed global cell store
    (:mod:`repro.harness.cellstore`) rooted at that path for the whole
    batch: every sweep cell is first looked up by content address —
    worker, encoded args, current code fingerprint — and served without
    executing when present; fresh results are published back.  A
    warm-store batch executes zero cell workers and still renders
    byte-identically to a cold one; the ``store: ...`` banner lands in
    :attr:`BatchResult.store_summary` (stderr-only, like the harness
    banner).  Composes with supervision and the journal: resume hits
    win over store hits, and both are never served across a code edit.
    When several executors share one store, sweep dispatch is
    store-aware: each executor leases the cells it will compute and
    awaits cells a peer holds, so no cell is ever computed twice.

    ``backend`` schedules every sweep cell through an explicit
    :class:`~repro.harness.executor.CellExecutor` backend, given as a
    ``--backend`` spec string (``serial`` | ``pool[:chunk=K]`` |
    ``chunked`` | ``tcp:HOST:PORT[,spawn=N]`` | ``transient:<spec>``,
    see :func:`~repro.harness.executor.make_executor` and
    ``docs/distributed.md``).  The backend is transport only — results
    always merge by cell key in cell order — so every backend renders a
    byte-identical report; its one-line banner lands in
    :attr:`BatchResult.executor_summary` (stderr-only).
    """
    ids = list(experiment_ids) if experiment_ids is not None else list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ConfigError(f"unknown experiments: {unknown}")
    if sim_iters is not None and sim_iters < 1:
        raise ConfigError(f"sim_iters must be >= 1: {sim_iters}")

    from repro.harness.supervisor import cell_namespace

    cell_failures: dict[str, CellExecutionError] = {}

    def _run_all() -> dict[str, ExperimentOutput]:
        outputs: dict[str, ExperimentOutput] = {}
        for eid in ids:
            if progress is not None:
                progress(eid)
            with cell_namespace(eid):
                try:
                    outputs[eid] = run_experiment(
                        eid, quick=quick, seed=seed, jobs=jobs, sim_iters=sim_iters
                    )
                except CellExecutionError as err:
                    cell_failures[eid] = err
                    outputs[eid] = _failed_output(eid, err)
        return outputs

    def _run_sanitized() -> tuple[dict[str, ExperimentOutput], str]:
        from repro.analysis.sanitizer import sanitize_scope

        with sanitize_scope() as reports:
            outputs = _run_all()
            nwarn = sum(len(r.warnings()) for r in reports)
            summary = (
                f"sanitize: clean — {len(reports)} world(s), "
                f"{sum(r.sends_checked for r in reports)} send(s), "
                f"{sum(r.collectives_checked for r in reports)} collective "
                f"op(s) checked, {nwarn} warning(s), 0 errors"
            )
            if nwarn:
                details = [
                    d.render() for r in reports for d in r.warnings()
                ]
                summary += "\n" + "\n".join(details)
        return outputs, summary

    def _run_batch() -> BatchResult:
        faults_spec: str | None = None
        if faults:
            from repro.faults.schedule import faults_scope

            with faults_scope(faults) as schedule:
                faults_spec = schedule.spec()
                if sanitize:
                    outputs, summary = _run_sanitized()
                    return BatchResult(outputs, sanitize_summary=summary,
                                       faults_spec=faults_spec)
                return BatchResult(_run_all(), faults_spec=faults_spec)

        if not sanitize:
            return BatchResult(_run_all())
        outputs, summary = _run_sanitized()
        return BatchResult(outputs, sanitize_summary=summary)

    def _run_perf() -> BatchResult:
        if replay is None and fastcollect is None:
            return _run_batch()
        import contextlib as _ctx

        from repro.perf.fastcollect import fastcollect_scope
        from repro.perf.replay import perf_banner, replay_scope

        replay_reports = None
        fc_reports = None
        with _ctx.ExitStack() as stack:
            if replay is not None:
                replay_reports = stack.enter_context(replay_scope(replay))
            if fastcollect is not None:
                fc_reports = stack.enter_context(fastcollect_scope(fastcollect))
            result = _run_batch()
        if replay or fastcollect:
            result.perf_summary = perf_banner(
                replay_reports if replay else None,
                fastcollect=fc_reports if fastcollect else None,
            )
        return result

    def _run_supervised_perf() -> BatchResult:
        if supervisor is None:
            return _run_perf()
        from repro.harness.supervisor import supervision_scope

        with supervision_scope(supervisor) as sup:
            result = _run_perf()
        result.harness_summary = sup.banner()
        return result

    def _run_stored() -> BatchResult:
        if store is None:
            return _run_supervised_perf()
        from repro.harness.cellstore import store_scope

        with store_scope(store) as cs:
            result = _run_supervised_perf()
        result.store_summary = cs.banner()
        return result

    if backend is None:
        result = _run_stored()
    else:
        from repro.harness.executor import executor_scope, make_executor

        with executor_scope(make_executor(backend, jobs)) as ex:
            result = _run_stored()
            result.executor_summary = ex.banner()
    result.failures = dict(cell_failures)
    return result
