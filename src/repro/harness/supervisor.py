"""Supervised, resumable execution of sweep cells.

Wraps the parallel executor (:func:`repro.harness.parallel.run_cells`)
with the failure-isolation machinery a multi-hour measurement campaign
needs:

* **watchdog timeout** — a cell whose pool worker stops making progress
  past :attr:`SupervisorPolicy.timeout` seconds is declared hung; the
  pool is torn down (hung processes killed) and the cell is retried in a
  fresh pool, while cells that were merely queued behind it are re-run
  without being charged an attempt;
* **bounded retries** — each cell gets at most ``retries`` additional
  attempts, with a deterministic per-cell record of every retry and its
  classified cause (the record never touches the result payload, so a
  retried run still renders byte-identically);
* **graceful degradation** — a ``BrokenProcessPool`` (a worker process
  died) demotes just the affected cells to inline serial re-execution
  instead of aborting the sweep;
* **crash-safe journal/resume** — each completed cell is appended to a
  JSONL journal (:mod:`repro.harness.journal`); resuming from a journal
  skips cells whose key, payload hash and (when known) static code
  fingerprint match, merging journaled results by key so an
  interrupted-and-resumed sweep is byte-identical to an uninterrupted
  one — while an entry recorded by *different code* is re-simulated;
* **global result store** — under an active cell store
  (:mod:`repro.harness.cellstore`, via ``--store``/``REPRO_STORE``)
  cells are first served by content address (worker + encoded args +
  code fingerprint) and fresh results are published back, sharing
  completed work across runs, users and hosts with the same never-stale
  discipline as the journal.

Cells that exhaust their attempts surface as structured
:class:`~repro.errors.CellExecutionError` entries on the returned
:class:`SweepReport` rather than stdlib tracebacks.  Supervising a clean
run never changes its results: cells execute through the very same
worker functions and merge by key in cell order.

Supervision engages three ways: explicitly via
:func:`run_cells_supervised`, batch-wide via :func:`supervision_scope`
(what ``repro run --supervise/--journal/--resume`` uses, with cell keys
namespaced per experiment), or by default via ``REPRO_SUPERVISE=1`` in
the environment.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import os
import pathlib
import traceback
import typing as _t
from concurrent.futures import FIRST_COMPLETED, Future, wait

from repro.errors import CellExecutionError, ConfigError, ReproError
from repro.harness.executor import (
    WORKER_LOSS_ERRORS,
    CellExecutor,
    LocalPoolExecutor,
    active_executor,
)
from repro.harness.journal import (
    RunJournal,
    hash_matches,
    load_journal,
    payload_hash,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.harness.parallel import Cell


# ---------------------------------------------------------------------------
# Policy and accounting
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class SupervisorPolicy:
    """Knobs for supervised cell execution.

    ``timeout``
        Watchdog window in seconds: if *no* cell completes for this long
        while pool futures are outstanding, the slowest running cells
        are declared hung.  Needs a process pool (``jobs >= 2``) — an
        inline cell cannot be interrupted.  ``None`` disables the
        watchdog.
    ``retries``
        Additional attempts per cell after the first (default 1).
        Exceptions derived from :class:`~repro.errors.ReproError` are
        never retried — a deterministic simulation error recurs
        identically — and :class:`~repro.errors.ConfigError` stays
        fatal.
    ``degrade``
        On pool breakage, re-execute the affected cells inline serially
        (default) instead of charging them attempts in fresh pools.
    ``journal`` / ``resume``
        Paths for the append-only run journal and for resuming from a
        previous one (may be the same file: resumed runs keep
        journaling).
    """

    timeout: float | None = None
    retries: int = 1
    degrade: bool = True
    journal: str | pathlib.Path | None = None
    resume: str | pathlib.Path | None = None


def policy_from_env() -> SupervisorPolicy | None:
    """Default policy from ``REPRO_SUPERVISE`` (``0``/empty/unset: off)."""
    if os.environ.get("REPRO_SUPERVISE", "0").strip().lower() in ("", "0", "false"):
        return None
    return SupervisorPolicy()


@dataclasses.dataclass(slots=True)
class HarnessStats:
    """Cell tallies for one supervised call (or one whole batch)."""

    ok: int = 0
    journal_hits: int = 0
    store_hits: int = 0
    peer_hits: int = 0
    retried: int = 0
    degraded: int = 0
    failed: int = 0

    def merge(self, other: "HarnessStats") -> None:
        self.ok += other.ok
        self.journal_hits += other.journal_hits
        self.store_hits += other.store_hits
        self.peer_hits += other.peer_hits
        self.retried += other.retried
        self.degraded += other.degraded
        self.failed += other.failed

    def banner(self) -> str:
        """The one-line ``harness: ...`` batch banner."""
        text = f"harness: {self.ok + self.failed} cell(s): {self.ok} ok"
        served = []
        if self.journal_hits:
            served.append(f"{self.journal_hits} from journal")
        if self.store_hits:
            served.append(f"{self.store_hits} from store")
        if self.peer_hits:
            served.append(f"{self.peer_hits} from peer executor")
        if served:
            text += f" ({', '.join(served)})"
        text += (
            f", {self.retried} retried, {self.degraded} degraded, "
            f"{self.failed} failed"
        )
        return text


@dataclasses.dataclass(slots=True)
class SweepReport:
    """Outcome of one supervised :func:`run_cells_supervised` call.

    ``results`` holds successful cells and ``failures`` the cells that
    exhausted their attempts, both keyed and ordered by cell; ``retries``
    records the classified cause of every extra attempt per cell —
    seed-stable bookkeeping that never affects the result payloads.
    """

    results: dict[tuple, _t.Any]
    failures: dict[tuple, CellExecutionError]
    stats: HarnessStats
    retries: dict[tuple, tuple[str, ...]]

    def banner(self) -> str:
        return self.stats.banner()


# ---------------------------------------------------------------------------
# Supervision scope (batch-wide policy + journal + aggregated stats)
# ---------------------------------------------------------------------------

class SupervisionScope:
    """One supervised batch: shared policy, journal, resume index, stats.

    Created by :func:`supervision_scope`; every
    :func:`~repro.harness.parallel.run_cells` call inside the scope runs
    supervised, journals into the same file, and accumulates into
    :attr:`stats` (the source of the batch banner).  ``namespace``
    prefixes journal keys so identical cell keys in different
    experiments (e.g. fig1's and fig2's per-platform cells) never
    collide.
    """

    def __init__(self, policy: SupervisorPolicy) -> None:
        self.policy = policy
        self.journal = RunJournal(policy.journal) if policy.journal else None
        self.resume = load_journal(policy.resume) if policy.resume else None
        self.stats = HarnessStats()
        self.namespace = ""

    def banner(self) -> str:
        return self.stats.banner()

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()


_SCOPE: contextvars.ContextVar[SupervisionScope | None] = contextvars.ContextVar(
    "repro_supervision_scope", default=None
)


def active_scope() -> SupervisionScope | None:
    """The supervision scope currently in force, if any."""
    return _SCOPE.get()


@contextlib.contextmanager
def supervision_scope(
    policy: SupervisorPolicy,
) -> _t.Iterator[SupervisionScope]:
    """Run every ``run_cells`` call in the body supervised under ``policy``."""
    if _SCOPE.get() is not None:
        raise ConfigError("a supervision scope is already active")
    scope = SupervisionScope(policy)
    token = _SCOPE.set(scope)
    try:
        yield scope
    finally:
        _SCOPE.reset(token)
        scope.close()


@contextlib.contextmanager
def cell_namespace(name: str) -> _t.Iterator[None]:
    """Namespace journal keys for the body (no-op outside a scope)."""
    scope = _SCOPE.get()
    if scope is None:
        yield
        return
    prev = scope.namespace
    scope.namespace = name
    try:
        yield
    finally:
        scope.namespace = prev


def supervised_results(
    cells: _t.Sequence["Cell"], jobs: int, executor: CellExecutor | None = None
) -> dict[tuple, _t.Any] | None:
    """The ``run_cells`` supervision hook.

    Executes under the active scope, or under a ``REPRO_SUPERVISE``
    default policy; returns ``None`` when unsupervised so ``run_cells``
    falls through to its plain path.  ``executor`` (an explicit
    ``run_cells`` backend) is honoured under supervision too.  A cell
    that ultimately fails raises its :class:`CellExecutionError` here
    (first in cell order) — the batch runner catches it per experiment.
    """
    scope = _SCOPE.get()
    if scope is not None:
        report = run_cells_supervised(
            cells, jobs=jobs, scope=scope, executor=executor
        )
    else:
        policy = policy_from_env()
        if policy is None:
            return None
        report = run_cells_supervised(
            cells, jobs=jobs, policy=policy, executor=executor
        )
    if report.failures:
        raise next(iter(report.failures.values()))
    return report.results


# ---------------------------------------------------------------------------
# Supervised execution
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class _Task:
    """Mutable per-cell supervision state."""

    cell: "Cell"
    digest: str
    code: str | None = None  # static code fingerprint of the worker
    attempts: int = 0  # failed attempts so far
    causes: list[str] = dataclasses.field(default_factory=list)
    demoted: bool = False


def _code_fingerprint(worker: str, cache: dict[str, str | None]) -> str | None:
    """Static code fingerprint for ``worker``, memoized per call.

    ``None`` when the worker is not statically registered (e.g. defined
    in a test module) — the journal then carries no code identity for
    it, matching pre-v2 behaviour.
    """
    if worker not in cache:
        from repro.analysis.static import worker_fingerprint

        cache[worker] = worker_fingerprint(worker)
    return cache[worker]


def run_cells_supervised(
    cells: _t.Sequence["Cell"],
    *,
    jobs: int = 1,
    policy: SupervisorPolicy | None = None,
    scope: SupervisionScope | None = None,
    namespace: str | None = None,
    executor: CellExecutor | None = None,
) -> SweepReport:
    """Execute ``cells`` under supervision and return a :class:`SweepReport`.

    Pass either an open ``scope`` (shares its journal/resume/stats) or a
    ``policy`` (an ephemeral scope is opened and closed around the
    call).  ``namespace`` overrides the scope's journal-key namespace.
    ``executor`` picks the dispatch backend explicitly; otherwise the
    active :func:`~repro.harness.executor.executor_scope` backend is
    used, falling back to a local pool sized by ``jobs``.  Results merge
    by key in cell order, exactly like plain
    :func:`~repro.harness.parallel.run_cells`.
    """
    own: SupervisionScope | None = None
    if scope is None:
        own = scope = SupervisionScope(policy or SupervisorPolicy())
    try:
        return _run_supervised(cells, jobs, scope, namespace, executor)
    finally:
        if own is not None:
            own.close()


def _run_supervised(
    cells: _t.Sequence["Cell"],
    jobs: int,
    scope: SupervisionScope,
    namespace: str | None,
    executor: CellExecutor | None = None,
) -> SweepReport:
    from repro.harness.parallel import check_unique_keys, resolve_jobs

    cells = list(cells)
    check_unique_keys(cells)
    ns = scope.namespace if namespace is None else namespace
    stats = HarnessStats()
    results: dict[tuple, _t.Any] = {}
    failures: dict[tuple, CellExecutionError] = {}

    # Code fingerprints are only relevant when results are persisted or
    # reused; a plain supervised run skips the static analysis entirely.
    fingerprints: dict[str, str | None] = {}
    want_code = scope.journal is not None or scope.resume is not None

    store = _active_store()
    tasks: list[_Task] = []
    deferred: list["Cell"] = []
    remaining: list[_Task] = []
    for c in cells:
        digest = payload_hash(c.worker, c.args)
        code = _code_fingerprint(c.worker, fingerprints) if want_code else None
        if scope.resume is not None:
            entry = scope.resume.get((ns, c.key))
            if (
                entry is not None
                and hash_matches(entry.payload_hash, digest)
                and entry.worker == c.worker
                and (
                    entry.code_fingerprint is None
                    or code is None
                    or entry.code_fingerprint == code
                )
            ):
                results[c.key] = entry.result
                stats.journal_hits += 1
                continue
        remaining.append(_Task(c, digest, code))
    if store is not None and remaining:
        # One store-aware scheduling pass for the whole sweep (a single
        # batched round trip per chunk for a networked store, instead
        # of two per cell): served results land directly, won leases
        # become our tasks, and lost leases — a peer executor sharing
        # this store is computing that cell right now — defer to
        # await_peer after our own dispatch.
        plan = store.plan_cells([t.cell for t in remaining])
        deferred_keys = {c.key for c in plan.deferred}
        for t in remaining:
            if t.cell.key in plan.served:
                results[t.cell.key] = plan.served[t.cell.key]
                stats.store_hits += 1
            elif t.cell.key in deferred_keys:
                deferred.append(t.cell)
            else:
                tasks.append(t)
    else:
        tasks = remaining

    jobs_n = resolve_jobs(jobs)
    backend = executor if executor is not None else active_executor()
    pending = tasks
    inline: list[_Task] = []
    use_pool = (
        backend.parallel
        if backend is not None
        else (jobs_n > 1 and len(pending) > 1)
    )
    try:
        if use_pool and pending:
            owned = backend is None
            exec_ = (
                backend
                if backend is not None
                else LocalPoolExecutor(min(jobs_n, len(pending)))
            )
            try:
                while pending:
                    pending, demoted, disrupted = _pool_round(
                        pending, exec_, scope, ns, results, failures
                    )
                    inline.extend(demoted)
                    if disrupted:
                        # Hung or broken workers: recycle the backend so
                        # the next round (and the rest of the batch)
                        # dispatches onto healthy ones.
                        exec_ = exec_.recycle(kill=True)
            except BaseException:
                if owned:
                    exec_.shutdown(kill=True)
                raise
            else:
                if owned:
                    exec_.shutdown()
        else:
            inline = pending
        for task in inline:
            _run_inline(task, scope, ns, results, failures)
        for c in deferred:
            from repro.harness.cellstore import MISS

            value = store.await_peer(c.worker, c.args)
            if value is not MISS:
                results[c.key] = value
                stats.peer_hits += 1
                continue
            # The peer gave up (or died): the lease is ours now, run it.
            task = _Task(
                c,
                payload_hash(c.worker, c.args),
                _code_fingerprint(c.worker, fingerprints) if want_code else None,
            )
            tasks.append(task)
            _run_inline(task, scope, ns, results, failures)
    finally:
        if store is not None:
            # Leases for published cells are already gone; what remains
            # covers failed/aborted cells — free them so peers stop
            # waiting and compute those cells themselves.
            store.release_leases()

    for task in tasks:
        if task.demoted:
            stats.degraded += 1
        elif task.causes and (task.cell.key in results or task.attempts >= 2):
            stats.retried += 1
    stats.ok = len(results)
    stats.failed = len(failures)
    scope.stats.merge(stats)
    return SweepReport(
        results={c.key: results[c.key] for c in cells if c.key in results},
        failures={c.key: failures[c.key] for c in cells if c.key in failures},
        stats=stats,
        retries={t.cell.key: tuple(t.causes) for t in tasks if t.causes},
    )


def _active_store() -> "_t.Any | None":
    """The active cell store (late import keeps module load light)."""
    from repro.harness.cellstore import active_store

    return active_store()


def _record_success(
    scope: SupervisionScope,
    ns: str,
    task: _Task,
    value: _t.Any,
    results: dict[tuple, _t.Any],
) -> None:
    results[task.cell.key] = value
    if scope.journal is not None:
        scope.journal.record_cell(
            ns, task.cell.key, task.cell.worker, task.digest, value,
            code=task.code,
        )
    store = _active_store()
    if store is not None:
        store.publish(task.cell.worker, task.cell.args, value)


def _note_retry(
    scope: SupervisionScope, ns: str, task: _Task, cause: str
) -> None:
    task.attempts += 1
    task.causes.append(cause)
    if scope.journal is not None:
        scope.journal.record_event(
            ns, task.cell.key, "retry", cause=cause, attempt=task.attempts
        )


def _cell_error(
    task: _Task,
    cause: str,
    exc: BaseException | None,
    detail: str | None = None,
) -> CellExecutionError:
    if detail is None and exc is not None:
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).rstrip()
    return CellExecutionError(
        key=task.cell.key,
        worker=task.cell.worker,
        attempts=task.attempts,
        cause=cause,
        detail=detail or "",
    )


def _run_inline(
    task: _Task,
    scope: SupervisionScope,
    ns: str,
    results: dict[tuple, _t.Any],
    failures: dict[tuple, CellExecutionError],
) -> None:
    """Execute one cell in this process, honouring the retry budget.

    No watchdog applies inline — a cell running in the supervising
    process cannot be interrupted — which is exactly why degraded cells
    land here only after the pool path has given up on them.
    """
    from repro.harness.parallel import _execute

    policy = scope.policy
    while True:
        try:
            value = _execute(task.cell)
        except ConfigError:
            raise  # misconfiguration is fatal, never a per-cell failure
        except ReproError as exc:
            # Deterministic simulation error: a retry would recur
            # identically, so fail the cell on the spot.
            task.attempts += 1
            task.causes.append("worker-exception")
            failures[task.cell.key] = _cell_error(task, "worker-exception", exc)
            return
        except BaseException as exc:
            if task.attempts < policy.retries:
                _note_retry(scope, ns, task, "worker-exception")
                continue
            task.attempts += 1
            task.causes.append("worker-exception")
            failures[task.cell.key] = _cell_error(task, "worker-exception", exc)
            return
        else:
            _record_success(scope, ns, task, value, results)
            return


def _pool_round(
    tasks: list[_Task],
    executor: CellExecutor,
    scope: SupervisionScope,
    ns: str,
    results: dict[tuple, _t.Any],
    failures: dict[tuple, CellExecutionError],
) -> tuple[list[_Task], list[_Task], bool]:
    """One dispatch generation over ``tasks`` on ``executor``.

    Returns ``(retry, demoted, disrupted)``: cells to re-dispatch in the
    next round, cells demoted to inline serial execution, and whether
    the backend lost workers (hung or dead) and should be recycled
    before that next round.  Successes and exhausted failures are
    recorded directly.  Cells are submitted one future each — never
    chunked — because the watchdog needs per-cell completion granularity.
    """
    policy = scope.policy
    retry: list[_Task] = []
    demoted: list[_Task] = []
    fut_to_task: dict[Future, _Task] = {}
    broken = hung = False
    try:
        for task in tasks:
            fut_to_task[executor.submit(task.cell)] = task
    except WORKER_LOSS_ERRORS:
        broken = True
        submitted = set(id(t) for t in fut_to_task.values())
        retry.extend(t for t in tasks if id(t) not in submitted)
    not_done: set[Future] = set(fut_to_task)
    while not_done and not broken:
        done, not_done = wait(
            not_done, timeout=policy.timeout, return_when=FIRST_COMPLETED
        )
        if not done:
            hung = True
            break
        for fut in done:
            task = fut_to_task[fut]
            try:
                value = fut.result()
            except WORKER_LOSS_ERRORS:
                broken = True
                retry.append(task)
            except ConfigError:
                raise  # fatal; the caller tears the backend down
            except ReproError as exc:
                task.attempts += 1
                task.causes.append("worker-exception")
                failures[task.cell.key] = _cell_error(task, "worker-exception", exc)
            except BaseException as exc:
                if task.attempts < policy.retries:
                    _note_retry(scope, ns, task, "worker-exception")
                    retry.append(task)
                else:
                    task.attempts += 1
                    task.causes.append("worker-exception")
                    failures[task.cell.key] = _cell_error(
                        task, "worker-exception", exc
                    )
            else:
                _record_success(scope, ns, task, value, results)

    if hung:
        running = [f for f in not_done if f.running()]
        queued = [f for f in not_done if not f.running()]
        if not running:
            # Nothing started inside a full watchdog window: the pool
            # itself is stalled.  Demote everything left so the sweep
            # still makes inline progress.
            for fut in queued:
                fut.cancel()
                task = fut_to_task[fut]
                if policy.degrade:
                    task.demoted = True
                    demoted.append(task)
                else:
                    retry.append(task)
        else:
            for fut in running:
                task = fut_to_task[fut]
                if task.attempts < policy.retries:
                    _note_retry(scope, ns, task, "timeout")
                    retry.append(task)
                else:
                    task.attempts += 1
                    task.causes.append("timeout")
                    failures[task.cell.key] = _cell_error(
                        task,
                        "timeout",
                        None,
                        detail=(
                            "no completion within the "
                            f"{policy.timeout:g}s watchdog window"
                        ),
                    )
            for fut in queued:
                # Queued behind the hung worker: a victim, re-run in the
                # next round without charging an attempt.
                fut.cancel()
                retry.append(fut_to_task[fut])
    elif broken:
        for fut in not_done:
            if not fut.done():
                fut.cancel()
            retry.append(fut_to_task[fut])
        # A dead worker poisons the whole backend; demote the affected
        # cells to inline serial execution instead of gambling on fresh
        # workers (unless degradation is disabled).
        affected, retry = retry, []
        for task in affected:
            if policy.degrade:
                task.demoted = True
                if scope.journal is not None:
                    scope.journal.record_event(
                        ns, task.cell.key, "degrade", cause="worker-death"
                    )
                demoted.append(task)
            elif task.attempts < policy.retries:
                _note_retry(scope, ns, task, "worker-death")
                retry.append(task)
            else:
                task.attempts += 1
                task.causes.append("worker-death")
                failures[task.cell.key] = _cell_error(
                    task, "worker-death", None,
                    detail="pool worker process died",
                )
    return retry, demoted, hung or broken
