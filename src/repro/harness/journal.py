"""Crash-safe append-only run journal for supervised sweeps.

The journal is a JSONL file: one self-contained record per line, each
flushed and fsynced as it is written, so a run killed at any instant
loses at most the line that was mid-write.  ``repro run --resume PATH``
(and ``run_cells_supervised(..., resume=)`` via
:class:`~repro.harness.supervisor.SupervisorPolicy`) loads the journal
and skips every cell whose key *and* payload hash match a completed
record, merging the journaled result by key — because cells are
deterministic, a resumed sweep renders byte-identically to an
uninterrupted one.

Record kinds
------------
``cell``
    A completed cell: namespace (experiment id / sweep name), cell key,
    worker name, payload hash (over ``(worker, args)``), the worker's
    static code fingerprint when one is known
    (:func:`repro.analysis.static.worker_fingerprint`) and the result.
``event``
    Supervision bookkeeping (retries, degradations) for postmortems;
    ignored on resume.

Format versions
---------------
Every record carries a ``v`` field.  Version 2 (current) widened the
payload hash from 16 to 32 hex chars and added the optional ``code``
fingerprint.  Version 1 journals stay readable: their 16-char hashes
match by prefix and they carry no code fingerprint, so resume behaves
exactly as it did before.  Records from a *newer* format than this
process understands are skipped with a recorded reason (see
:func:`read_journal`) rather than crashing the resume.

Cell keys and results may contain tuples and non-string dict keys
(e.g. the OSU curves are ``dict[int, float]``), which plain JSON cannot
represent, so values round-trip through a small typed encoding
(:func:`encode_value` / :func:`decode_value`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import typing as _t

from repro.errors import ConfigError

#: Bump when the record layout changes incompatibly.
FORMAT_VERSION = 2


# ---------------------------------------------------------------------------
# Typed JSON encoding
# ---------------------------------------------------------------------------

def encode_value(obj: _t.Any) -> _t.Any:
    """JSON-encodable form of ``obj`` that survives a round trip.

    Tuples become ``{"__tuple__": [...]}`` and dicts with non-string
    (or marker-colliding) keys become ``{"__dict__": [[k, v], ...]}``;
    everything else must already be JSON-representable.
    """
    if isinstance(obj, tuple):
        return {"__tuple__": [encode_value(v) for v in obj]}
    if isinstance(obj, list):
        return [encode_value(v) for v in obj]
    if isinstance(obj, dict):
        if all(isinstance(k, str) and not k.startswith("__") for k in obj):
            return {k: encode_value(v) for k, v in obj.items()}
        return {
            "__dict__": [[encode_value(k), encode_value(v)] for k, v in obj.items()]
        }
    return obj


def decode_value(obj: _t.Any) -> _t.Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(obj, list):
        return [decode_value(v) for v in obj]
    if isinstance(obj, dict):
        if set(obj) == {"__tuple__"}:
            return tuple(decode_value(v) for v in obj["__tuple__"])
        if set(obj) == {"__dict__"}:
            return {decode_value(k): decode_value(v) for k, v in obj["__dict__"]}
        return {k: decode_value(v) for k, v in obj.items()}
    return obj


def payload_hash(worker: str, args: _t.Sequence[_t.Any]) -> str:
    """Stable digest of a cell's full payload (worker name + arguments).

    Guards resume against key collisions: a journal entry is only
    reused when the cell would re-run the exact same computation.
    """
    blob = json.dumps(
        [worker, encode_value(tuple(args))], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex_hash(value: _t.Any) -> bool:
    """Whether ``value`` is a plausible stored digest: a non-empty,
    even-length, lowercase-hex string (hex digests always pair chars)."""
    if not isinstance(value, str) or not value or len(value) % 2:
        return False
    return all(c in _HEX_DIGITS for c in value)


def hash_matches(entry_hash: str, digest: str) -> bool:
    """Whether a journaled payload hash matches a freshly computed one.

    Format v1 stored the first 16 hex chars of the same SHA-256, so a
    16-char journal value matches by prefix; anything else must match
    exactly.  Either way the journaled value must itself *be* a digest
    — lowercase hex of even length — so a corrupted or hand-edited
    journal entry can never false-positive into a resume or store hit.
    """
    if not _is_hex_hash(entry_hash):
        return False
    if entry_hash == digest:
        return True
    return len(entry_hash) == 16 and digest.startswith(entry_hash)


# ---------------------------------------------------------------------------
# Journal file
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class JournalEntry:
    """One completed cell loaded from a journal.

    ``code_fingerprint`` is the worker's static code fingerprint at
    record time, or ``None`` for v1 records and workers the static
    analysis cannot see (e.g. test-local registrations).
    """

    namespace: str
    key: tuple
    worker: str
    payload_hash: str
    result: _t.Any
    code_fingerprint: str | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class SkippedRecord:
    """One journal record that resume could not use, and why."""

    lineno: int
    version: _t.Any
    reason: str


@dataclasses.dataclass(frozen=True, slots=True)
class JournalRead:
    """Everything :func:`read_journal` learned from a journal file."""

    entries: dict[tuple[str, tuple], JournalEntry]
    skipped: tuple[SkippedRecord, ...]


class RunJournal:
    """Append-only JSONL journal of completed cells.

    Open for the lifetime of one supervised batch; every record is
    flushed and fsynced immediately so an abrupt kill cannot lose a
    completed cell (only, at worst, a torn final line, which
    :func:`load_journal` tolerates).
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: _t.TextIO | None = open(self.path, "a", encoding="utf-8")

    def record_cell(
        self,
        namespace: str,
        key: tuple,
        worker: str,
        digest: str,
        result: _t.Any,
        code: str | None = None,
    ) -> None:
        """Journal one completed cell.

        ``code`` is the worker's static code fingerprint when known;
        resume uses it to refuse entries produced by different code.
        """
        record: dict[str, _t.Any] = {
            "kind": "cell",
            "v": FORMAT_VERSION,
            "ns": namespace,
            "key": encode_value(tuple(key)),
            "worker": worker,
            "hash": digest,
            "result": encode_value(result),
        }
        if code is not None:
            record["code"] = code
        self._write(record)

    def record_event(
        self, namespace: str, key: tuple, event: str, **fields: _t.Any
    ) -> None:
        """Journal a supervision event (retry, degrade); ignored on resume."""
        self._write({
            "kind": "event",
            "v": FORMAT_VERSION,
            "ns": namespace,
            "key": encode_value(tuple(key)),
            "event": event,
            **fields,
        })

    def _write(self, record: dict[str, _t.Any]) -> None:
        if self._fh is None:
            raise ConfigError(f"journal {self.path} is closed")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the journal; safe to call any number of times.

        The handle is detached *before* it is closed, so even a close
        that raises (e.g. a full disk flushing buffered bytes) leaves
        the journal in the closed state and a repeat call is a no-op —
        double-close and close-after-``__exit__`` never raise.
        """
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: _t.Any) -> None:
        self.close()


def read_journal(path: str | pathlib.Path) -> JournalRead:
    """Read ``path`` into completed cells plus skipped-record accounting.

    Entries are keyed by ``(namespace, key)``.  A torn final line (the
    signature of a killed run) is silently dropped.  Corruption anywhere
    else — an unparseable mid-file line, or a cell record missing a
    field — never aborts the read: the damaged record becomes a
    :class:`SkippedRecord` with a recorded reason and resume simply
    re-simulates that cell.  When a cell appears more than once (a
    resumed run appending to its own journal) the last record wins.
    Records written by a *newer* format version than this process
    understands — or carrying a non-integer version — are skipped the
    same way, so old code degrades to re-simulating those cells.
    """
    p = pathlib.Path(path)
    if not p.exists():
        raise ConfigError(f"resume journal not found: {p}")
    entries: dict[tuple[str, tuple], JournalEntry] = {}
    skipped: list[SkippedRecord] = []
    lines = p.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # torn final write from a killed run
            # Mid-file corruption (a concurrent writer died mid-append,
            # disk bitrot, a hand edit): the record is lost either way,
            # but the cells around it are not — skip it with a recorded
            # reason and let resume re-simulate just that cell.
            skipped.append(SkippedRecord(
                lineno, None, "unparseable JSON (corrupted record)",
            ))
            continue
        if not isinstance(rec, dict) or rec.get("kind") != "cell":
            continue
        version = rec.get("v")
        if not isinstance(version, int) or isinstance(version, bool):
            skipped.append(SkippedRecord(
                lineno, version,
                f"non-integer format version {version!r}",
            ))
            continue
        if version > FORMAT_VERSION:
            skipped.append(SkippedRecord(
                lineno, version,
                f"format version {version} is newer than supported "
                f"version {FORMAT_VERSION}",
            ))
            continue
        try:
            ns = rec["ns"]
            key = decode_value(rec["key"])
            entry = JournalEntry(
                namespace=ns,
                key=key,
                worker=rec["worker"],
                payload_hash=rec["hash"],
                result=decode_value(rec["result"]),
                code_fingerprint=rec.get("code"),
            )
        except (KeyError, TypeError):
            skipped.append(SkippedRecord(
                lineno, version, "malformed cell record (missing/invalid field)",
            ))
            continue
        entries[(ns, key)] = entry
    return JournalRead(entries=entries, skipped=tuple(skipped))


def load_journal(path: str | pathlib.Path) -> dict[tuple[str, tuple], JournalEntry]:
    """Completed cells from ``path`` keyed by ``(namespace, key)``.

    Thin wrapper over :func:`read_journal` for callers that do not need
    the skipped-record accounting.
    """
    return read_journal(path).entries
