"""Transport-agnostic cell executors: one scheduling interface, many backends.

Everything that fans sweep cells out — :func:`repro.harness.parallel.run_cells`,
the supervisor's dispatch rounds, the faults sweep, ``run_batch`` — schedules
through the :class:`CellExecutor` interface defined here instead of assuming a
``concurrent.futures.ProcessPoolExecutor``.  A backend only has to turn a
:class:`~repro.harness.parallel.Cell` into a ``concurrent.futures.Future``;
merge-by-key determinism, supervision, journaling and the content-addressed
cell store all layer on top unchanged, so every backend renders byte-identical
reports.

Backends
--------
:class:`SerialExecutor`
    Executes each cell inline at submit time.  The explicit spelling of
    ``--jobs 1`` for harness benchmarking and debugging.
:class:`LocalPoolExecutor`
    The classic process pool, plus *chunked dispatch*: with ``chunk > 1``
    cells are submitted in deterministic batches (one future per chunk
    internally, still one future per cell externally), cutting the
    per-cell IPC/pickling overhead that dominates large sweeps of cheap
    cells.
:class:`~repro.harness.netqueue.WorkQueueExecutor`
    A TCP work queue: remote ``repro worker --connect HOST:PORT``
    processes lease cells over length-prefixed JSON frames; a worker
    that vanishes mid-cell has its lease re-queued, so the sweep
    completes as long as one worker survives.
:class:`TransientExecutor`
    A wrapper policy, not a transport: it resubmits cells whose worker
    died (``BrokenProcessPool`` / :class:`WorkerLostError`) to a
    recycled inner backend a bounded number of times, so *any* backend
    absorbs transient worker death; failures past the bound surface as
    worker-loss for the supervisor's retry/journal machinery to own.

Activation
----------
``run_cells(..., executor=...)`` takes an explicit backend;
:func:`executor_scope` (what ``repro run --backend SPEC`` uses via
``run_batch(backend=...)``) installs one for a whole batch; and
:func:`make_executor` parses the ``--backend`` spec grammar
(``serial`` | ``pool[:chunk=K]`` | ``chunked`` | ``tcp:HOST:PORT[,spawn=N]``,
optionally wrapped as ``transient:<spec>``).  See ``docs/distributed.md``.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import typing as _t
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ConfigError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.harness.parallel import Cell


class WorkerLostError(Exception):
    """A transport-level worker was lost while (or before) running a cell.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a vanished
    worker says nothing about the cell itself, so the supervisor treats
    it exactly like a broken process pool — retry or degrade, never
    "deterministic failure".
    """


#: Exceptions that mean "the executor lost a worker", across transports.
WORKER_LOSS_ERRORS = (BrokenProcessPool, WorkerLostError)


def _settle_future(fut: Future, value: _t.Any = None,
                   exc: BaseException | None = None) -> None:
    """Complete a manually managed future, tolerating cancellation."""
    if fut.cancelled():
        return
    try:
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(value)
    except Exception:  # InvalidStateError: racing cancel/settle, drop it
        pass


def _mark_running(fut: Future) -> bool:
    """Move a manual future to RUNNING; False when it was cancelled.

    Safe to call again for a future that is already running (a
    re-queued lease keeps its original future).
    """
    if fut.cancelled():
        return False
    if fut.running():
        return True
    try:
        return fut.set_running_or_notify_cancel()
    except RuntimeError:
        return not fut.done()


# ---------------------------------------------------------------------------
# The interface
# ---------------------------------------------------------------------------

class CellExecutor:
    """One transport for executing sweep cells.

    The contract is deliberately tiny: :meth:`submit` returns a
    ``concurrent.futures.Future`` for one cell (so ``wait``/
    ``as_completed`` and the supervisor's watchdog work on every
    backend), :meth:`submit_many` may batch, :meth:`recycle` yields the
    executor to use for the next supervised dispatch round after a
    disruption, and :meth:`shutdown` releases the transport.  Executors
    never reorder results — callers always merge by cell key in cell
    order, which is what keeps every backend byte-identical.
    """

    #: Short backend name (also the ``--backend`` spec head).
    kind = "abstract"
    #: Whether cells run outside the submitting thread of control.
    parallel = True

    def submit(self, cell: "Cell") -> Future:
        raise NotImplementedError

    def submit_many(self, cells: _t.Sequence["Cell"]) -> list[Future]:
        """Futures for ``cells``, in cell order (backends may batch)."""
        return [self.submit(c) for c in cells]

    def recycle(self, kill: bool = False) -> "CellExecutor":
        """The executor for the next dispatch round after a disruption.

        ``kill`` means workers may be hung (tear them down hard).  The
        default tears this executor down and hands back ``self`` —
        backends that can rebuild lazily (the local pool) or shrug off
        individual worker loss (the work queue) return themselves.
        """
        self.shutdown(kill=kill)
        return self

    def shutdown(self, kill: bool = False) -> None:
        """Release the transport (idempotent).

        ``kill=True`` must not wait on hung or dead workers: cancel
        queued cells, terminate what can be terminated, return.
        """

    def describe(self) -> str:
        return self.kind

    def banner(self) -> str | None:
        """One-line ``executor: ...`` summary (stderr only), or ``None``."""
        return None

    def __enter__(self) -> "CellExecutor":
        return self

    def __exit__(self, exc_type: _t.Any, *_exc: _t.Any) -> None:
        self.shutdown(kill=exc_type is not None)


class SerialExecutor(CellExecutor):
    """Inline execution at submit time — the ``--backend serial`` spelling."""

    kind = "serial"
    parallel = False

    def __init__(self) -> None:
        self.dispatched = 0

    def submit(self, cell: "Cell") -> Future:
        from repro.harness.parallel import _execute

        fut: Future = Future()
        fut.set_running_or_notify_cancel()
        self.dispatched += 1
        try:
            value = _execute(cell)
        except Exception as exc:  # KeyboardInterrupt/SystemExit propagate
            fut.set_exception(exc)
        else:
            fut.set_result(value)
        return fut

    def banner(self) -> str:
        return f"executor: serial: {self.dispatched} cell(s) dispatched"


# ---------------------------------------------------------------------------
# Local process pool (with chunked dispatch)
# ---------------------------------------------------------------------------

def _execute_chunk(cells: _t.Sequence["Cell"]) -> list[tuple[bool, _t.Any]]:
    """Run one deterministic chunk of cells inside a pool worker.

    Each cell's outcome travels back as ``(ok, value-or-exception)`` so
    one raising cell never poisons its chunk-mates — the same pickled
    exception a per-cell future would have carried.
    """
    from repro.harness.parallel import _execute

    out: list[tuple[bool, _t.Any]] = []
    for cell in cells:
        try:
            out.append((True, _execute(cell)))
        except Exception as exc:
            out.append((False, exc))
    return out


def _fan_out_chunk(outs: list[Future], chunk_future: Future) -> None:
    """Spread one finished chunk future over its per-cell futures."""
    try:
        outcomes = chunk_future.result()
    except BaseException as exc:  # BrokenProcessPool kills the whole chunk
        for fut in outs:
            _mark_running(fut)
            _settle_future(fut, exc=exc)
        return
    for fut, (ok, payload) in zip(outs, outcomes):
        _mark_running(fut)
        if ok:
            _settle_future(fut, value=payload)
        else:
            _settle_future(fut, exc=payload)


class LocalPoolExecutor(CellExecutor):
    """The process-pool backend, refactored behind :class:`CellExecutor`.

    ``chunk`` controls dispatch granularity: ``1`` (default) submits one
    pool future per cell — the watchdog-friendly mode supervision uses —
    while ``chunk > 1`` or ``"auto"`` groups cells into deterministic
    batches to amortise IPC and pickling over large sweeps of cheap
    cells (callers still get one future per cell).  The underlying pool
    is built lazily and rebuilt after :meth:`shutdown`, so one instance
    can serve a whole batch and survive supervisor recycling.
    """

    kind = "pool"

    #: ``chunk="auto"``: aim for this many chunks per pool worker.
    AUTO_CHUNKS_PER_WORKER = 4
    #: ``chunk="auto"`` ceiling, so one chunk can never serialise a sweep.
    AUTO_CHUNK_MAX = 64

    def __init__(self, jobs: int | None = None, *,
                 chunk: int | str = 1) -> None:
        from repro.harness.parallel import resolve_jobs

        self.jobs = resolve_jobs(jobs)
        if chunk != "auto" and (not isinstance(chunk, int) or chunk < 1):
            raise ConfigError(f"chunk must be a positive int or 'auto': {chunk!r}")
        self.chunk = chunk
        self.dispatched = 0
        self._pool: ProcessPoolExecutor | None = None

    def describe(self) -> str:
        return f"pool(jobs={self.jobs}, chunk={self.chunk})"

    def banner(self) -> str:
        return (
            f"executor: {self.describe()}: {self.dispatched} cell(s) dispatched"
        )

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        from repro.harness.parallel import _pool_worker_init

        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_pool_worker_init
            )
        return self._pool

    def shutdown(self, kill: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if not kill:
            pool.shutdown()
            return
        # Hard teardown: never wait on hung or dead workers, cancel
        # everything still queued, terminate the worker processes.
        pool.shutdown(wait=False, cancel_futures=True)
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            with contextlib.suppress(Exception):
                proc.terminate()
        for proc in list(procs.values()):
            with contextlib.suppress(Exception):
                proc.join(timeout=5.0)

    # -- dispatch ----------------------------------------------------------
    def submit(self, cell: "Cell") -> Future:
        from repro.harness.parallel import _execute

        self.dispatched += 1
        return self._ensure_pool().submit(_execute, cell)

    def chunk_size(self, n_cells: int) -> int:
        """The deterministic batch size for an ``n_cells`` sweep."""
        if self.chunk != "auto":
            return int(self.chunk)
        per_worker = self.jobs * self.AUTO_CHUNKS_PER_WORKER
        auto = -(-n_cells // per_worker) if per_worker else 1  # ceil div
        return max(1, min(auto, self.AUTO_CHUNK_MAX))

    def submit_many(self, cells: _t.Sequence["Cell"]) -> list[Future]:
        cells = list(cells)
        size = self.chunk_size(len(cells))
        if size <= 1:
            return [self.submit(c) for c in cells]
        pool = self._ensure_pool()
        futures: list[Future] = [Future() for _ in cells]
        self.dispatched += len(cells)
        for start in range(0, len(cells), size):
            outs = futures[start:start + size]
            try:
                chunk_future = pool.submit(_execute_chunk, cells[start:start + size])
            except BrokenProcessPool as exc:
                for fut in futures[start:]:
                    _mark_running(fut)
                    _settle_future(fut, exc=exc)
                break
            chunk_future.add_done_callback(
                lambda cf, outs=outs: _fan_out_chunk(outs, cf)
            )
        return futures


# ---------------------------------------------------------------------------
# Transient-worker wrapper policy
# ---------------------------------------------------------------------------

class TransientExecutor(CellExecutor):
    """Absorb worker death on top of any backend (``transient:<spec>``).

    A cell whose future fails with worker loss is resubmitted to a
    recycled inner executor, up to ``respawns`` extra attempts per cell
    — the spot/transient-resource model where workers are expected to
    vanish.  Loss past the bound surfaces as the original worker-loss
    error, which the supervisor's retry/journal machinery (when active)
    then owns.  Cell *results* are never touched, so wrapping a backend
    cannot change a report.
    """

    kind = "transient"

    def __init__(self, inner: CellExecutor, *, respawns: int = 2) -> None:
        if respawns < 0:
            raise ConfigError(f"respawns must be >= 0: {respawns}")
        self.inner = inner
        self.respawns = respawns
        self.resubmitted = 0
        self._lock = threading.Lock()
        self._generation = 0

    parallel = True

    def describe(self) -> str:
        return f"transient({self.inner.describe()}, respawns={self.respawns})"

    def banner(self) -> str:
        inner = self.inner.banner() or f"executor: {self.inner.describe()}"
        return f"{inner}, {self.resubmitted} resubmitted after worker loss"

    def _recycle_inner(self, seen_generation: int) -> None:
        """Recycle the inner backend once per breakage generation."""
        with self._lock:
            if self._generation == seen_generation:
                self.inner = self.inner.recycle(kill=True)
                self._generation += 1

    def _attach(self, outer: Future, cell: "Cell", attempt: int) -> None:
        with self._lock:
            generation = self._generation
        try:
            inner_future = self.inner.submit(cell)
        except WORKER_LOSS_ERRORS as exc:
            if attempt >= self.respawns:
                _settle_future(outer, exc=exc)
                return
            self._recycle_inner(generation)
            self.resubmitted += 1
            self._attach(outer, cell, attempt + 1)
            return
        inner_future.add_done_callback(
            lambda f: self._settle(outer, cell, attempt, generation, f)
        )

    def _settle(self, outer: Future, cell: "Cell", attempt: int,
                generation: int, inner_future: Future) -> None:
        if inner_future.cancelled():
            outer.cancel()
            return
        exc = inner_future.exception()
        if isinstance(exc, WORKER_LOSS_ERRORS) and attempt < self.respawns:
            self._recycle_inner(generation)
            self.resubmitted += 1
            self._attach(outer, cell, attempt + 1)
            return
        if exc is not None:
            _settle_future(outer, exc=exc)
        else:
            _settle_future(outer, value=inner_future.result())

    def submit(self, cell: "Cell") -> Future:
        outer: Future = Future()
        _mark_running(outer)
        self._attach(outer, cell, 0)
        return outer

    def recycle(self, kill: bool = False) -> "CellExecutor":
        with self._lock:
            self.inner = self.inner.recycle(kill=kill)
            self._generation += 1
        return self

    def shutdown(self, kill: bool = False) -> None:
        self.inner.shutdown(kill=kill)


# ---------------------------------------------------------------------------
# Activation: scope + spec grammar
# ---------------------------------------------------------------------------

_EXECUTOR: contextvars.ContextVar[CellExecutor | None] = contextvars.ContextVar(
    "repro_cell_executor", default=None
)


def active_executor() -> CellExecutor | None:
    """The cell executor currently installed for this context, if any."""
    return _EXECUTOR.get()


@contextlib.contextmanager
def executor_scope(
    executor: CellExecutor | str,
) -> _t.Iterator[CellExecutor]:
    """Route every ``run_cells`` call in the body through ``executor``.

    Accepts an instance or a ``--backend`` spec string; the executor is
    shut down when the scope exits (hard if the body raised).
    """
    if isinstance(executor, str):
        executor = make_executor(executor)
    token = _EXECUTOR.set(executor)
    try:
        yield executor
    except BaseException:
        _EXECUTOR.reset(token)
        executor.shutdown(kill=True)
        raise
    else:
        _EXECUTOR.reset(token)
        executor.shutdown()


def _parse_options(parts: _t.Sequence[str], spec: str) -> dict[str, str]:
    options: dict[str, str] = {}
    for part in parts:
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"bad backend option {part!r} in {spec!r}")
        key, _, value = part.partition("=")
        options[key.strip()] = value.strip()
    return options


def make_executor(spec: str, jobs: int | None = None) -> CellExecutor:
    """Build a backend from a ``--backend`` spec string.

    Grammar (see ``docs/distributed.md``)::

        serial                      inline execution
        pool                        process pool (--jobs workers)
        pool:chunk=K                chunked dispatch, K cells per batch
        chunked                     process pool, chunk size chosen automatically
        tcp:HOST:PORT[,spawn=N][,lease=S]
                                    TCP work queue listening on HOST:PORT
                                    (PORT 0 = ephemeral), optionally
                                    spawning N local `repro worker`s
        transient:<spec>            wrap any of the above in the
                                    transient-worker respawn policy
    """
    spec = (spec or "").strip()
    if spec in ("", "serial"):
        return SerialExecutor()
    head, _, rest = spec.partition(":")
    head = head.strip()
    if head == "transient":
        if not rest:
            raise ConfigError("transient: needs an inner backend, e.g. transient:pool")
        return TransientExecutor(make_executor(rest, jobs))
    if head in ("pool", "chunked"):
        options = _parse_options(rest.split(","), spec)
        chunk: int | str = "auto" if head == "chunked" else 1
        if "chunk" in options:
            raw = options.pop("chunk")
            if raw == "auto":
                chunk = "auto"
            else:
                try:
                    chunk = int(raw)
                except ValueError:
                    raise ConfigError(
                        f"bad chunk value {raw!r} in {spec!r} "
                        "(expected a positive int or 'auto')"
                    ) from None
        if options:
            raise ConfigError(f"unknown pool backend option(s) {sorted(options)} in {spec!r}")
        return LocalPoolExecutor(jobs, chunk=chunk)
    if head == "tcp":
        from repro.harness.netqueue import WorkQueueExecutor

        parts = rest.split(",")
        address = parts[0].strip()
        host, _, port_text = address.rpartition(":")
        if not host:
            host, port_text = "127.0.0.1", address
        try:
            port = int(port_text)
        except ValueError:
            raise ConfigError(
                f"bad tcp backend address {address!r} (expected HOST:PORT)"
            ) from None
        options = _parse_options(parts[1:], spec)
        try:
            spawn = int(options.pop("spawn", "0"))
            lease = float(options.pop("lease", "60"))
        except ValueError as exc:
            raise ConfigError(f"bad tcp backend option in {spec!r}: {exc}") from None
        if options:
            raise ConfigError(f"unknown tcp backend option(s) {sorted(options)} in {spec!r}")
        return WorkQueueExecutor(host, port, spawn=spawn, lease_timeout=lease)
    raise ConfigError(
        f"unknown backend spec {spec!r}; expected serial | pool[:chunk=K] | "
        "chunked | tcp:HOST:PORT[,spawn=N] | transient:<spec>"
    )
