"""Experiment harness: one entry per paper figure/table.

Each experiment in :mod:`repro.harness.experiments` regenerates one
artefact of the paper's evaluation — the same rows/series the paper
reports — and pairs the measured values with the paper's published
numbers from :mod:`repro.harness.paper` so benches and EXPERIMENTS.md
can show paper-vs-measured side by side.

Usage::

    from repro.harness import run_experiment, EXPERIMENTS
    out = run_experiment("fig4", quick=True)
    print(out.render())
"""

from repro.harness.experiments import EXPERIMENTS, ExperimentOutput, run_experiment
from repro.harness.figures import render_series_table, render_speedup_plot
from repro.harness.supervisor import (
    SupervisorPolicy,
    SweepReport,
    run_cells_supervised,
    supervision_scope,
)
from repro.harness import paper

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutput",
    "SupervisorPolicy",
    "SweepReport",
    "paper",
    "render_series_table",
    "render_speedup_plot",
    "run_cells_supervised",
    "run_experiment",
    "supervision_scope",
]
