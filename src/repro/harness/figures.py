"""Text rendering of series and speedup plots for the bench harness."""

from __future__ import annotations

import math
import typing as _t


def render_series_table(
    title: str,
    columns: _t.Sequence[str],
    rows: _t.Mapping[_t.Any, _t.Sequence[float]],
    value_format: str = "{:.2f}",
    row_label: str = "x",
) -> str:
    """An aligned table: one row per x value, one column per series."""
    lines = [title]
    header = [row_label] + list(columns)
    cells = [
        [str(x)] + [value_format.format(v) for v in values]
        for x, values in rows.items()
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in cells)) if cells else len(header[i])
        for i in range(len(header))
    ]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for r in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_speedup_plot(
    title: str,
    series: _t.Mapping[str, _t.Mapping[int, float]],
    width: int = 48,
    height: int = 14,
) -> str:
    """A log-log ASCII rendition of a Fig-4-style speedup plot."""
    points: list[tuple[float, float, str]] = []
    markers = {}
    for idx, (name, curve) in enumerate(series.items()):
        marker = chr(ord("A") + idx % 26)
        markers[marker] = name
        for x, y in curve.items():
            if x > 0 and y > 0:
                points.append((math.log2(x), math.log2(y), marker))
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, m in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = m
    lines = [title]
    lines.append(f"log2(speedup) {2**y_hi:.0f}x at top, {2**y_lo:.1f}x at bottom")
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    lines.append(f"log2(cores): {2**x_lo:.0f} .. {2**x_hi:.0f}")
    lines.append("legend: " + ", ".join(f"{m}={n}" for m, n in markers.items()))
    return "\n".join(lines)


def percent_delta(measured: float, reference: float) -> str:
    """Signed percentage deviation, rendered for comparison columns."""
    if reference == 0:
        return "n/a"
    return f"{100.0 * (measured - reference) / reference:+.0f}%"
