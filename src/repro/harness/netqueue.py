"""TCP work-queue backend: multi-host sweep execution over a socket.

The coordinator side (:class:`WorkQueueExecutor`) listens on a TCP port
and leases cells to whatever ``repro worker --connect HOST:PORT``
processes attach — on the same machine (``spawn=N`` launches loopback
workers automatically) or on other hosts sharing nothing but the wire
and, optionally, a cell store.  The worker side (:func:`run_worker`)
executes leased cells through the exact same
:func:`repro.harness.parallel._execute` path a local pool worker uses,
so results are bit-identical whichever transport carried them.

Wire protocol (``docs/distributed.md`` has the full matrix): 4-byte
big-endian length prefix, then one JSON object per frame.  Values cross
the wire through the journal's typed encoding
(:func:`repro.harness.journal.encode_value`), the same encoding the
cell store trusts for byte-identical round trips.

    worker -> coordinator   {"op": "hello", "pid", "host"}
    coordinator -> worker   {"op": "welcome", "version"}
    worker -> coordinator   {"op": "ready"}
    coordinator -> worker   {"op": "cell", "id", "worker", "args"}
    worker -> coordinator   {"op": "result", "id", "ok", "value" | "error"}
    worker -> coordinator   {"op": "heartbeat"}        (daemon thread)
    coordinator -> worker   {"op": "bye"}

Failure model: a worker that vanishes mid-cell (socket EOF, missed
heartbeats past the lease timeout) has its leased cell re-queued at the
front of the queue, so the sweep completes as long as one worker
survives.  When the coordinator spawned its own workers and they have
*all* exited with none connected, pending cells fail fast with
:class:`~repro.harness.executor.WorkerLostError` instead of hanging —
which the supervisor then absorbs by degrading to inline execution.
"""

from __future__ import annotations

import collections
import contextlib
import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
import typing as _t
from concurrent.futures import Future

from repro.errors import ConfigError, RemoteCellError, ReproError, UnavailableError
from repro.harness.executor import (
    CellExecutor,
    WorkerLostError,
    _mark_running,
    _settle_future,
)
from repro.harness.journal import decode_value, encode_value

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.harness.parallel import Cell

#: Wire protocol version; a worker refuses to serve a different one.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame, a corruption guard not a design limit.
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class RemoteWorkerFailure(Exception):
    """A remote worker raised a non-:class:`~repro.errors.ReproError`.

    Deliberately a plain ``Exception``: the supervisor retries generic
    worker exceptions, exactly as it would for a local pool worker
    raising the same thing.  Deterministic (``ReproError``) failures
    cross the wire as :class:`~repro.errors.RemoteCellError` instead and
    are never retried.
    """


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def send_frame(
    sock: socket.socket, payload: dict, lock: threading.Lock | None = None
) -> None:
    """Write one length-prefixed JSON frame (atomically under ``lock``)."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME:
        raise ConfigError(f"frame of {len(data)} bytes exceeds MAX_FRAME")
    blob = _LEN.pack(len(data)) + data
    if lock is None:
        sock.sendall(blob)
    else:
        with lock:
            sock.sendall(blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Exactly ``n`` bytes; ``None`` on a clean EOF before the first byte.

    EOF after a *partial* read is torn input — a peer that died
    mid-frame or a proxy that truncated it — and raises instead of
    masquerading as a clean close, so a truncated length prefix can
    never be mistaken for an orderly goodbye.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ConnectionError(
                f"connection closed after {got} of {n} byte(s)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ConnectionError(f"oversized frame ({length} bytes)")
    body = _recv_exact(sock, length)
    if body is None:
        raise ConnectionError("connection closed mid-frame")
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ConnectionError(f"malformed frame payload: {payload!r}")
    return payload


def _encode_error(exc: BaseException) -> dict:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "config": isinstance(exc, ConfigError),
        "repro": isinstance(exc, ReproError),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def _decode_error(error: dict) -> BaseException:
    kind = error.get("type", "Exception")
    message = error.get("message", "")
    tb = error.get("traceback", "")
    if error.get("config"):
        return ConfigError(message)
    if error.get("repro"):
        return RemoteCellError(kind, message, remote_traceback=tb)
    text = f"remote worker raised {kind}: {message}"
    if tb:
        text += f"\n{tb.rstrip()}"
    return RemoteWorkerFailure(text)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def run_worker(
    host: str, port: int, *, heartbeat: float = 2.0, connect_retries: int = 5
) -> int:
    """Serve cells from a coordinator until it says goodbye.

    This is ``repro worker --connect HOST:PORT``.  The process marks
    itself as a pool worker (so the ``REPRO_CHAOS_KILL`` chaos hook and
    worker-only test behaviours fire exactly as they would in a local
    pool child) and executes each leased cell through
    :func:`repro.harness.parallel._execute`.  Worker-function exceptions
    are reported back as structured error frames; only transport death
    ends the loop.  Returns a process exit code.

    The initial connection retries with bounded backoff
    (``connect_retries`` retries after the first attempt) instead of
    dying on connection-refused: in a ``tcp:...,spawn=N`` loopback
    fleet the spawned workers routinely beat the coordinator's listener
    to the port, and that startup race must cost a back-off, not a
    worker.
    """
    from repro.harness import parallel
    from repro.harness.resilience import RetryPolicy, connect_with_retry

    policy = RetryPolicy(
        attempts=max(1, connect_retries + 1),
        base_delay=0.1,
        max_delay=2.0,
        deadline=10.0,
    )
    try:
        sock = connect_with_retry(host, port, policy=policy)
    except UnavailableError as exc:
        raise ConfigError(
            f"cannot connect to coordinator {host}:{port} after "
            f"{policy.attempts} attempt(s): {exc.__cause__ or exc}"
        ) from exc
    sock.settimeout(None)
    parallel._IS_POOL_WORKER = True  # lint-ok: DET007 transport marker, mirrors _pool_worker_init
    wlock = threading.Lock()
    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(heartbeat):
            try:
                send_frame(sock, {"op": "heartbeat"}, wlock)
            except OSError:
                return

    try:
        send_frame(sock, {"op": "hello", "pid": os.getpid(),
                          "host": socket.gethostname()}, wlock)
        welcome = recv_frame(sock)
        if not welcome or welcome.get("op") != "welcome":
            raise ConfigError(f"coordinator did not welcome us: {welcome!r}")
        if welcome.get("version") != PROTOCOL_VERSION:
            raise ConfigError(
                f"coordinator speaks protocol {welcome.get('version')}, "
                f"this worker speaks {PROTOCOL_VERSION}"
            )
        threading.Thread(target=_heartbeat, daemon=True).start()
        send_frame(sock, {"op": "ready"}, wlock)
        while True:
            frame = recv_frame(sock)
            if frame is None or frame.get("op") == "bye":
                return 0
            if frame.get("op") != "cell":
                continue
            cell = parallel.Cell(
                key=("net", frame["id"]),
                worker=frame["worker"],
                args=tuple(decode_value(frame.get("args", []))),
            )
            try:
                value = parallel._execute(cell)
            except Exception as exc:
                payload = {"op": "result", "id": frame["id"], "ok": False,
                           "error": _encode_error(exc)}
            else:
                payload = {"op": "result", "id": frame["id"], "ok": True,
                           "value": encode_value(value)}
            send_frame(sock, payload, wlock)
    except (OSError, ConnectionError):
        return 1
    finally:
        stop.set()
        with contextlib.suppress(OSError):
            sock.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------

class _WorkerConn:
    """Coordinator-side state for one attached worker."""

    __slots__ = ("sock", "wlock", "name", "ready", "lease", "last_seen", "alive")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.wlock = threading.Lock()
        self.name = "?"
        self.ready = False
        self.lease: int | None = None  # leased cell id
        self.last_seen = time.monotonic()  # lint-ok: DET001 transport liveness only, never in results
        self.alive = True


class WorkQueueExecutor(CellExecutor):
    """TCP work-queue coordinator: lease cells to remote workers.

    ``port=0`` binds an ephemeral port (``.port`` has the real one);
    ``spawn=N`` launches N loopback ``repro worker`` subprocesses that
    inherit this process's environment, which is what the self-contained
    ``--backend "tcp:127.0.0.1:0,spawn=2"`` spelling uses.  Cells leased
    to a worker that vanishes (EOF, or no heartbeat for
    ``lease_timeout`` seconds) are re-queued at the front of the queue
    and keep their original future, so callers never observe the loss
    unless every worker is gone.
    """

    kind = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spawn: int = 0,
        lease_timeout: float = 60.0,
    ) -> None:
        if spawn < 0:
            raise ConfigError(f"spawn must be >= 0: {spawn}")
        if lease_timeout <= 0:
            raise ConfigError(f"lease_timeout must be > 0: {lease_timeout}")
        self.host = host
        self.spawn = spawn
        self.lease_timeout = lease_timeout
        self.dispatched = 0
        self.requeued = 0
        self.workers_seen = 0

        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: collections.deque[int] = collections.deque()
        self._futures: dict[int, Future] = {}
        self._cells: dict[int, "Cell"] = {}
        self._conns: list[_WorkerConn] = []
        self._procs: list[subprocess.Popen] = []
        self._next_id = 0
        self._shutdown = False
        self._failed: str | None = None

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host or "127.0.0.1", port))
        self._listener.listen(128)
        self.port = self._listener.getsockname()[1]

        self._threads = [
            threading.Thread(target=self._accept_loop, daemon=True),
            threading.Thread(target=self._dispatch_loop, daemon=True),
        ]
        for t in self._threads:
            t.start()
        for _ in range(spawn):
            self._spawn_worker()

    # -- public interface --------------------------------------------------
    def describe(self) -> str:
        return f"tcp({self.host}:{self.port}, spawn={self.spawn})"

    def banner(self) -> str:
        return (
            f"executor: {self.describe()}: {self.dispatched} cell(s) "
            f"dispatched to {self.workers_seen} worker(s), "
            f"{self.requeued} lease(s) re-queued"
        )

    def submit(self, cell: "Cell") -> Future:
        fut: Future = Future()
        with self._wake:
            if self._shutdown:
                raise RuntimeError("cannot submit to a shut-down WorkQueueExecutor")
            if self._failed:
                raise WorkerLostError(self._failed)
            cell_id = self._next_id
            self._next_id += 1
            self._futures[cell_id] = fut
            self._cells[cell_id] = cell
            self._queue.append(cell_id)
            self.dispatched += 1
            self._wake.notify_all()
        return fut

    def recycle(self, kill: bool = False) -> "CellExecutor":
        if not kill:
            return self
        # Hard recycle after a hung round: assume attached workers are
        # wedged, drop every connection (leases re-queue onto fresh
        # workers) and replace any spawned processes wholesale.
        with self._wake:
            conns, procs = self._conns[:], self._procs[:]
            self._procs = []
        for conn in conns:
            self._drop(conn, requeue=True)
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.terminate()
        for _ in range(self.spawn):
            self._spawn_worker()
        return self

    def shutdown(self, kill: bool = False) -> None:
        with self._wake:
            if self._shutdown:
                return
            self._shutdown = True
            conns = self._conns[:]
            self._conns = []
            procs = self._procs[:]
            self._procs = []
            futures = list(self._futures.values())
            self._futures.clear()
            self._cells.clear()
            self._queue.clear()
            self._wake.notify_all()
        with contextlib.suppress(OSError):
            self._listener.close()
        for conn in conns:
            conn.alive = False
            with contextlib.suppress(OSError):
                send_frame(conn.sock, {"op": "bye"}, conn.wlock)
            with contextlib.suppress(OSError):
                conn.sock.close()
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.terminate()
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.wait(timeout=5.0)
        for fut in futures:
            _mark_running(fut)
            _settle_future(
                fut, exc=WorkerLostError("work queue shut down with cells pending")
            )

    # -- worker processes --------------------------------------------------
    def _spawn_worker(self) -> None:
        import repro

        connect_host = self.host
        if connect_host in ("", "0.0.0.0"):
            connect_host = "127.0.0.1"
        env = os.environ.copy()
        pkg_parent = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = pkg_parent + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"{connect_host}:{self.port}"],
            env=env,
        )
        with self._wake:
            if self._shutdown:
                with contextlib.suppress(Exception):
                    proc.terminate()
                return
            self._procs.append(proc)

    # -- coordinator threads -----------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _WorkerConn(sock)
            with self._wake:
                if self._shutdown:
                    conn.alive = False
                else:
                    self._conns.append(conn)
                    self.workers_seen += 1
            if not conn.alive:
                with contextlib.suppress(OSError):
                    sock.close()
                continue
            threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True
            ).start()

    def _reader_loop(self, conn: _WorkerConn) -> None:
        try:
            hello = recv_frame(conn.sock)
            if not hello or hello.get("op") != "hello":
                raise ConnectionError(f"worker did not say hello: {hello!r}")
            conn.name = f"{hello.get('host', '?')}:{hello.get('pid', '?')}"
            send_frame(conn.sock, {"op": "welcome", "version": PROTOCOL_VERSION},
                       conn.wlock)
            while True:
                frame = recv_frame(conn.sock)
                if frame is None:
                    break
                conn.last_seen = time.monotonic()  # lint-ok: DET001 transport liveness only, never in results
                op = frame.get("op")
                if op == "ready":
                    with self._wake:
                        conn.ready = True
                        self._wake.notify_all()
                elif op == "result":
                    self._on_result(conn, frame)
                # heartbeats only refresh last_seen
        except (OSError, ConnectionError, json.JSONDecodeError):
            pass
        finally:
            self._drop(conn, requeue=True)

    def _on_result(self, conn: _WorkerConn, frame: dict) -> None:
        cell_id = frame.get("id")
        with self._wake:
            fut = self._futures.pop(cell_id, None)
            self._cells.pop(cell_id, None)
            if conn.lease == cell_id:
                conn.lease = None
            conn.ready = True
            self._wake.notify_all()
        if fut is None or fut.done():
            return  # abandoned lease (watchdog charged it); drop late result
        if frame.get("ok"):
            _settle_future(fut, value=decode_value(frame.get("value")))
        else:
            _settle_future(fut, exc=_decode_error(frame.get("error", {})))

    def _drop(self, conn: _WorkerConn, requeue: bool) -> None:
        """A worker is gone: re-queue its lease, re-check viability."""
        with self._wake:
            if not conn.alive:
                return
            conn.alive = False
            with contextlib.suppress(ValueError):
                self._conns.remove(conn)
            if requeue and conn.lease is not None:
                cell_id, conn.lease = conn.lease, None
                fut = self._futures.get(cell_id)
                if fut is not None and not fut.done():
                    self._queue.appendleft(cell_id)
                    self.requeued += 1
            self._wake.notify_all()
        with contextlib.suppress(OSError):
            conn.sock.close()
        self._check_hopeless()

    def _check_hopeless(self) -> None:
        """Fail pending cells when our own workers are all dead.

        Only engages for self-spawned fleets: with external workers the
        coordinator cannot know whether another one is about to connect,
        so it keeps waiting (the supervisor's watchdog owns that case).
        """
        to_fail: list[Future] = []
        with self._wake:
            if (
                self._shutdown
                or self._failed
                or self.spawn == 0
                or self._conns
                or any(p.poll() is None for p in self._procs)
                or not self._futures
            ):
                return
            self._failed = (
                f"all {self.spawn} spawned worker process(es) exited; "
                "work queue has no workers left"
            )
            to_fail = list(self._futures.values())
            self._futures.clear()
            self._cells.clear()
            self._queue.clear()
            self._wake.notify_all()
        for fut in to_fail:
            _mark_running(fut)
            _settle_future(fut, exc=WorkerLostError(self._failed))

    def _dispatch_loop(self) -> None:
        while True:
            assignments: list[tuple[_WorkerConn, int, "Cell"]] = []
            stale: list[_WorkerConn] = []
            with self._wake:
                if self._shutdown:
                    return
                now = time.monotonic()  # lint-ok: DET001 transport liveness only, never in results
                for conn in self._conns:
                    if conn.lease is not None and (
                        now - conn.last_seen > self.lease_timeout
                    ):
                        stale.append(conn)
                ready = [c for c in self._conns if c.ready and c not in stale]
                while self._queue and ready:
                    cell_id = self._queue.popleft()
                    fut = self._futures.get(cell_id)
                    if fut is None or fut.done():
                        self._cells.pop(cell_id, None)
                        self._futures.pop(cell_id, None)
                        continue
                    if not _mark_running(fut):
                        self._futures.pop(cell_id, None)
                        self._cells.pop(cell_id, None)
                        continue
                    conn = ready.pop(0)
                    conn.ready = False
                    conn.lease = cell_id
                    # The lease clock starts at assignment: a worker whose
                    # last frame was its "ready" must not be staled out the
                    # instant it receives work.
                    conn.last_seen = now
                    assignments.append((conn, cell_id, self._cells[cell_id]))
                if not assignments and not stale:
                    self._wake.wait(timeout=0.5)
                    if self._shutdown:
                        return
            for conn in stale:
                self._drop(conn, requeue=True)
            for conn, cell_id, cell in assignments:
                try:
                    send_frame(
                        conn.sock,
                        {"op": "cell", "id": cell_id, "worker": cell.worker,
                         "args": encode_value(list(cell.args))},
                        conn.wlock,
                    )
                except OSError:
                    self._drop(conn, requeue=True)
            if self.spawn and not assignments:
                self._check_hopeless()
