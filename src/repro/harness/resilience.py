"""Network-call resilience: deadlines, bounded backoff, circuit breakers.

Every piece of the harness that talks over a wire — the remote
cell-store client (:mod:`repro.harness.netstore`) and the work-queue
coordinator/worker links (:mod:`repro.harness.netqueue`) — routes its
I/O through the primitives here instead of calling ``socket`` raw:

* **deadline-bounded calls** — every attempt carries a socket timeout
  from the policy, so a severed or black-holed connection costs a
  bounded wait, never a hang;
* **bounded exponential backoff with deterministic jitter** — retry
  delays grow geometrically up to a cap, with jitter derived from a
  seeded hash of ``(seed, token, attempt)`` rather than a global RNG,
  so two runs of the same sweep retry on the very same schedule (the
  repo-wide determinism discipline applied to failure handling);
* **per-endpoint circuit breaker** — after ``threshold`` *consecutive*
  failures the breaker opens and calls fail instantly
  (:class:`~repro.errors.CircuitOpenError`, no network I/O) until a
  cooldown elapses, then a single half-open probe decides between
  closing it and re-opening it.  A flapping endpoint therefore costs
  one bounded probe per cooldown instead of a full retry ladder per
  call.

None of this changes any simulation result: resilience wraps transport
only, and the callers that use it degrade to local execution (with a
crash-safe spool) when an endpoint stays down — see
``docs/resilience.md`` for the failure-model matrix.
"""

from __future__ import annotations

import dataclasses
import hashlib
import socket
import time
import typing as _t

from repro.errors import CircuitOpenError, ConfigError, UnavailableError

#: Exception families that mean "the transport failed" (retryable).
TRANSPORT_ERRORS: tuple[type[BaseException], ...] = (OSError, ConnectionError)


@dataclasses.dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounds for one logical network call.

    ``attempts``
        Total tries (first call + retries).
    ``base_delay`` / ``max_delay``
        The backoff ladder: delay before retry *k* (1-based) is
        ``min(base_delay * 2**(k-1), max_delay)``, jittered.
    ``jitter``
        Fraction of each delay replaced by deterministic jitter: the
        actual delay is ``delay * (1 - jitter + jitter * u)`` with
        ``u in [0, 1)`` derived from ``(seed, token, attempt)``.
    ``deadline``
        Per-attempt socket timeout in seconds (connect and each
        send/recv); a hung endpoint costs at most this per attempt.
    ``seed``
        Jitter seed — fixed per client, so retry schedules are
        reproducible run to run.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigError(f"attempts must be >= 1: {self.attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigError(
                f"bad backoff ladder: base={self.base_delay}, max={self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.deadline <= 0:
            raise ConfigError(f"deadline must be > 0: {self.deadline}")

    def delay(self, attempt: int, token: str = "") -> float:
        """The jittered backoff delay before retry ``attempt`` (1-based).

        Deterministic: the jitter fraction comes from a SHA-256 of
        ``(seed, token, attempt)``, never from a shared RNG, so the
        schedule is a pure function of the policy and the call site.
        """
        if attempt < 1:
            return 0.0
        raw = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        blob = f"{self.seed}:{token}:{attempt}".encode("utf-8")
        u = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2.0**64
        return raw * (1.0 - self.jitter + self.jitter * u)

    def delays(self, token: str = "") -> list[float]:
        """All backoff delays this policy would sleep, in order."""
        return [self.delay(k, token) for k in range(1, self.attempts)]


class CircuitBreaker:
    """Per-endpoint failure fuse with a half-open recovery probe.

    States: **closed** (calls flow; consecutive failures counted),
    **open** (calls refused instantly until ``cooldown`` seconds pass),
    **half-open** (exactly one probe call allowed; success closes the
    breaker, failure re-opens it for another cooldown).  The clock is
    injectable for tests; the default is ``time.monotonic`` — transport
    liveness only, never part of any simulation result.
    """

    def __init__(
        self,
        name: str = "",
        *,
        threshold: int = 5,
        cooldown: float = 2.0,
        clock: _t.Callable[[], float] | None = None,
    ) -> None:
        if threshold < 1:
            raise ConfigError(f"threshold must be >= 1: {threshold}")
        if cooldown <= 0:
            raise ConfigError(f"cooldown must be > 0: {cooldown}")
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        # Wall-clock liveness only (breaker cooldowns), never in results.
        self._clock = clock if clock is not None else time.monotonic
        self._failures = 0  # consecutive
        self._opened_at: float | None = None
        self._probing = False
        #: Times the breaker has tripped open (banner accounting).
        self.opened = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half-open"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state only the *first* caller gets a probe;
        concurrent callers are refused until the probe settles.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "open":
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._failures += 1
        if self._opened_at is not None:
            # A failed half-open probe: re-open for a fresh cooldown.
            self._opened_at = self._clock()
            self._probing = False
            self.opened += 1
        elif self._failures >= self.threshold:
            self._opened_at = self._clock()
            self._probing = False
            self.opened += 1

    def describe(self) -> str:
        label = f"breaker({self.name})" if self.name else "breaker"
        return f"{label}: {self.state}, {self.opened} open(s)"


_T = _t.TypeVar("_T")


def retry_call(
    fn: _t.Callable[[], _T],
    *,
    policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    token: str = "",
    retry_on: tuple[type[BaseException], ...] = TRANSPORT_ERRORS,
    sleep: _t.Callable[[float], None] = time.sleep,
    on_retry: _t.Callable[[int, BaseException], None] | None = None,
) -> _T:
    """Call ``fn`` under the retry policy and (optionally) a breaker.

    Raises :class:`~repro.errors.CircuitOpenError` without touching the
    network when the breaker refuses the call, and
    :class:`~repro.errors.UnavailableError` (chaining the last
    transport error) when every attempt failed.  Success and failure
    are reported to the breaker; non-transport exceptions propagate
    immediately and count as breaker failures only if they are
    transport errors (they are not).
    """
    policy = policy or RetryPolicy()
    if breaker is not None and not breaker.allow():
        raise CircuitOpenError(
            f"circuit breaker {breaker.name or token or '?'} is open "
            f"({breaker.threshold} consecutive failure(s); retry after "
            f"{breaker.cooldown:g}s cooldown)"
        )
    last: BaseException | None = None
    for attempt in range(1, policy.attempts + 1):
        try:
            result = fn()
        except retry_on as exc:
            last = exc
            if breaker is not None:
                breaker.record_failure()
            if attempt < policy.attempts:
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(policy.delay(attempt, token))
            continue
        if breaker is not None:
            breaker.record_success()
        return result
    raise UnavailableError(
        f"{token or 'endpoint'} unavailable after {policy.attempts} "
        f"attempt(s): {last}"
    ) from last


def connect_with_retry(
    host: str,
    port: int,
    *,
    policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    sleep: _t.Callable[[float], None] = time.sleep,
    on_retry: _t.Callable[[int, BaseException], None] | None = None,
) -> socket.socket:
    """A connected TCP socket, retried under the policy.

    Each attempt is deadline-bounded by ``policy.deadline``; the
    returned socket keeps that deadline as its timeout, so subsequent
    sends/recvs on it are bounded too.  This is what fixes the
    coordinator/worker startup race in loopback fleets: a worker that
    comes up a beat before its coordinator listens simply backs off and
    tries again instead of dying on connection-refused.
    """
    policy = policy or RetryPolicy()

    def _connect() -> socket.socket:
        return socket.create_connection((host, port), timeout=policy.deadline)

    return retry_call(
        _connect,
        policy=policy,
        breaker=breaker,
        token=f"{host}:{port}",
        sleep=sleep,
        on_retry=on_retry,
    )
