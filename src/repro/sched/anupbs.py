"""An ANUPBS-style suspend-resume batch scheduler.

Vayu's in-house scheduler manages jobs "using a suspend-resume scheme"
(paper section IV): instead of leaving cores idle for a large reservation
to drain, high-priority work suspends running lower-priority jobs and
takes their cores; the suspended jobs resume when capacity frees up.

The simulation is event-stepped on job arrivals and completions; it
tracks per-job wait times and machine utilisation — the quantities the
cloudburst policy and the ARRIVE-F throughput experiment consume.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing as _t

from repro.errors import SchedulerError
from repro.sched.job import Job, JobState


@dataclasses.dataclass(frozen=True, slots=True)
class SchedulerMetrics:
    """Summary statistics of one scheduling run."""

    jobs_completed: int
    mean_wait: float
    max_wait: float
    mean_turnaround: float
    utilisation: float
    suspensions: int

    def __str__(self) -> str:
        return (
            f"jobs={self.jobs_completed} mean_wait={self.mean_wait:.0f}s "
            f"max_wait={self.max_wait:.0f}s turnaround={self.mean_turnaround:.0f}s "
            f"util={100 * self.utilisation:.1f}% suspensions={self.suspensions}"
        )


class AnupbsScheduler:
    """Suspend-resume scheduler over a fixed pool of cores."""

    def __init__(self, total_cores: int, *, suspend_resume: bool = True) -> None:
        if total_cores < 1:
            raise SchedulerError(f"total_cores must be >= 1: {total_cores}")
        self.total_cores = total_cores
        self.suspend_resume = suspend_resume
        self.now = 0.0
        self.queue: list[Job] = []
        self.running: list[Job] = []
        self.suspended: list[Job] = []
        self.done: list[Job] = []
        self._busy_integral = 0.0
        self._last_time = 0.0

    # -- state helpers -----------------------------------------------------
    @property
    def cores_in_use(self) -> int:
        return sum(j.cores for j in self.running)

    @property
    def cores_free(self) -> int:
        return self.total_cores - self.cores_in_use

    def queued_wait_estimate(self, job: Job) -> float:
        """Rough start-delay estimate for a queued job: drain time of the
        work ahead of it at full machine throughput."""
        ahead = [j for j in self.queue if j.submit_time <= job.submit_time and j is not job]
        backlog = sum(j.cores * j.remaining for j in ahead)
        backlog += sum(j.cores * j.remaining for j in self.running + self.suspended)
        return backlog / self.total_cores

    # -- event mechanics --------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Add a job to the queue (time must not move backwards)."""
        if job.submit_time < self.now:
            raise SchedulerError(
                f"job {job.job_id} submitted in the past "
                f"({job.submit_time} < {self.now})"
            )
        self._advance(job.submit_time)
        job.state = JobState.QUEUED
        self.queue.append(job)
        self._schedule()

    def remove(self, job: Job) -> None:
        """Withdraw a queued job (used by the cloudburst policy)."""
        if job not in self.queue:
            raise SchedulerError(f"job {job.job_id} is not queued here")
        self.queue.remove(job)

    def _advance(self, until: float) -> None:
        """Run completions up to time ``until``."""
        while True:
            if not self.running:
                break
            next_finish = min(self.now + j.remaining for j in self.running)
            if next_finish > until:
                break
            self._progress_to(next_finish)
            finished = [j for j in self.running if j.remaining <= 1e-9]
            for job in finished:
                self.running.remove(job)
                job.state = JobState.DONE
                job.finish_time = self.now
                self.done.append(job)
            self._schedule()
        self._progress_to(until)

    def _progress_to(self, t: float) -> None:
        if t < self.now:
            raise SchedulerError("scheduler time went backwards")
        dt = t - self.now
        self._busy_integral += self.cores_in_use * dt
        for job in self.running:
            job.progress += dt
        self.now = t

    def _schedule(self) -> None:
        """Start/resume/suspend jobs per priority and free capacity."""
        # Resume suspended work first (it holds no cores while suspended).
        self.queue.sort(key=lambda j: (-j.priority, j.submit_time, j.job_id))
        for job in list(self.suspended):
            if job.cores <= self.cores_free:
                self.suspended.remove(job)
                job.state = JobState.RUNNING
                self.running.append(job)
        for job in list(self.queue):
            if job.cores > self.total_cores:
                raise SchedulerError(
                    f"job {job.job_id} needs {job.cores} cores; machine has "
                    f"{self.total_cores}"
                )
            if job.cores <= self.cores_free:
                self._start(job)
            elif self.suspend_resume and job.priority > 0:
                # Suspend enough lower-priority running jobs to fit.
                victims = sorted(
                    (j for j in self.running if j.priority < job.priority),
                    key=lambda j: (j.priority, -j.start_time if j.start_time else 0),
                )
                reclaim = 0
                chosen = []
                for victim in victims:
                    if self.cores_free + reclaim >= job.cores:
                        break
                    chosen.append(victim)
                    reclaim += victim.cores
                if self.cores_free + reclaim >= job.cores:
                    for victim in chosen:
                        self.running.remove(victim)
                        victim.state = JobState.SUSPENDED
                        victim.suspend_count += 1
                        self.suspended.append(victim)
                    self._start(job)

    def _start(self, job: Job) -> None:
        self.queue.remove(job)
        job.state = JobState.RUNNING
        if job.start_time is None:
            job.start_time = self.now
        self.running.append(job)

    def run_until_drained(self, horizon: float = float("inf")) -> None:
        """Process all remaining work (bounded by ``horizon``)."""
        guard = 0
        while (self.running or self.queue or self.suspended) and self.now < horizon:
            if not self.running:
                # Queued work that can never start means a sizing bug.
                raise SchedulerError(
                    f"scheduler wedged at t={self.now}: queue="
                    f"{[j.job_id for j in self.queue]}"
                )
            next_finish = min(self.now + j.remaining for j in self.running)
            self._advance(min(next_finish, horizon))
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - runaway guard
                raise SchedulerError("scheduler failed to converge")

    # -- reporting --------------------------------------------------------------
    def metrics(self) -> SchedulerMetrics:
        """Statistics over completed jobs."""
        if not self.done:
            raise SchedulerError("no completed jobs to report on")
        waits = [j.wait_time for j in self.done]
        turnarounds = [j.finish_time - j.submit_time for j in self.done]  # type: ignore[operator]
        util = self._busy_integral / (self.total_cores * self.now) if self.now else 0.0
        return SchedulerMetrics(
            jobs_completed=len(self.done),
            mean_wait=sum(waits) / len(waits),
            max_wait=max(waits),
            mean_turnaround=sum(turnarounds) / len(turnarounds),
            utilisation=util,
            suspensions=sum(j.suspend_count for j in self.done),
        )
