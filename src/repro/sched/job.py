"""Job descriptions for the batch-scheduling substrate."""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import SchedulerError


class JobState(enum.Enum):
    """Lifecycle of a batch job."""

    QUEUED = "queued"
    RUNNING = "running"
    SUSPENDED = "suspended"
    DONE = "done"
    BURSTED = "bursted"  # handed to a cloud resource


@dataclasses.dataclass(frozen=True, slots=True)
class JobProfile:
    """Resource-usage profile (what ARRIVE-F's online profiling yields).

    Fractions are of total runtime: ``comm_fraction`` in MPI,
    ``mem_boundedness`` the memory-bandwidth-bound share of compute;
    ``msg_small_fraction`` the share of MPI time in sub-eager-size
    messages (latency-sensitive work, the worst fit for cloud networks).
    """

    comm_fraction: float = 0.1
    mem_boundedness: float = 0.3
    msg_small_fraction: float = 0.5
    io_fraction: float = 0.02

    def __post_init__(self) -> None:
        for name in ("comm_fraction", "mem_boundedness", "msg_small_fraction", "io_fraction"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise SchedulerError(f"{name} must be in [0,1]: {v}")


@dataclasses.dataclass(slots=True)
class Job:
    """One batch job."""

    job_id: int
    user: str
    cores: int
    runtime_estimate: float
    submit_time: float
    priority: int = 0
    profile: JobProfile = JobProfile()
    #: Actual runtime (defaults to the estimate; schedulers don't know it).
    actual_runtime: float | None = None

    state: JobState = JobState.QUEUED
    start_time: float | None = None
    finish_time: float | None = None
    #: Accumulated execution progress (seconds of work completed).
    progress: float = 0.0
    suspend_count: int = 0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SchedulerError(f"job {self.job_id}: cores must be >= 1")
        if self.runtime_estimate <= 0:
            raise SchedulerError(f"job {self.job_id}: bad runtime estimate")
        if self.actual_runtime is None:
            self.actual_runtime = self.runtime_estimate

    @property
    def remaining(self) -> float:
        """Seconds of work left."""
        assert self.actual_runtime is not None
        return max(0.0, self.actual_runtime - self.progress)

    @property
    def wait_time(self) -> float:
        """Queue wait (requires the job to have started)."""
        if self.start_time is None:
            raise SchedulerError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time
