"""Cloudburst policy: offload suitable queued jobs to cloud clusters.

The decision logic follows the paper's motivation section directly:

* burst only when the local queue is painful (estimated wait above a
  threshold) — "in times of high demand, the use of a cloud as an
  alternative site may result in a shorter turnaround";
* burst only jobs whose profile fits commodity networking — "some user
  workloads ... might be satisfied by a cluster with a commodity
  network"; communication-heavy, latency-sensitive jobs stay home
  (ARRIVE-F-style classification on the job profile);
* account for the cloud slowdown (predicted with
  :mod:`repro.arrivef.predictor`) and the dollar cost, optionally using
  spot instances when the market is favourable.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cloud.ec2api import CC1_4XLARGE, InstanceType
from repro.cloud.pricing import SpotMarket
from repro.errors import SchedulerError
from repro.sched.anupbs import AnupbsScheduler
from repro.sched.job import Job, JobState


@dataclasses.dataclass(frozen=True, slots=True)
class BurstDecision:
    """Outcome of evaluating one job for bursting."""

    job_id: int
    burst: bool
    reason: str
    predicted_local_wait: float = 0.0
    predicted_cloud_runtime: float = 0.0
    predicted_cost_usd: float = 0.0
    use_spot: bool = False


class CloudBurstPolicy:
    """Evaluates queued jobs against a cloud offload option."""

    def __init__(
        self,
        *,
        wait_threshold: float = 3600.0,
        max_comm_fraction: float = 0.25,
        max_small_msg_fraction: float = 0.6,
        instance_type: InstanceType = CC1_4XLARGE,
        cloud_slowdown: _t.Callable[[Job], float] | None = None,
        spot_market: SpotMarket | None = None,
        spot_discount_required: float = 0.5,
    ) -> None:
        self.wait_threshold = wait_threshold
        self.max_comm_fraction = max_comm_fraction
        self.max_small_msg_fraction = max_small_msg_fraction
        self.instance_type = instance_type
        self.cloud_slowdown = cloud_slowdown or self._default_slowdown
        self.spot_market = spot_market
        self.spot_discount_required = spot_discount_required

    @staticmethod
    def _default_slowdown(job: Job) -> float:
        """Predicted cloud/HPC runtime ratio from the job profile.

        Compute-bound work runs at parity (same-generation silicon);
        communication inflates by a factor that grows with the share of
        small (latency-bound) messages — the paper's central finding.
        """
        p = job.profile
        comm_penalty = 3.0 + 12.0 * p.msg_small_fraction
        return (1.0 - p.comm_fraction) + p.comm_fraction * comm_penalty

    def nodes_for(self, job: Job) -> int:
        """Cloud nodes needed for the job's core count."""
        return -(-job.cores // self.instance_type.vcpus)

    def evaluate(self, scheduler: AnupbsScheduler, job: Job) -> BurstDecision:
        """Decide whether ``job`` should burst right now."""
        if job.state is not JobState.QUEUED:
            raise SchedulerError(f"job {job.job_id} is not queued")
        wait = scheduler.queued_wait_estimate(job)
        if wait < self.wait_threshold:
            return BurstDecision(job.job_id, False, "local wait acceptable", wait)
        profile = job.profile
        if profile.comm_fraction > self.max_comm_fraction:
            return BurstDecision(
                job.job_id, False,
                f"too communication-bound ({profile.comm_fraction:.0%} MPI)",
                wait,
            )
        if (
            profile.comm_fraction > 0.1
            and profile.msg_small_fraction > self.max_small_msg_fraction
        ):
            return BurstDecision(
                job.job_id, False,
                "latency-sensitive (small-message dominated)", wait,
            )
        slowdown = self.cloud_slowdown(job)
        cloud_runtime = job.remaining * slowdown
        if cloud_runtime >= wait + job.remaining:
            return BurstDecision(
                job.job_id, False,
                f"cloud slowdown x{slowdown:.1f} beats nothing", wait, cloud_runtime,
            )
        nodes = self.nodes_for(job)
        hours = cloud_runtime / 3600.0
        rate = self.instance_type.hourly_usd
        use_spot = False
        if self.spot_market is not None:
            spot = self.spot_market.current_price(self.instance_type, scheduler.now)
            if spot <= rate * self.spot_discount_required:
                rate, use_spot = spot, True
        billed_hours = max(1, int(-(-hours // 1)))
        cost = nodes * billed_hours * rate
        return BurstDecision(
            job.job_id, True,
            f"burst: save ~{(wait + job.remaining - cloud_runtime) / 60:.0f} min",
            wait, cloud_runtime, cost, use_spot,
        )

    def apply(
        self, scheduler: AnupbsScheduler, jobs: _t.Iterable[Job]
    ) -> list[BurstDecision]:
        """Evaluate jobs; remove the bursted ones from the local queue."""
        decisions = []
        for job in jobs:
            decision = self.evaluate(scheduler, job)
            decisions.append(decision)
            if decision.burst:
                scheduler.remove(job)
                job.state = JobState.BURSTED
                job.start_time = scheduler.now
                job.finish_time = scheduler.now + decision.predicted_cloud_runtime
        return decisions
