"""Batch scheduling: jobs, the ANUPBS-style scheduler, cloudbursting.

The paper's motivation (section II) is operational: the supercomputer is
"a highly contended resource", some workloads "may not make good use of
the cluster", and a facility that can package its environment into VMs
"gains the ability to cloudburst as a means of responding to peak
demand".  This subpackage provides the substrate those arguments run on:

* :mod:`repro.sched.job` — job descriptions with resource shapes and
  communication/memory profiles (the ARRIVE-F classification inputs);
* :mod:`repro.sched.anupbs` — a suspend-resume batch scheduler in the
  style of Vayu's ANUPBS;
* :mod:`repro.sched.cloudburst` — the burst policy: when queueing delay
  exceeds a threshold and a job's profile fits commodity networking,
  run it on a (Star)cluster in the cloud instead, optionally on spot
  instances.
"""

from repro.sched.job import Job, JobProfile, JobState
from repro.sched.anupbs import AnupbsScheduler, SchedulerMetrics
from repro.sched.cloudburst import BurstDecision, CloudBurstPolicy

__all__ = [
    "AnupbsScheduler",
    "BurstDecision",
    "CloudBurstPolicy",
    "Job",
    "JobProfile",
    "JobState",
    "SchedulerMetrics",
]
