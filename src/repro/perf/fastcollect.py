"""Analytic collective fast-forward (closed-form whole-phase dispatch).

The collective cost models in :mod:`repro.smpi.collectives.algorithms`
are analytic, so the per-event engine already prices one collective with
a handful of heap entries — the remaining cost of a collective-heavy
workload is *per-operation Python overhead*: rebuilding the
:class:`~repro.smpi.collectives.algorithms.CollectiveContext`, walking
the memo, re-pricing per-rank compute bursts, and the generator + IPM
bookkeeping around every operation.  ``BENCH_engine.json`` put the
collectives workload ~23x below plain timeouts; this module closes most
of that gap by fast-forwarding whole collective *phases*:

* **Closed-form completion** — the completing rank computes the phase's
  absolute completion time arithmetically and pre-triggers the shared
  event for that instant (:meth:`~repro.sim.events.Event.schedule_at`,
  the same machinery behind ``Engine.wake_at`` / iteration replay):
  one heap entry per collective instead of a timeout + trigger pair.
* **Cached phase pricing** — the context, the per-``(memo_key, nbytes)``
  duration, the per-rank compute cost and the IPM accounting buckets of
  a steady phase are all cached per communicator, so the steady loop
  reduces to dictionary hits and two heap entries per iteration.
* **Batched same-phase dispatch** — when every rank of a communicator
  wakes and re-sleeps in lockstep (the compute/collective cadence of the
  NPB kernels), the engine coalesces the identical same-instant sleeps
  onto one pooled token (:attr:`~repro.sim.engine.Engine.batch_sleeps`),
  and :meth:`Comm.prime_collectives` prices whole message-size sweeps as
  one numpy vector pass (:mod:`repro.smpi.collectives.vectorized`).

Byte identity
-------------
Fast-forwarding is a pure optimization: per-rank wake times, IPM
counters and rendered reports are bit-identical to the per-operation
path.  That only holds when nothing observes or perturbs the skipped
per-event execution, so the fast path shares replay's disqualifier
(:func:`repro.perf.replay.perturbation_reason`): a sanitizer, a fault
schedule, timeline tracing, the engine tracer, or a platform that
samples randomness per message/burst all force the per-operation path,
with the reason recorded in the :class:`FastCollectReport`.  Ad-hoc
collectives with no ``memo_key`` (cost not determined by
``(ctx, nbytes)``) also take the per-operation path.

Enabling
--------
Off by default.  Turn it on per world (``MpiWorld(..., fastcollect=True)``),
per scope (:func:`fastcollect_scope`), or globally via
``REPRO_FASTCOLLECT=1`` / the ``--fastcollect`` CLI flag.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import typing as _t

from repro.errors import ConfigError, MpiError
from repro.ipm.monitor import CallKey
from repro.perf.replay import perturbation_reason

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.ipm.monitor import CallStats, RankProfile
    from repro.sim.events import Event
    from repro.smpi.collectives.algorithms import CollectiveContext
    from repro.smpi.comm import Comm
    from repro.smpi.world import MpiWorld

#: Environment variable enabling the fast path (inherited by ``--jobs``
#: pool workers, mirroring ``REPRO_REPLAY`` / ``REPRO_SANITIZE``).
ENV_FLAG = "REPRO_FASTCOLLECT"


def fastcollect_enabled() -> bool:
    """Default for worlds that don't pass ``fastcollect=`` explicitly."""
    return os.environ.get(ENV_FLAG, "").strip() not in ("", "0")  # lint-ok: DET008 feature gate, read before simulation starts


#: Reports of worlds finalized inside the innermost scope.
_SCOPE_REPORTS: list["FastCollectReport"] | None = None


@contextlib.contextmanager
def fastcollect_scope(enabled: bool = True) -> _t.Iterator[list["FastCollectReport"]]:
    """Force the fast path on (or off) inside the block; yields reports.

    Sets ``REPRO_FASTCOLLECT`` so pool workers forked inside the scope
    (``--jobs N``) make the same decision.  Every world finalized in this
    process while the scope is open appends its
    :class:`FastCollectReport` to the yielded list.
    """
    global _SCOPE_REPORTS
    reports: list[FastCollectReport] = []
    prev_env = os.environ.get(ENV_FLAG)
    prev_reports = _SCOPE_REPORTS
    os.environ[ENV_FLAG] = "1" if enabled else "0"
    _SCOPE_REPORTS = reports
    try:
        yield reports
    finally:
        _SCOPE_REPORTS = prev_reports
        if prev_env is None:
            os.environ.pop(ENV_FLAG, None)
        else:
            os.environ[ENV_FLAG] = prev_env


def _note_report(report: "FastCollectReport") -> None:
    if _SCOPE_REPORTS is not None:
        _SCOPE_REPORTS.append(report)  # lint-ok: DET007 scope-local report collection, never in results


@dataclasses.dataclass(frozen=True, slots=True)
class FastCollectReport:
    """What the collective fast-forward did for one world."""

    #: False when the fast path refused to engage (see :attr:`reason`).
    active: bool
    #: Why the fast path was inactive (None when active).
    reason: str | None
    #: Collective operations completed through the closed-form path.
    fast_ops: int
    #: Collective operations that took the per-operation path (no memo
    #: key) while the fast path was active.
    slow_ops: int

    @property
    def total_ops(self) -> int:
        return self.fast_ops + self.slow_ops

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if not self.active:
            return f"fastcollect off ({self.reason})"
        if not self.total_ops:
            return "fastcollect on (no collectives)"
        return (
            f"fastcollect {self.fast_ops}/{self.total_ops} collectives "
            f"fast-forwarded"
        )


class _Phase:
    """In-flight state of one fast-path collective instance."""

    __slots__ = ("key", "left", "event", "contribs", "any_contrib", "nbytes_seen")

    def __init__(self, key: tuple[str, int], expected: int, event: "Event") -> None:
        self.key = key
        self.left = expected
        self.event = event
        self.contribs: dict[int, _t.Any] = {}
        self.any_contrib = False
        self.nbytes_seen: float = 0.0


class _CommCache:
    """Steady-phase caches of one communicator.

    Everything here is a pure function of the communicator and the
    (engaged, draw-free) platform, so caching moves work earlier without
    changing any value: the context is constant after placement, a
    ``(memo_key, nbytes)`` duration is exactly what the memo would
    return, and the IPM buckets are the same objects ``record_mpi``
    would look up (invalidated by the profile's region-stack version).
    """

    __slots__ = ("size", "group", "profiles", "ctx", "durations", "buckets", "state", "primed")

    def __init__(self, size: int, group: list[int], profiles: list["RankProfile"],
                 ctx: "CollectiveContext") -> None:
        self.size = size
        self.group = group
        self.profiles = profiles
        self.ctx = ctx
        #: ``(memo_key, nbytes) -> duration`` — the phase-pricing cache.
        self.durations: dict[tuple[_t.Hashable, float], float] = {}
        #: ``(call name, int nbytes) -> [per-local-rank (stack version,
        #: tuple of CallStats) | None]`` — the IPM accounting fast path.
        self.buckets: dict[tuple[str, int], list] = {}
        #: The collective currently in flight (at most one per comm: a
        #: phase completes, synchronously, before any rank can enter the
        #: next one).
        self.state: _Phase | None = None
        #: ``(op, sizes)`` tuples already primed (idempotence guard).
        self.primed: set[tuple[str, tuple[float, ...]]] = set()


class FastCollect:
    """Per-world closed-form collective dispatcher.

    Constructed last in ``MpiWorld.__init__`` (alongside the replay
    recorder) so every disqualifier is already known; when one applies
    the instance is *inactive* — every collective takes the
    per-operation path and the report merely records why.
    """

    def __init__(self, world: "MpiWorld") -> None:
        self.world = world
        self.reason = perturbation_reason(world)
        self.active = self.reason is None
        self.fast_ops = 0
        self.slow_ops = 0
        self._comms: dict[int, _CommCache] = {}
        #: ``(rank, burst args) -> seconds`` — per-rank compute pricing
        #: cache.  Safe only because an engaged platform is draw-free:
        #: the noise streams ``compute_seconds`` would consume are
        #: dedicated to it, and every value drawn from them multiplies
        #: to exactly 0.0 on a deterministic variant.
        self._compute_cache: dict[tuple, float] = {}
        if self.active:
            world.engine.batch_sleeps = True

    # -- per-comm cache ----------------------------------------------------
    def _comm_cache(self, comm: "Comm") -> _CommCache:
        cache = self._comms.get(comm.comm_id)
        if cache is None:
            world = self.world
            group = comm.group
            monitor = world.monitor
            cache = _CommCache(
                size=len(group),
                group=group,
                profiles=[monitor[g] for g in group],
                ctx=world._collective_context(comm),
            )
            self._comms[comm.comm_id] = cache
        return cache

    # -- the fast collective ------------------------------------------------
    def collective(
        self,
        comm: "Comm",
        name: str,
        nbytes: float,
        time_fn: _t.Callable[["CollectiveContext", float], float],
        contribution: _t.Any,
        finisher: _t.Callable[[dict[int, _t.Any]], dict[int, _t.Any]] | None,
        memo_key: _t.Hashable,
        null_ok: bool,
    ) -> _t.Generator:
        """Closed-form twin of ``MpiWorld._collective_slow``.

        Identical per-rank wake times and IPM counters, two orders less
        bookkeeping: the completing rank prices the phase from the
        per-comm duration cache and pre-triggers the shared event for
        the absolute completion instant — no ``call_at`` timeout, no
        per-operation context rebuild, no memo walk on steady state.

        ``null_ok`` marks finishers that map all-``None`` contributions
        to all-``None`` results, letting value-free steady loops skip
        the finisher entirely; finishers with side effects or non-None
        null results (``gather``/``allgather``/``split``) pass False.
        """
        world = self.world
        eng = world.engine
        my_local = comm.rank
        seq = comm._seq
        comm._seq = seq + 1
        cache = self._comm_cache(comm)
        key = (name, seq)
        phase = cache.state
        if phase is None:
            phase = _Phase(key, cache.size, eng.event(f"coll:{name}:{seq}"))
            cache.state = phase
        elif phase.key != key:
            raise MpiError(
                f"rank {my_local} entered collective {name} seq {seq} while "
                f"{phase.key[0]} seq {phase.key[1]} is in flight on comm "
                f"{comm.comm_id}"
            )
        if my_local in phase.contribs:
            raise MpiError(
                f"rank {my_local} entered collective {name} seq {seq} twice"
            )
        arrival = eng.now
        phase.contribs[my_local] = contribution
        if contribution is not None:
            phase.any_contrib = True
        if nbytes > phase.nbytes_seen:
            phase.nbytes_seen = nbytes
        phase.left -= 1

        if phase.left == 0:
            cache.state = None
            dkey = (memo_key, phase.nbytes_seen)
            duration = cache.durations.get(dkey)
            if duration is None:
                duration = world.memo.time(memo_key, cache.ctx, phase.nbytes_seen, time_fn)
                if duration < 0:
                    raise MpiError(f"negative collective time from {name}: {duration}")
                cache.durations[dkey] = duration
            # The engine clock is monotone, so the last arrival is the
            # latest one — this rank's.  The slow path schedules a
            # timeout at now + (completion - now); reproduce that float
            # round trip exactly so wake times match bit for bit.
            completion = arrival + duration
            if finisher is not None and (phase.any_contrib or not null_ok):
                results = finisher(phase.contribs)
            else:
                results = None
            phase.event.schedule_at(arrival + (completion - arrival), results)
            self.fast_ops += 1

        results = yield phase.event
        duration = eng.now - arrival
        # IPM fast record: reuse the CallStats buckets resolved on the
        # first occurrence of (call, size) for this rank, as long as the
        # rank's region stack hasn't changed since.
        n_int = int(nbytes)
        profile = cache.profiles[my_local]
        version = profile._stack_version
        bkey = (name, n_int)
        entry = cache.buckets.get(bkey)
        if entry is None:
            entry = [None] * cache.size
            cache.buckets[bkey] = entry
        cached = entry[my_local]
        if cached is not None and cached[0] == version:
            for bucket in cached[1]:
                bucket.count += 1
                bucket.time += duration
        else:
            profile.record_mpi(name, n_int, duration)
            ck = CallKey(name, n_int)
            entry[my_local] = (
                version,
                tuple(stats.mpi[ck] for stats in profile._targets()),
            )
        return results.get(my_local) if results else None

    # -- compute pricing ----------------------------------------------------
    def compute_seconds(
        self, rank: int, flops: float, mem_bytes: float, working_set: float, access: str
    ) -> float:
        """Cached :meth:`Platform.compute_seconds` for steady bursts."""
        key = (rank, flops, mem_bytes, working_set, access)
        cache = self._compute_cache
        value = cache.get(key)
        if value is None:
            value = self.world.platform.compute_seconds(
                rank, flops, mem_bytes, working_set, access
            )
            cache[key] = value
        return value

    # -- vectorized priming --------------------------------------------------
    def prime(self, comm: "Comm", op: str, sizes: _t.Sequence[float]) -> int:
        """Price ``op`` for every size in ``sizes`` in one numpy pass.

        Seeds both the world's :class:`~repro.perf.memo.CollectiveMemo`
        and this communicator's duration cache, so the per-size first
        occurrence of the collective is already a cache hit.  Returns
        the number of sizes newly priced (0 when inactive or already
        primed).  ``op`` must name a vectorized model
        (:data:`~repro.smpi.collectives.vectorized.VECTORIZED`).
        """
        if not self.active or not sizes:
            return 0
        from repro.smpi.collectives.vectorized import VECTORIZED

        fn = VECTORIZED.get(op)
        if fn is None:
            raise ConfigError(
                f"no vectorized cost model for {op!r}; "
                f"expected one of {sorted(VECTORIZED)}"
            )
        cache = self._comm_cache(comm)
        key_sizes = tuple(float(s) for s in sizes)
        pkey = (op, key_sizes)
        if pkey in cache.primed:
            return 0
        cache.primed.add(pkey)
        import numpy as np

        arr = np.array(key_sizes, dtype=np.float64)
        values = fn(cache.ctx, arr)
        durations = cache.durations
        memo = self.world.memo
        priced = 0
        for n, v in zip(key_sizes, values.tolist()):
            if v < 0:
                raise MpiError(f"negative collective time from {op}: {v}")
            dkey = (op, n)
            if dkey not in durations:
                durations[dkey] = v
                priced += 1
            memo.seed(op, cache.ctx, n, v)
        return priced

    # -- reporting -----------------------------------------------------------
    def finalize_report(self) -> FastCollectReport:
        """Build the report and register it with any open scope."""
        report = FastCollectReport(
            active=self.active,
            reason=self.reason,
            fast_ops=self.fast_ops,
            slow_ops=self.slow_ops,
        )
        _note_report(report)
        return report
