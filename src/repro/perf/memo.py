"""Deterministic memoization of repeated sub-simulation costs.

OSU/NPB sweeps re-evaluate the same collective configurations thousands
of times: every steady-state iteration of a benchmark issues the same
operations with the same message sizes on the same communicator layout,
and a grid sweep repeats that across process counts and platforms.  The
analytic cost of one collective is a *pure* function of

``(algorithm key, CollectiveContext, nbytes)``

where the :class:`~repro.smpi.collectives.algorithms.CollectiveContext`
already pins down everything cost-relevant — platform fabric and
shared-memory specs, communicator size, node/rank mapping (``nnodes``,
``rpn``), the hypervisor's *sampled* extra latency and bandwidth
factors.  Keying on the full context makes the cache exact by
construction:

* a hit returns bit-for-bit the value a fresh evaluation would produce
  (so cache-warm and cache-cold runs render identically);
* configurations from different platforms or rank mappings can never
  collide, because their contexts differ;
* stochastic per-message perturbations (e.g. ESX's vSwitch scheduling
  tail) are part of the key, so virtualised multi-node runs simply miss
  rather than reuse a stale sample — determinism is never traded for
  hit rate.

There is consequently no time-based invalidation: entries can only
become garbage (never wrong), and :meth:`CollectiveMemo.clear` exists
for benchmarking and for bounding memory between unrelated sweeps.
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.collectives.algorithms import CollectiveContext

#: A cost function ``f(ctx, nbytes) -> seconds``.
TimeFn = _t.Callable[["CollectiveContext", float], float]


@dataclasses.dataclass(frozen=True, slots=True)
class MemoStats:
    """Hit/miss counters of one cache."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the table (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class CollectiveMemo:
    """Exact cache of collective costs shared across simulations.

    Parameters
    ----------
    max_entries:
        Soft cap on table size; once reached, new values are computed
        but not stored (existing entries keep serving hits).  This
        bounds memory on open-ended sweeps without any eviction
        nondeterminism.
    enabled:
        When false every lookup just evaluates the cost function —
        useful for A/B-ing the cache in benchmarks.
    """

    __slots__ = ("_table", "hits", "misses", "max_entries", "enabled")

    def __init__(self, max_entries: int = 262_144, enabled: bool = True) -> None:
        self._table: dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0
        self.max_entries = max_entries
        self.enabled = enabled

    def time(
        self,
        algo_key: _t.Hashable,
        ctx: "CollectiveContext",
        nbytes: float,
        time_fn: TimeFn,
    ) -> float:
        """The cost ``time_fn(ctx, nbytes)``, served from the table when
        the same ``(algo_key, ctx, nbytes)`` has been priced before.

        ``algo_key`` must uniquely identify the cost *function* (plus any
        extra parameters it closes over, e.g. ``alltoallv``'s
        ``max_pair``); the caller owns that contract.
        """
        if not self.enabled:
            return time_fn(ctx, nbytes)
        key = (algo_key, ctx, nbytes)
        table = self._table
        cached = table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = time_fn(ctx, nbytes)
        if len(table) < self.max_entries:
            table[key] = value
        return value

    def seed(
        self,
        algo_key: _t.Hashable,
        ctx: "CollectiveContext",
        nbytes: float,
        value: float,
    ) -> None:
        """Pre-populate one entry without touching the hit/miss counters.

        Used by vectorized priming (:meth:`Comm.prime_collectives`): the
        caller vouches that ``value`` is bit-equal to what
        ``time_fn(ctx, nbytes)`` would return — the same contract
        ``algo_key`` already carries.  Existing entries are never
        overwritten and the ``max_entries`` cap is respected, so seeding
        can only move evaluations earlier, never change a result.
        """
        if not self.enabled:
            return
        table = self._table
        key = (algo_key, ctx, nbytes)
        if key not in table and len(table) < self.max_entries:
            table[key] = value

    def clear(self) -> None:
        """Drop all entries and counters."""
        self._table.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> MemoStats:
        """A snapshot of the cache's counters."""
        return MemoStats(hits=self.hits, misses=self.misses, entries=len(self._table))

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<CollectiveMemo entries={s.entries} hits={s.hits} "
            f"misses={s.misses} hit_rate={s.hit_rate:.1%}>"
        )


#: Process-wide cache shared by every MpiWorld (and therefore across all
#: runs of a sweep).  Parallel sweep workers each get their own copy in
#: their own process; warm or cold, the rendered results are identical.
_DEFAULT = CollectiveMemo()


def default_memo() -> CollectiveMemo:
    """The process-wide shared collective-cost cache."""
    return _DEFAULT


def clear_default_memo() -> None:
    """Reset the shared cache (benchmark hygiene; results never change)."""
    _DEFAULT.clear()


def memo_stats() -> MemoStats:
    """Counters of the shared cache."""
    return _DEFAULT.stats()
