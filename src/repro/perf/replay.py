"""Steady-state iteration capture & replay (fast-forwarding the simulator).

The paper's methodology runs "the minimal number of iterations required
to accurately project long-term simulations" precisely because steady
iterations are statistically identical.  The simulator can exploit the
same fact: once consecutive steady-region iterations of every rank are
*provably* identical, the remaining ones need not be re-simulated — the
clock, the IPM counters and the region timers can simply be advanced by
the captured per-iteration deltas (SimGrid's SMPI calls this iteration
sampling).

How it works
------------
Benchmarks mark their steady loops with
:meth:`repro.smpi.comm.Comm.iteration_scope`.  When a
:class:`ReplayRecorder` is attached to the world *and* the platform is
replay-safe, the first ``k`` (default 2) iterations of each marked loop
are simulated normally while the recorder snapshots each rank's
:class:`~repro.ipm.monitor.RankProfile` at the loop boundaries.  Each
pair of consecutive captures is compared — same regions, same MPI call
keys, same counts, and float times within a tight relative tolerance
(consecutive iterations of even a fully deterministic run differ at the
ULP level, because collective completions are computed against absolute
time).  Once every rank's last two iterations match, the first rank to
reach the next loop boundary records a shared *replay* decision for that
iteration index; every rank then applies its own captured deltas for all
remaining iterations in one pass and yields a single
:meth:`~repro.sim.engine.Engine.wake_at` event instead of an iteration's
worth of heap traffic.  Normal simulation resumes after the loop for
finalize.

When it falls back
------------------
Replay is a pure optimization and never a semantics change, so the
recorder refuses to engage — every iteration is simulated — whenever the
run is observed or perturbed:

* the platform samples randomness (OS noise, hypervisor jitter,
  masked-NUMA burst noise) — see
  :meth:`repro.platforms.base.Platform.replay_unsafe_reason`; note that
  *every registered paper platform* is stochastic, so replay only
  engages on explicitly quietened variants (:func:`deterministic_variant`);
* the MPI sanitizer, the fault injector, timeline tracing or the engine
  tracer is attached;
* a loop never goes stationary (the decision simply stays "simulate").

Enabling
--------
Replay is **off by default**.  Turn it on per world
(``MpiWorld(..., replay=True)``), per scope (:func:`replay_scope`, which
also makes ``--jobs`` pool workers inherit the setting), or globally via
``REPRO_REPLAY=1`` / the ``--replay`` CLI flag.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.ipm.monitor import CallKey, RankProfile
    from repro.platforms.base import PlatformSpec
    from repro.smpi.comm import Comm
    from repro.smpi.world import MpiWorld

    _Delta = dict[str, tuple[float, float, float, dict[CallKey, tuple[int, float]]]]
    _Capture = tuple[float, "_Delta"]

#: Environment variable enabling replay (inherited by ``--jobs`` pool
#: workers, mirroring ``REPRO_SANITIZE`` / ``REPRO_FAULTS``).
ENV_FLAG = "REPRO_REPLAY"

#: Iterations of a marked loop that must be captured (and match) before
#: fast-forwarding is even considered.
DEFAULT_K = 2

#: Relative tolerance for comparing captured float times.  Structural
#: fields (regions, call keys, counts) must match exactly; durations of
#: consecutive iterations drift at the ULP level because collective
#: completions are computed against absolute time.
DEFAULT_REL_TOL = 1e-9


def replay_enabled() -> bool:
    """Default for worlds that don't pass ``replay=`` explicitly."""
    return os.environ.get(ENV_FLAG, "").strip() not in ("", "0")  # lint-ok: DET008 feature gate, read before simulation starts


#: Reports of worlds finalized inside the innermost :func:`replay_scope`.
_SCOPE_REPORTS: list["ReplayReport"] | None = None


@contextlib.contextmanager
def replay_scope(enabled: bool = True) -> _t.Iterator[list["ReplayReport"]]:
    """Force replay on (or off) inside the block; yields the reports.

    Sets ``REPRO_REPLAY`` so pool workers forked inside the scope
    (``--jobs N``) make the same decision.  Every world finalized in this
    process while the scope is open appends its :class:`ReplayReport` to
    the yielded list (worker-process worlds report in their own process).
    """
    global _SCOPE_REPORTS
    reports: list[ReplayReport] = []
    prev_env = os.environ.get(ENV_FLAG)
    prev_reports = _SCOPE_REPORTS
    os.environ[ENV_FLAG] = "1" if enabled else "0"
    _SCOPE_REPORTS = reports
    try:
        yield reports
    finally:
        _SCOPE_REPORTS = prev_reports
        if prev_env is None:
            os.environ.pop(ENV_FLAG, None)
        else:
            os.environ[ENV_FLAG] = prev_env


def _note_report(report: "ReplayReport") -> None:
    if _SCOPE_REPORTS is not None:
        _SCOPE_REPORTS.append(report)  # lint-ok: DET007 scope-local report collection, never in results


def perturbation_reason(world: "MpiWorld") -> str | None:
    """Why analytic fast-forwarding must not engage on ``world``.

    The shared disqualifier of both iteration replay and the collective
    fast-forward (:mod:`repro.perf.fastcollect`): any observer or
    perturbation of the per-event execution — the MPI sanitizer, an
    armed fault schedule, timeline tracing, the engine tracer, or a
    platform that samples randomness per message/computation — means
    skipping events would change what is observed or sampled.  Returns
    ``None`` when every cost is draw-free and unobserved.
    """
    if world.sanitizer is not None:
        return "MPI sanitizer attached"
    if world.fault_injector is not None:
        return "fault schedule installed"
    if world.timeline is not None:
        return "timeline tracing enabled"
    if world.engine.tracer is not None:
        return "engine tracer attached"
    return world.platform.replay_unsafe_reason()


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class LoopStats:
    """Outcome of one marked steady loop."""

    label: str
    total: int
    #: Iterations dispatched through the event heap (captures included).
    simulated: int
    #: Iterations fast-forwarded analytically.
    replayed: int


@dataclasses.dataclass(frozen=True, slots=True)
class ReplayReport:
    """What the recorder did for one world."""

    #: False when the recorder refused to engage (see :attr:`reason`).
    active: bool
    #: Why the recorder was inactive (None when active).
    reason: str | None
    loops: tuple[LoopStats, ...]

    @property
    def total_iters(self) -> int:
        return sum(s.total for s in self.loops)

    @property
    def replayed_iters(self) -> int:
        return sum(s.replayed for s in self.loops)

    @property
    def simulated_iters(self) -> int:
        return sum(s.simulated for s in self.loops)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if not self.active:
            return f"replay off ({self.reason})"
        if not self.loops:
            return "replay on (no marked steady loops)"
        hits = sum(1 for s in self.loops if s.replayed)
        return (
            f"replay {self.replayed_iters}/{self.total_iters} iters "
            f"fast-forwarded ({hits}/{len(self.loops)} loops)"
        )


def perf_banner(
    reports: "_t.Sequence[ReplayReport] | None" = None,
    fastcollect: _t.Sequence[_t.Any] | None = None,
) -> str:
    """The ``[perf: ...]`` batch-banner line: memo cache + replay +
    collective fast-forward stats.

    ``reports`` / ``fastcollect`` are the report lists collected by
    :func:`replay_scope` / :func:`repro.perf.fastcollect.fastcollect_scope`;
    passing ``None`` omits that segment (the corresponding layer was not
    requested for the batch).
    """
    from repro.perf.memo import memo_stats

    stats = memo_stats()
    lookups = stats.hits + stats.misses
    if lookups:
        memo_part = f"memo {stats.hit_rate:.0%} hit ({stats.hits}/{lookups})"
    else:
        memo_part = "memo idle"
    parts = [memo_part]
    if reports is not None:
        total = sum(r.total_iters for r in reports)
        if not reports:
            replay_part = "replay saw no worlds"
        elif total:
            replayed = sum(r.replayed_iters for r in reports)
            replay_part = f"replay {replayed}/{total} iters fast-forwarded"
            fallbacks = sum(1 for r in reports if not r.active)
            if fallbacks:
                replay_part += f" · {fallbacks}/{len(reports)} world(s) fell back"
        else:
            reasons = sorted({r.reason for r in reports if r.reason is not None})
            detail = f": {reasons[0]}" if reasons else ""
            replay_part = f"replay idle across {len(reports)} world(s){detail}"
        parts.append(replay_part)
    if fastcollect is not None:
        fc_reports = fastcollect
        ops = sum(r.fast_ops + r.slow_ops for r in fc_reports)
        if not fc_reports:
            fc_part = "fastcollect saw no worlds"
        elif ops:
            fast = sum(r.fast_ops for r in fc_reports)
            fc_part = f"fastcollect {fast}/{ops} collectives fast-forwarded"
            fallbacks = sum(1 for r in fc_reports if not r.active)
            if fallbacks:
                fc_part += f" · {fallbacks}/{len(fc_reports)} world(s) fell back"
        else:
            reasons = sorted({r.reason for r in fc_reports if r.reason is not None})
            detail = f": {reasons[0]}" if reasons else ""
            fc_part = f"fastcollect idle across {len(fc_reports)} world(s){detail}"
        parts.append(fc_part)
    return "perf: " + " · ".join(parts)


# ---------------------------------------------------------------------------
# Stationarity check
# ---------------------------------------------------------------------------

def _close(a: float, b: float, tol: float) -> bool:
    if a == b:
        return True
    m = abs(a) if abs(a) >= abs(b) else abs(b)
    return abs(a - b) <= tol * m


def _stationary(prev: "_Capture", cur: "_Capture", tol: float) -> bool:
    """Do two consecutive iteration captures describe the same iteration?

    Structure (regions, MPI call keys, call counts) must match exactly;
    times and the wall delta must agree within ``tol`` relative.
    """
    (dt1, d1), (dt2, d2) = prev, cur
    if not _close(dt1, dt2, tol):
        return False
    if d1.keys() != d2.keys():
        return False
    for name, (w1, c1, io1, m1) in d1.items():
        w2, c2, io2, m2 = d2[name]
        if m1.keys() != m2.keys():
            return False
        if not (_close(w1, w2, tol) and _close(c1, c2, tol) and _close(io1, io2, tol)):
            return False
        for key, (n1, t1) in m1.items():
            n2, t2 = m2[key]
            if n1 != n2 or not _close(t1, t2, tol):
                return False
    return True


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------

class _LoopSession:
    """Shared state of one marked loop across the ranks of a communicator.

    The replay decision for an iteration index is computed once, by the
    first rank to reach that loop boundary, and then read by every other
    rank: ranks of one communicator can never disagree, so a replaying
    rank never skips a collective some simulating rank is waiting in.
    The deciding rank requires *every* rank's last two captured
    iterations to match — ranks that are still inside an earlier
    iteration simply haven't deposited enough captures yet, which keeps
    the decision "simulate" for that boundary.
    """

    __slots__ = (
        "recorder", "label", "total", "k",
        "_last", "_ncaps", "_start", "_verdict", "_decision", "_ffwd",
        "replay_from",
    )

    def __init__(self, recorder: "ReplayRecorder", size: int, label: str, total: int) -> None:
        self.recorder = recorder
        self.label = label
        self.total = total
        self.k = recorder.k
        self._last: list["_Capture | None"] = [None] * size
        self._ncaps = [0] * size
        self._start: list[tuple[float, _t.Any] | None] = [None] * size
        self._verdict: list[bool | None] = [None] * size
        self._decision: dict[int, str] = {}
        self._ffwd = [False] * size
        #: Iteration index the loop was fast-forwarded from (None: never).
        self.replay_from: int | None = None

    def _profile(self, comm: "Comm") -> "RankProfile":
        return self.recorder.world.monitor[comm.group[comm.rank]]

    def _all_stationary(self) -> bool:
        return all(n >= self.k for n in self._ncaps) and all(self._verdict)

    def begin(self, comm: "Comm", it: int) -> str:
        """Called at the top of iteration ``it``; returns the action:
        ``"sim"`` (run and capture), ``"replay"`` (fast-forward the rest)
        or ``"skip"`` (this rank already fast-forwarded past ``it``)."""
        rank = comm.rank
        if self._ffwd[rank]:
            return "skip"
        action = self._decision.get(it)
        if action is None:
            action = (
                "replay" if it >= self.k and self._all_stationary() else "sim"
            )
            self._decision[it] = action
            if action == "replay":
                self.replay_from = it
        if action == "sim":
            profile = self._profile(comm)
            self._start[rank] = (
                self.recorder.world.engine.now, profile.snapshot()
            )
        return action

    def capture(self, comm: "Comm", it: int) -> None:
        """Called at the bottom of a simulated iteration: diff the
        profile against the boundary snapshot and judge stationarity."""
        rank = comm.rank
        start = self._start[rank]
        self._start[rank] = None
        if start is None:  # defensive: begin() always precedes capture()
            return
        t0, snap = start
        profile = self._profile(comm)
        cap: "_Capture" = (
            self.recorder.world.engine.now - t0, profile.delta_since(snap)
        )
        prev = self._last[rank]
        self._last[rank] = cap
        self._ncaps[rank] += 1
        if prev is not None:
            self._verdict[rank] = _stationary(prev, cap, self.recorder.rel_tol)

    def fast_forward(self, comm: "Comm", it: int) -> _t.Generator:
        """Advance this rank through iterations ``it..total-1`` at once.

        Applies the rank's own last captured deltas ``reps`` times (as
        sequential passes, preserving float accumulation order) and
        yields a single absolute-time wake-up — no per-iteration events
        ever touch the heap.
        """
        rank = comm.rank
        self._ffwd[rank] = True
        last = self._last[rank]
        assert last is not None  # replay decisions require k captures
        dt, delta = last
        reps = self.total - it
        self._profile(comm).apply_delta(delta, reps)
        eng = self.recorder.world.engine
        target = eng.now
        for _ in range(reps):
            target += dt
        yield eng.wake_at(target)

    def stats(self) -> LoopStats:
        replayed = self.total - self.replay_from if self.replay_from is not None else 0
        return LoopStats(
            label=self.label,
            total=self.total,
            simulated=self.total - replayed,
            replayed=replayed,
        )


class ReplayRecorder:
    """Per-world iteration recorder + stationarity verifier.

    Constructed last in ``MpiWorld.__init__`` so every disqualifier
    (sanitizer, fault injector, timeline, engine tracer, stochastic
    platform models) is already known; when one applies the recorder is
    *inactive* — it records nothing, fast-forwards nothing, and merely
    reports why.
    """

    def __init__(
        self,
        world: "MpiWorld",
        k: int = DEFAULT_K,
        rel_tol: float = DEFAULT_REL_TOL,
    ) -> None:
        if k < 2:
            from repro.errors import ConfigError

            raise ConfigError(f"replay needs k >= 2 captured iterations, got {k}")
        self.world = world
        self.k = k
        self.rel_tol = rel_tol
        self.reason = self._disqualify(world)
        self.active = self.reason is None
        self._sessions: dict[tuple[int, str, int], _LoopSession] = {}

    _disqualify = staticmethod(perturbation_reason)

    def session(self, comm: "Comm", label: str, total: int) -> _LoopSession:
        """The loop session for ``(comm, label, total)`` (created on
        first use; every rank of the communicator shares it)."""
        key = (comm.comm_id, label, total)
        session = self._sessions.get(key)
        if session is None:
            session = _LoopSession(self, comm.size, label, total)
            self._sessions[key] = session
        return session

    def finalize_report(self) -> ReplayReport:
        """Build the report and register it with any open scope."""
        report = ReplayReport(
            active=self.active,
            reason=self.reason,
            loops=tuple(s.stats() for s in self._sessions.values()),
        )
        _note_report(report)
        return report


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def deterministic_variant(
    spec: "PlatformSpec", name: str | None = None
) -> "PlatformSpec":
    """A replay-safe clone of ``spec``: zeroed OS noise, bare-metal
    hypervisor, no masked-NUMA burst noise.

    Every registered paper platform is stochastic (even Vayu's quiet HPC
    node draws ~0.2% OS noise per burst), so this is how tests and
    microbenchmarks obtain a platform replay can actually engage on.
    The clone is a *different* platform — its timings drop the noise —
    which is exactly why replay never silently substitutes it.
    """
    from repro.virt.hypervisor import NoHypervisor
    from repro.virt.jitter import OsNoiseModel

    return dataclasses.replace(
        spec,
        name=name if name is not None else f"{spec.name}-det",
        noise=OsNoiseModel(frac=0.0, spike_prob=0.0, spike_seconds=0.0),
        numa_burst_noise=0.0,
        hypervisor_factory=NoHypervisor,
    )
