"""Executor dispatch-overhead microbenchmark (``repro bench harness``).

Measures cells dispatched per second through each
:class:`~repro.harness.executor.CellExecutor` backend driving the same
synthetic ``bench_cell`` sweep — serial (inline), per-cell pool futures,
chunked pool dispatch, and a loopback-TCP work queue with two spawned
workers — so the harness's scheduling overhead has dedicated
before/after numbers, separate from the engine's event throughput
(``repro bench engine``).

Rows reuse the ``BENCH_engine.json`` row shape (``events`` = cells,
``events_per_sec`` = cells/sec) under ``harness-<mode>`` names, so the
engine bench's render/baseline/history machinery applies unchanged.
The chunked row additionally records ``speedup_vs_pool`` — chunked
dispatch amortises one inter-process round trip over a whole batch of
cells, and ``--check`` enforces a machine-independent floor on that
ratio (:data:`SPEEDUP_FLOOR`) on top of the per-mode baseline gate.

Wall-clock timing here is host-side measurement of the dispatcher, not
simulated time, hence the ``DET001`` lint waivers.
"""

from __future__ import annotations

import time
import typing as _t

from repro.errors import ConfigError

#: Benchmark modes, in report order.
MODES = ("serial", "pool", "chunked", "tcp")

#: ``--check`` floor for chunked cells/sec over per-cell pool futures.
#: A ratio, so it holds across machines — unlike the absolute
#: cells/sec baselines, which carry the usual noise tolerance.
SPEEDUP_FLOOR = 1.3

#: Per-cell spin for the synthetic ``bench_cell`` worker: small enough
#: that dispatch overhead dominates the measurement.
BENCH_SPIN = 64

#: Loopback-TCP mode spawns this many worker processes.
TCP_SPAWN = 2


def _bench_cells(n: int) -> list[_t.Any]:
    from repro.harness.parallel import Cell

    return [
        Cell(key=("bench", i), worker="bench_cell", args=(i, BENCH_SPIN))
        for i in range(n)
    ]


def _make_mode_executor(mode: str, jobs: int) -> _t.Any:
    from repro.harness.executor import (
        LocalPoolExecutor,
        SerialExecutor,
        make_executor,
    )

    if mode == "serial":
        return SerialExecutor()
    if mode == "pool":
        return LocalPoolExecutor(jobs, chunk=1)
    if mode == "chunked":
        return LocalPoolExecutor(jobs, chunk="auto")
    if mode == "tcp":
        return make_executor(f"tcp:127.0.0.1:0,spawn={TCP_SPAWN}", jobs)
    raise ConfigError(
        f"unknown harness bench mode {mode!r}; expected one of {list(MODES)}"
    )


def run_mode(mode: str, cells: int, jobs: int) -> dict[str, float]:
    """Time one backend pushing ``cells`` bench cells; returns its row.

    The batch goes straight through the executor (``submit_many`` +
    drain) — no store, no supervision — so the number is pure dispatch
    overhead.  A small untimed warm-up batch first pays the one-off
    backend costs (pool spin-up, TCP worker connects) that would
    otherwise swamp the per-cell rate.
    """
    if cells < 1:
        raise ConfigError(f"cells must be >= 1: {cells}")
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1: {jobs}")
    exec_ = _make_mode_executor(mode, jobs)
    try:
        for fut in exec_.submit_many(_bench_cells(min(cells, 4 * jobs))):
            fut.result()
        batch = _bench_cells(cells)
        t0 = time.perf_counter()  # lint-ok: DET001 host-side throughput timer
        for fut in exec_.submit_many(batch):
            fut.result()
        seconds = time.perf_counter() - t0  # lint-ok: DET001 host-side throughput timer
    finally:
        exec_.shutdown(kill=True)
    return {
        "events": cells,
        "seconds": seconds,
        "events_per_sec": cells / seconds if seconds else float("inf"),
        "jobs": jobs,
    }


def run_harness_bench(
    cells: int = 600,
    jobs: int = 2,
    reps: int = 1,
    modes: _t.Sequence[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Run the harness benchmark; ``{"harness-<mode>": row}``.

    ``reps > 1`` repeats each mode and keeps the fastest rep.  When both
    the pool and chunked modes run, the chunked row gets
    ``speedup_vs_pool`` for the ``--check`` floor.
    """
    if reps < 1:
        raise ConfigError(f"reps must be >= 1: {reps}")
    names = list(modes) if modes is not None else list(MODES)
    for name in names:
        if name not in MODES:
            raise ConfigError(
                f"unknown harness bench mode {name!r}; "
                f"expected one of {list(MODES)}"
            )
    rows: dict[str, dict[str, float]] = {}
    for name in names:
        best: dict[str, float] | None = None
        for _ in range(reps):
            row = run_mode(name, cells, jobs)
            if best is None or row["events_per_sec"] > best["events_per_sec"]:
                best = row
        assert best is not None
        rows[f"harness-{name}"] = best
    pool = rows.get("harness-pool")
    chunked = rows.get("harness-chunked")
    if pool and chunked and pool["events_per_sec"]:
        chunked["speedup_vs_pool"] = (
            chunked["events_per_sec"] / pool["events_per_sec"]
        )
    return rows


def check_speedup(
    rows: dict[str, dict[str, float]], floor: float = SPEEDUP_FLOOR
) -> list[str]:
    """Regression message when chunked dispatch loses its edge.

    Recomputed from the measured rates (not the stored
    ``speedup_vs_pool``) so a baseline file can never mask a live
    regression.  Empty list when the floor holds or either mode is
    missing from ``rows``.
    """
    pool = rows.get("harness-pool")
    chunked = rows.get("harness-chunked")
    if not pool or not chunked or not pool.get("events_per_sec"):
        return []
    speedup = chunked["events_per_sec"] / pool["events_per_sec"]
    if speedup < floor:
        return [
            f"harness-chunked: {speedup:.2f}x over per-cell pool dispatch "
            f"is below the {floor:.1f}x floor"
        ]
    return []
