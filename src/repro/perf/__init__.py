"""Performance infrastructure: deterministic sub-simulation memoization.

The hot loops of the simulator live in :mod:`repro.sim`; this package
holds the layers *above* the engine that make repeated work cheap
without changing any result:

* :class:`~repro.perf.memo.CollectiveMemo` — an exact, deterministic
  cache for collective-operation costs keyed by the full analytic input
  (algorithm, topology context, message size), shared across the
  simulations of a sweep.
"""

from repro.perf.memo import (
    CollectiveMemo,
    clear_default_memo,
    default_memo,
    memo_stats,
)

__all__ = [
    "CollectiveMemo",
    "clear_default_memo",
    "default_memo",
    "memo_stats",
]
