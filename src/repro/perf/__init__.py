"""Performance infrastructure: deterministic sub-simulation shortcuts.

The hot loops of the simulator live in :mod:`repro.sim`; this package
holds the layers *above* the engine that make repeated work cheap
without changing any result:

* :class:`~repro.perf.memo.CollectiveMemo` — an exact, deterministic
  cache for collective-operation costs keyed by the full analytic input
  (algorithm, topology context, message size), shared across the
  simulations of a sweep.
* :mod:`repro.perf.replay` — steady-state iteration capture & replay:
  once consecutive steady-loop iterations are provably identical on a
  draw-free platform, the remaining ones are fast-forwarded analytically
  instead of re-simulated.
* :mod:`repro.perf.fastcollect` — analytic collective fast-forward:
  whole collective phases complete through one pre-triggered event
  priced from per-communicator caches (with vectorized size-sweep
  priming), byte-identical to the per-operation path.
* :mod:`repro.perf.enginebench` — the engine dispatch-throughput
  microbenchmark behind ``repro bench engine``, ``BENCH_engine.json``
  and the ``BENCH_history.jsonl`` trajectory.
"""

from repro.perf.fastcollect import (
    FastCollect,
    FastCollectReport,
    fastcollect_enabled,
    fastcollect_scope,
)
from repro.perf.memo import (
    CollectiveMemo,
    clear_default_memo,
    default_memo,
    memo_stats,
)
from repro.perf.replay import (
    LoopStats,
    ReplayRecorder,
    ReplayReport,
    deterministic_variant,
    perf_banner,
    perturbation_reason,
    replay_enabled,
    replay_scope,
)

__all__ = [
    "CollectiveMemo",
    "FastCollect",
    "FastCollectReport",
    "LoopStats",
    "ReplayRecorder",
    "ReplayReport",
    "clear_default_memo",
    "default_memo",
    "deterministic_variant",
    "fastcollect_enabled",
    "fastcollect_scope",
    "memo_stats",
    "perf_banner",
    "perturbation_reason",
    "replay_enabled",
    "replay_scope",
]
