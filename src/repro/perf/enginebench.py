"""Engine dispatch-throughput microbenchmark (``repro bench engine``).

Measures events dispatched per second on four archetypal workloads —
timeout-heavy, point-to-point ping-pong, a compute/allreduce collective
cadence (fast-forward on), and a replay-enabled NPB steady loop — so the
sim-layer fast paths have dedicated before/after numbers.  The same
workloads back three consumers:

* ``python -m repro bench engine`` writes ``BENCH_engine.json``, can
  gate CI against a committed baseline (``--check``) and can append
  per-run trajectory rows to ``BENCH_history.jsonl``
  (``--append-history``);
* ``benchmarks/bench_arrivef_throughput.py`` runs them under pytest;
* the replay and collectives workloads additionally record how many
  engine events their fast-forward layers eliminate (``events_ratio``).

Wall-clock timing here is host-side measurement of the simulator, not
simulated time, hence the ``DET001`` lint waivers.
"""

from __future__ import annotations

import json
import pathlib
import time
import typing as _t

from repro.errors import ConfigError

#: Replay-workload shape: CG class B on a quiet Vayu variant, iteration
#: count high enough that fast-forward dominates.
REPLAY_BENCH = "cg"
REPLAY_NPROCS = 16
REPLAY_SIM_ITERS = 16
REPLAY_SEED = 7

#: CI guard tolerance: a workload may lose up to this fraction of its
#: baseline events/sec before the check fails (shared runners are noisy).
DEFAULT_TOLERANCE = 0.30


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------
# Each returns a finished Engine; callers divide ``engine.dispatched`` by
# wall time.  Sizes are tuned so each workload runs a few hundred
# milliseconds — long enough to swamp setup cost, short enough for CI.


def workload_timeouts() -> _t.Any:
    """Many processes doing nothing but numeric-yield sleeps."""
    from repro.sim import Engine

    def sleeper(reps: int, delay: float):
        for _ in range(reps):
            yield delay

    engine = Engine(seed=7)
    for i in range(200):
        engine.process(sleeper(500, 1.0 + i * 1e-3), name=f"s{i}")
    engine.run()
    return engine


def workload_p2p() -> _t.Any:
    """Two ranks ping-ponging small messages."""
    from repro.platforms import get_platform
    from repro.smpi.world import MpiWorld

    def pingpong(comm, reps: int, nbytes: int):
        peer = 1 - comm.rank
        for _ in range(reps):
            if comm.rank == 0:
                yield from comm.send(peer, nbytes)
                yield from comm.recv(peer)
            else:
                yield from comm.recv(peer)
                yield from comm.send(peer, nbytes)

    world = MpiWorld(get_platform("vayu"), 2, seed=7)
    world.launch(pingpong, 2000, 1024)
    return world.engine


#: Collectives-workload shape: a compute + allreduce cadence (the NPB
#: steady-loop pattern) on a quiet Vayu variant, sized so the analytic
#: fast-forward has whole phases to collapse.
COLLECT_NPROCS = 8
COLLECT_REPS = 4000
COLLECT_NBYTES = 4096


def _collective_phases(fastcollect: bool) -> tuple[_t.Any, _t.Any]:
    """One compute/allreduce cadence run with the fast path on or off.

    ``fastcollect`` is passed explicitly so ``REPRO_FASTCOLLECT`` can
    never skew the benchmark's on/off comparison.
    """
    from repro.perf.replay import deterministic_variant
    from repro.platforms import get_platform
    from repro.smpi.world import MpiWorld

    def loop(comm, reps: int, nbytes: int):
        comm.prime_collectives("allreduce", [nbytes])
        for _ in range(reps):
            yield from comm.compute(flops=5e4)
            yield from comm.allreduce(nbytes, value=1.0)

    spec = deterministic_variant(get_platform("vayu"))
    world = MpiWorld(
        spec, COLLECT_NPROCS, seed=7, replay=False, fastcollect=fastcollect
    )
    result = world.launch(loop, COLLECT_REPS, COLLECT_NBYTES)
    return world.engine, result


def workload_collectives() -> _t.Any:
    """Ranks in a compute/allreduce cadence (collective fast-forward on)."""
    engine, _result = _collective_phases(True)
    return engine


def _replay_cg(replay: bool) -> tuple[_t.Any, _t.Any]:
    """One CG steady-loop run with replay forced on or off."""
    from repro.npb import get_benchmark
    from repro.perf.replay import deterministic_variant
    from repro.platforms import get_platform
    from repro.smpi.world import MpiWorld

    bench = get_benchmark(REPLAY_BENCH, sim_iters=REPLAY_SIM_ITERS)
    spec = deterministic_variant(get_platform("vayu"))
    world = MpiWorld(
        spec, REPLAY_NPROCS, seed=REPLAY_SEED, replay=replay, fastcollect=False
    )
    result = world.launch(bench.make_program())
    return world.engine, result


def workload_replay() -> _t.Any:
    """The replay-enabled NPB steady loop (iteration fast-forward on)."""
    engine, _result = _replay_cg(True)
    return engine


#: workload -> (runner, minimum events for a meaningful rate).  A
#: collective dispatches only a couple of engine events per operation
#: (its cost is analytic), so its floor is lower than the p2p/timeout
#: workloads where every hop is an event; the replay workload's floor is
#: lower still because fast-forward removes most of its events.
WORKLOADS: dict[str, tuple[_t.Callable[[], _t.Any], int]] = {
    "timeouts": (workload_timeouts, 10_000),
    "p2p": (workload_p2p, 10_000),
    "collectives": (workload_collectives, 4_000),
    "replay": (workload_replay, 2_000),
}


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def replay_event_counts() -> dict[str, float]:
    """Replay's event-elimination figures: the same CG run with the
    fast-forward off and on, and the resulting dispatch ratio."""
    full_engine, _ = _replay_cg(False)
    replay_engine, result = _replay_cg(True)
    report = result.replay
    return {
        "full_events": full_engine.dispatched,
        "replay_events": replay_engine.dispatched,
        "events_ratio": full_engine.dispatched / replay_engine.dispatched,
        "replayed_iters": 0 if report is None else report.replayed_iters,
        "sim_iters": REPLAY_SIM_ITERS,
    }


def collective_event_counts() -> dict[str, float]:
    """The collective fast-forward's event-elimination figures: the same
    compute/allreduce cadence with the fast path off and on."""
    full_engine, _ = _collective_phases(False)
    fast_engine, result = _collective_phases(True)
    report = result.fastcollect
    return {
        "full_events": full_engine.dispatched,
        "fast_events": fast_engine.dispatched,
        "events_ratio": full_engine.dispatched / fast_engine.dispatched,
        "fast_ops": 0 if report is None else report.fast_ops,
        "slow_ops": 0 if report is None else report.slow_ops,
    }


def run_workload(name: str) -> dict[str, float]:
    """Time one workload; returns its ``BENCH_engine.json`` row."""
    try:
        fn, min_events = WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None
    t0 = time.perf_counter()  # lint-ok: DET001 host-side throughput timer
    engine = fn()
    seconds = time.perf_counter() - t0  # lint-ok: DET001 host-side throughput timer
    events = engine.dispatched
    if events <= min_events:
        raise ConfigError(
            f"{name} workload dispatched only {events} events "
            f"(needs > {min_events} for a meaningful rate)"
        )
    return {
        "events": events,
        "seconds": seconds,
        "events_per_sec": events / seconds if seconds else float("inf"),
    }


def run_engine_bench(
    reps: int = 1, workloads: _t.Sequence[str] | None = None
) -> dict[str, dict[str, float]]:
    """Run the engine benchmark; ``{workload: row}`` sorted by name.

    ``reps > 1`` repeats each workload and keeps the fastest rep (the
    standard defence against cold caches and noisy neighbours — the
    first rep doubles as warm-up).  The replay row additionally carries
    the event-elimination figures from :func:`replay_event_counts`.
    """
    if reps < 1:
        raise ConfigError(f"reps must be >= 1: {reps}")
    names = sorted(workloads) if workloads is not None else sorted(WORKLOADS)
    rows: dict[str, dict[str, float]] = {}
    for name in names:
        best: dict[str, float] | None = None
        for _ in range(reps):
            row = run_workload(name)
            if best is None or row["events_per_sec"] > best["events_per_sec"]:
                best = row
        assert best is not None
        if name == "replay":
            best.update(replay_event_counts())
        elif name == "collectives":
            best.update(collective_event_counts())
        rows[name] = best
    return rows


# ---------------------------------------------------------------------------
# Bench trajectory (BENCH_history.jsonl)
# ---------------------------------------------------------------------------

def _git_commit() -> str:
    """Short hash of the working tree's HEAD ("unknown" outside git)."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def append_history(
    rows: dict[str, dict[str, float]],
    path: str | pathlib.Path,
    commit: str | None = None,
) -> list[dict[str, _t.Any]]:
    """Append one ``BENCH_history.jsonl`` line per workload.

    Each line carries ``{commit, workload, events_per_sec, events}`` —
    the minimal trajectory a regression curve needs.  Returns the
    appended records.
    """
    commit = commit if commit is not None else _git_commit()
    records = [
        {
            "commit": commit,
            "workload": name,
            "events_per_sec": row["events_per_sec"],
            "events": row["events"],
        }
        for name, row in sorted(rows.items())
    ]
    with pathlib.Path(path).open("a") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return records


# ---------------------------------------------------------------------------
# Baseline guard and export
# ---------------------------------------------------------------------------

def check_against_baseline(
    rows: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regression messages for workloads slower than ``baseline``.

    A workload regresses when its ``events_per_sec`` falls more than
    ``tolerance`` (fractional) below the baseline's; workloads missing
    from either side are skipped, so adding a workload never breaks an
    old baseline.  Returns an empty list when everything holds up.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ConfigError(f"tolerance must be in [0, 1): {tolerance}")
    failures = []
    for name in sorted(set(rows) & set(baseline)):
        base_rate = baseline[name].get("events_per_sec")
        rate = rows[name].get("events_per_sec")
        if not base_rate or rate is None:
            continue
        floor = base_rate * (1.0 - tolerance)
        if rate < floor:
            failures.append(
                f"{name}: {rate:,.0f} ev/s is {100 * (1 - rate / base_rate):.0f}% "
                f"below baseline {base_rate:,.0f} ev/s "
                f"(tolerance {tolerance:.0%})"
            )
    return failures


def load_rows(path: str | pathlib.Path) -> dict[str, dict[str, float]]:
    """Read a ``BENCH_engine.json`` baseline."""
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: expected a workload->row mapping")
    return data


def write_rows(
    rows: dict[str, dict[str, float]], path: str | pathlib.Path
) -> None:
    """Write benchmark rows as ``BENCH_engine.json`` (stable key order)."""
    pathlib.Path(path).write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")


def render_rows(rows: dict[str, dict[str, float]]) -> str:
    """One line per workload, for the CLI."""
    lines = []
    for name, row in sorted(rows.items()):
        line = f"{name:<12} {row['events_per_sec']:>12,.0f} ev/s  ({row['events']:,.0f} events)"
        if "events_ratio" in row:
            line += f"  [fast-forward {row['events_ratio']:.1f}x fewer events"
            if "sim_iters" in row:
                line += (
                    f", {row['replayed_iters']:.0f}/{row['sim_iters']:.0f} "
                    f"iters replayed"
                )
            elif "fast_ops" in row:
                line += f", {row['fast_ops']:.0f} collectives fast-forwarded"
            line += "]"
        lines.append(line)
    return "\n".join(lines)
