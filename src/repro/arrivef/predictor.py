"""Cross-platform execution-time prediction (ARRIVE-F's model stage).

Given a job's :class:`~repro.arrivef.profiler.OnlineProfile` measured on
one platform, predict its runtime on another by rescaling each subsystem
share with the platforms' model parameters:

* compute: flop-bound share scales with core rate, memory-bound share
  with sustained per-socket bandwidth (NUMA penalty included);
* communication: latency-bound share scales with one-way small-message
  cost, bandwidth-bound share with effective fabric bandwidth;
* I/O scales with filesystem client bandwidth.

This is precisely the ratio arithmetic the paper performs by hand in its
Table III analysis (rcomp tracking the clock ratio, rcomm the fabric),
packaged as a predictor.
"""

from __future__ import annotations

from repro.arrivef.profiler import OnlineProfile
from repro.errors import ConfigError
from repro.platforms.base import PlatformSpec


class PlatformPredictor:
    """Predicts runtimes across calibrated platform models."""

    def __init__(self, reference: PlatformSpec) -> None:
        self.reference = reference

    # -- subsystem rates ---------------------------------------------------
    @staticmethod
    def _core_rate(spec: PlatformSpec) -> float:
        return spec.node.cpu.socket.core.flop_rate

    @staticmethod
    def _mem_rate(spec: PlatformSpec) -> float:
        rate = spec.node.cpu.socket.mem_bw
        hv = spec.hypervisor_factory()
        if hv.masks_numa and not spec.numa_affinity_enforced:
            rate *= spec.numa_penalty_factor
        return rate

    @staticmethod
    def _latency_cost(spec: PlatformSpec) -> float:
        hv = spec.hypervisor_factory()
        # Mean extra latency: sample-free estimate from the model means.
        extra = 0.0
        for attr in ("switch_latency", "driver_latency"):
            extra += getattr(hv, attr, 0.0)
        for attr in ("sched_delay_mean",):
            extra += getattr(hv, attr, 0.0)
        return spec.fabric.oneway_time(8) + extra

    @staticmethod
    def _bw_cost(spec: PlatformSpec, nbytes: float) -> float:
        return max(1e-12, nbytes) / spec.fabric.bw.at(max(1.0, nbytes))

    def slowdown(self, profile: OnlineProfile, target: PlatformSpec) -> float:
        """Predicted runtime ratio target/reference for this profile."""
        ref, tgt = self.reference, target
        # Compute share.
        comp_share = max(0.0, 1.0 - profile.comm_fraction - profile.io_fraction)
        flop_ratio = self._core_rate(ref) / self._core_rate(tgt)
        mem_ratio = self._mem_rate(ref) / self._mem_rate(tgt)
        comp_ratio = (
            (1.0 - profile.mem_boundedness) * flop_ratio
            + profile.mem_boundedness * mem_ratio
        )
        # Communication share.
        lat_ratio = self._latency_cost(tgt) / self._latency_cost(ref)
        bw_ratio = self._bw_cost(tgt, profile.mean_msg_bytes) / self._bw_cost(
            ref, profile.mean_msg_bytes
        )
        comm_ratio = (
            profile.small_msg_fraction * lat_ratio
            + (1.0 - profile.small_msg_fraction) * bw_ratio
        )
        # I/O share.
        io_ratio = ref.fs.client_bw / tgt.fs.client_bw
        return (
            comp_share * comp_ratio
            + profile.comm_fraction * comm_ratio
            + profile.io_fraction * io_ratio
        )

    def predict(
        self, profile: OnlineProfile, runtime_on_reference: float, target: PlatformSpec
    ) -> float:
        """Predicted wall time on ``target``."""
        if runtime_on_reference <= 0:
            raise ConfigError(f"bad reference runtime: {runtime_on_reference}")
        return runtime_on_reference * self.slowdown(profile, target)

    def best_platform(
        self,
        profile: OnlineProfile,
        candidates: list[PlatformSpec],
    ) -> tuple[PlatformSpec, float]:
        """The candidate with the smallest predicted slowdown."""
        if not candidates:
            raise ConfigError("no candidate platforms")
        scored = [(self.slowdown(profile, c), c) for c in candidates]
        scored.sort(key=lambda pair: pair[0])
        best_slowdown, best = scored[0]
        return best, best_slowdown
