"""Online job profiling (ARRIVE-F's measurement stage).

ARRIVE-F "carries out a lightweight 'online' profiling of the CPU,
communication and memory subsystems of all the active jobs".  In this
reproduction the same information is available exactly: the simulator's
IPM monitor records per-rank compute and MPI time with message-size
histograms, and the platform model knows the memory-boundedness of each
burst.  :func:`profile_from_monitor` distils a monitor into the compact
:class:`OnlineProfile` the predictor consumes.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.ipm.monitor import GLOBAL_REGION, IpmMonitor


@dataclasses.dataclass(frozen=True, slots=True)
class OnlineProfile:
    """Compact subsystem profile of one job."""

    #: Fraction of runtime in MPI communication.
    comm_fraction: float
    #: Fraction of MPI time in messages at or below ``small_cutoff``.
    small_msg_fraction: float
    #: Memory-bandwidth-bound fraction of the compute time.
    mem_boundedness: float
    #: Mean bytes per MPI call.
    mean_msg_bytes: float
    #: Fraction of runtime in I/O.
    io_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("comm_fraction", "small_msg_fraction", "mem_boundedness", "io_fraction"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ConfigError(f"{name} out of range: {v}")


#: Message-size boundary between "latency-bound" and "bandwidth-bound".
SMALL_MESSAGE_CUTOFF = 4096


def profile_from_monitor(
    monitor: IpmMonitor,
    region: str = GLOBAL_REGION,
    mem_boundedness: float = 0.3,
) -> OnlineProfile:
    """Distil an IPM monitor into an :class:`OnlineProfile`.

    ``mem_boundedness`` cannot be recovered from MPI accounting alone on
    real systems either (ARRIVE-F samples hardware counters for it);
    callers that know their workload pass it explicitly.
    """
    comm = compute = io = 0.0
    small_time = 0.0
    total_bytes = 0.0
    total_calls = 0
    for prof in monitor.profiles:
        stats = prof.regions.get(region)
        if stats is None:
            continue
        compute += stats.compute_time
        io += stats.io_time
        for key, cs in stats.mpi.items():
            comm += cs.time
            total_bytes += key.nbytes * cs.count
            total_calls += cs.count
            if key.nbytes <= SMALL_MESSAGE_CUTOFF:
                small_time += cs.time
    total = comm + compute + io
    if total <= 0:
        raise ConfigError(f"region {region!r} holds no samples")
    return OnlineProfile(
        comm_fraction=comm / total,
        small_msg_fraction=(small_time / comm) if comm > 0 else 0.0,
        mem_boundedness=mem_boundedness,
        mean_msg_bytes=(total_bytes / total_calls) if total_calls else 0.0,
        io_fraction=io / total,
    )
