"""ARRIVE-F: adaptive resource relocation in heterogeneous compute farms.

Atif & Strazdins' framework (cited as the paper's section-II groundwork
and its planned workload classifier) profiles running jobs' CPU,
communication and memory subsystems online, predicts each job's
execution time on every distinct hardware platform in the farm, and
relocates jobs (by VM live migration) where the predicted throughput
gain justifies the migration cost — improving average job waiting times
by up to 33% in the original experiments.

Components:

* :mod:`repro.arrivef.profiler` — lightweight online profiles, directly
  from the simulator's IPM monitors or synthetic;
* :mod:`repro.arrivef.predictor` — cross-platform runtime prediction
  from the calibrated platform models;
* :mod:`repro.arrivef.migration` — live-migration cost model;
* :mod:`repro.arrivef.framework` — the relocation loop and the
  throughput experiment.
"""

from repro.arrivef.profiler import OnlineProfile, profile_from_monitor
from repro.arrivef.predictor import PlatformPredictor
from repro.arrivef.migration import MigrationModel
from repro.arrivef.framework import ArriveF, FarmJob, RelocationPlan

__all__ = [
    "ArriveF",
    "FarmJob",
    "MigrationModel",
    "OnlineProfile",
    "PlatformPredictor",
    "RelocationPlan",
    "profile_from_monitor",
]
