"""The ARRIVE-F relocation loop and throughput experiment.

A heterogeneous compute farm runs several hardware platforms side by
side.  Jobs are submitted to whichever platform has free capacity
(naive placement); ARRIVE-F instead profiles each job shortly after it
starts, predicts its runtime on every platform, and relocates it (live
migration) when the predicted saving exceeds the migration cost.

The headline experiment (:func:`throughput_experiment`) mirrors the
published evaluation: a batch of mixed jobs on a farm of fast/slow
platforms, scheduled naively vs with ARRIVE-F relocation, comparing mean
job waiting + turnaround times.  The original framework "is able to
improve the average job waiting times by up to 33%"; the reproduction's
measured figure is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.arrivef.migration import MigrationModel
from repro.arrivef.predictor import PlatformPredictor
from repro.arrivef.profiler import OnlineProfile
from repro.errors import ConfigError, SchedulerError
from repro.platforms.base import PlatformSpec


@dataclasses.dataclass(slots=True)
class FarmJob:
    """One job in the farm experiment."""

    job_id: int
    cores: int
    #: Work expressed as runtime on the *reference* platform.
    reference_runtime: float
    submit_time: float
    profile: OnlineProfile
    vm_memory_bytes: float = 8e9

    # runtime state
    start_time: float | None = None
    finish_time: float | None = None
    platform_name: str | None = None
    migrated: bool = False

    @property
    def wait_time(self) -> float:
        if self.start_time is None:
            raise SchedulerError(f"job {self.job_id} never started")
        return self.start_time - self.submit_time

    @property
    def turnaround(self) -> float:
        if self.finish_time is None:
            raise SchedulerError(f"job {self.job_id} never finished")
        return self.finish_time - self.submit_time


@dataclasses.dataclass(frozen=True, slots=True)
class RelocationPlan:
    """A proposed job relocation."""

    job_id: int
    from_platform: str
    to_platform: str
    predicted_saving: float
    migration_cost: float


@dataclasses.dataclass(slots=True)
class _Host:
    spec: PlatformSpec
    cores: int
    free: int


class ArriveF:
    """The farm simulator, with and without relocation."""

    def __init__(
        self,
        platforms: _t.Sequence[tuple[PlatformSpec, int]],
        reference: PlatformSpec,
        *,
        migration: MigrationModel | None = None,
        relocation: bool = True,
    ) -> None:
        if not platforms:
            raise ConfigError("farm needs at least one platform")
        self.hosts = [_Host(spec, cores, cores) for spec, cores in platforms]
        self.predictor = PlatformPredictor(reference)
        self.migration = migration or MigrationModel()
        self.relocation = relocation

    def _runtime_on(self, job: FarmJob, spec: PlatformSpec) -> float:
        return self.predictor.predict(job.profile, job.reference_runtime, spec)

    def run(self, jobs: _t.Sequence[FarmJob]) -> list[FarmJob]:
        """Event-stepped execution of the batch; returns finished jobs.

        *Naive* mode (``relocation=False``) is heterogeneity-oblivious:
        first-fit over the host list, which is how the compute farms
        ARRIVE-F targets behave — a latency-sensitive job can land on
        the commodity-network host and occupy it for many times its
        best-case runtime.

        *ARRIVE-F* mode places each job on the free host with the
        smallest *predicted* runtime (the online profile drives the
        prediction), and whenever capacity frees up it reviews running
        jobs: a job migrates to the freed host when the predicted saving
        exceeds the live-migration cost.
        """
        pending = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        running: list[tuple[float, FarmJob, _Host]] = []  # (finish, job, host)
        now = 0.0
        queue: list[FarmJob] = []
        finished: list[FarmJob] = []

        def place(job: FarmJob, host: _Host, runtime: float, migrated: bool) -> None:
            host.free -= job.cores
            if job.start_time is None:
                job.start_time = now
            job.finish_time = now + runtime
            job.platform_name = host.spec.name
            job.migrated = job.migrated or migrated
            running.append((job.finish_time, job, host))
            running.sort(key=lambda t: t[0])

        def try_start(job: FarmJob) -> bool:
            candidates = [h for h in self.hosts if h.free >= job.cores]
            if not candidates:
                return False
            if self.relocation:
                host = min(candidates, key=lambda h: self._runtime_on(job, h.spec))
            else:
                host = candidates[0]
            place(job, host, self._runtime_on(job, host.spec), migrated=False)
            return True

        def review_migrations() -> None:
            """Move a running job to newly freed, better capacity."""
            if not self.relocation:
                return
            improved = True
            while improved:
                improved = False
                for idx, (finish, job, host) in enumerate(running):
                    remaining = finish - now
                    if remaining <= 0:
                        continue
                    frac_left = remaining / self._runtime_on(job, host.spec)
                    best: tuple[float, _Host] | None = None
                    for cand in self.hosts:
                        if cand is host or cand.free < job.cores:
                            continue
                        alt = self._runtime_on(job, cand.spec) * frac_left
                        cost = self.migration.total_seconds(job.vm_memory_bytes)
                        if alt + cost < remaining and (best is None or alt < best[0]):
                            best = (alt + cost, cand)
                    if best is not None:
                        host.free += job.cores
                        running.pop(idx)
                        place(job, best[1], best[0], migrated=True)
                        improved = True
                        break

        while pending or queue or running:
            # Admit arrivals at the current time.
            while pending and pending[0].submit_time <= now:
                queue.append(pending.pop(0))
            # Start whatever fits, FIFO.
            made_progress = True
            while made_progress:
                made_progress = False
                for job in list(queue):
                    if try_start(job):
                        queue.remove(job)
                        made_progress = True
            # Advance to the next event.
            candidates = []
            if running:
                candidates.append(running[0][0])
            if pending:
                candidates.append(pending[0].submit_time)
            if not candidates:
                break
            now = min(candidates)
            freed = False
            while running and running[0][0] <= now:
                _, job, host = running.pop(0)
                host.free += job.cores
                finished.append(job)
                freed = True
            if freed:
                review_migrations()
        return finished


def throughput_experiment(
    *,
    n_jobs: int = 60,
    seed: int = 0,
) -> dict[str, float]:
    """The ARRIVE-F headline comparison on a synthetic two-tier farm.

    Returns mean waits/turnarounds for naive and relocating runs plus
    the relative improvement.
    """
    import numpy as np

    from repro.platforms import DCC, VAYU

    rng = np.random.default_rng(seed)
    jobs_naive, jobs_arrive = [], []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(240.0))
        comm = float(rng.uniform(0.02, 0.5))
        prof = OnlineProfile(
            comm_fraction=comm,
            small_msg_fraction=float(rng.uniform(0.1, 0.9)),
            mem_boundedness=float(rng.uniform(0.1, 0.9)),
            mean_msg_bytes=float(rng.uniform(64, 1 << 20)),
        )
        shape = dict(
            job_id=i,
            cores=int(rng.choice([8, 16, 32])),
            reference_runtime=float(rng.uniform(600, 7200)),
            submit_time=t,
            profile=prof,
        )
        jobs_naive.append(FarmJob(**shape))
        jobs_arrive.append(FarmJob(**shape))

    # A genuinely heterogeneous farm: the commodity-network tier is
    # listed first, so naive first-fit parks latency-sensitive jobs
    # there — the pathology ARRIVE-F exists to fix.
    farm = [(DCC, 64), (VAYU, 64)]
    naive = ArriveF(farm, reference=VAYU, relocation=False).run(jobs_naive)
    smart = ArriveF(farm, reference=VAYU, relocation=True).run(jobs_arrive)
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    wait_naive = mean([j.wait_time for j in naive])
    wait_smart = mean([j.wait_time for j in smart])
    return {
        "mean_wait_naive": wait_naive,
        "mean_wait_arrivef": wait_smart,
        "wait_improvement_pct": 100.0 * (wait_naive - wait_smart) / wait_naive
        if wait_naive > 0
        else 0.0,
        "mean_turnaround_naive": mean([j.turnaround for j in naive]),
        "mean_turnaround_arrivef": mean([j.turnaround for j in smart]),
    }
