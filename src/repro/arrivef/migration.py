"""Live-migration cost model.

ARRIVE-F relocates jobs by live-migrating their VMs.  Pre-copy live
migration transfers the VM's memory over the network while it runs,
re-sending pages dirtied during each round, then pauses briefly for the
final round: total time ~ ``memory / bandwidth`` inflated by the
dirty-page geometric series, downtime ~ final writable-working-set
transfer.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True, slots=True)
class MigrationModel:
    """Pre-copy live migration parameters."""

    #: Network bandwidth available to migration traffic (bytes/s).
    link_bw: float = 1.0e9
    #: Fraction of transferred pages re-dirtied per pre-copy round.
    dirty_rate: float = 0.25
    #: Pre-copy rounds before the stop-and-copy.
    rounds: int = 4
    #: Fixed control-plane overhead (seconds).
    setup_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.link_bw <= 0 or not (0.0 <= self.dirty_rate < 1.0):
            raise ConfigError(f"invalid MigrationModel: {self}")
        if self.rounds < 1:
            raise ConfigError(f"rounds must be >= 1: {self.rounds}")

    def total_seconds(self, vm_memory_bytes: float) -> float:
        """Wall time of the whole migration."""
        if vm_memory_bytes < 0:
            raise ConfigError(f"negative VM memory: {vm_memory_bytes}")
        transferred = vm_memory_bytes * sum(
            self.dirty_rate**k for k in range(self.rounds)
        )
        transferred += vm_memory_bytes * self.dirty_rate**self.rounds  # final copy
        return self.setup_seconds + transferred / self.link_bw

    def downtime_seconds(self, vm_memory_bytes: float) -> float:
        """Stop-and-copy pause (the part the job actually feels)."""
        return vm_memory_bytes * self.dirty_rate**self.rounds / self.link_bw
