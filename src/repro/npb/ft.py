"""FT — 3-D FFT PDE solver (spectral method).

Per iteration: evolve the spectrum (compute), inverse 3-D FFT (two local
FFT passes plus a global transpose), and a 16-byte checksum all-reduce.
The transpose is a single ``MPI_Alltoall`` moving each rank's entire
local array (``ntotal * 16 / p`` bytes of complex doubles), so FT is the
suite's bandwidth stress test.

Because the per-pair block is ``ntotal * 16 / p**2``, the All-to-all
volume through each NIC *shrinks* as ``p`` grows — the paper's
explanation for DCC's recovery above 16 processes: "the message size for
MPI AlltoAll communication decreas[es] with an increase in the number of
processes, resulting in reduced communication overhead" (section V-B).
"""

from __future__ import annotations

import typing as _t

from repro.npb.base import NpbBenchmark


class FtBenchmark(NpbBenchmark):
    """NPB FT skeleton (1-D slab layout, valid for ``p <= nz``)."""

    name = "ft"
    default_sim_iters = 3

    def valid_nprocs(self, nprocs: int) -> bool:
        nz = self.cfg.dims[2]
        return super().valid_nprocs(nprocs) and nprocs <= nz

    def _share(self, comm) -> float:
        """Slab share of this rank (slabs of nz planes over p ranks)."""
        nz = self.cfg.dims[2]
        return self.split_extent(nz, comm.size, comm.rank) / nz

    @property
    def ntotal(self) -> int:
        nx, ny, nz = self.cfg.dims
        return nx * ny * nz

    def setup(self, comm) -> _t.Generator:
        # Initial condition plus one forward FFT of the full array.
        share = self._share(comm)
        yield from comm.compute(
            flops=self.cfg.flops_per_iter * share,
            mem_bytes=self.cfg.mem_bytes_per_iter * share,
            working_set=self.local_ws(comm),
        )
        if comm.size > 1:
            yield from comm.alltoall(self.ntotal * 16 // comm.size)

    def iteration(self, comm, it: int) -> _t.Generator:
        share = self._share(comm)
        # evolve + cffts passes before the transpose (~60% of the work).
        yield from comm.compute(
            flops=self.cfg.flops_per_iter * share * 0.6,
            mem_bytes=self.cfg.mem_bytes_per_iter * share * 0.6,
            working_set=self.local_ws(comm),
        )
        if comm.size > 1:
            yield from comm.alltoall(self.ntotal * 16 // comm.size)
        # Final FFT pass in the transposed layout.
        yield from comm.compute(
            flops=self.cfg.flops_per_iter * share * 0.4,
            mem_bytes=self.cfg.mem_bytes_per_iter * share * 0.4,
            working_set=self.local_ws(comm),
        )
        yield from comm.allreduce(16, value=0.0)
        return None
