"""LU — SSOR solver with pipelined wavefront sweeps.

Ranks form a 2-D ``px x py`` pencil grid over the x-y plane (full z
columns).  Each of the 250 iterations performs:

* the right-hand-side update with ordinary ghost exchanges of
  5-component faces, and
* two triangular (lower/upper) *wavefront* sweeps: each of the ``nz``
  grid planes is processed in pipeline order, with a small boundary
  message (a 5 x local-edge line) to the south and east neighbours per
  plane.

The sweeps are priced as a synchronising composite
(:meth:`~repro.smpi.comm.Comm.composite`): per-message simulation of
``2 sweeps x nz planes x 2 messages x 250 iterations`` per rank would be
millions of events.  The composite charges the pipeline fill
(``(px + py - 2)`` stages of plane-compute plus messages) and the
per-plane message overhead (``2 * nz`` small messages) — which is what
makes LU latency-bound on the virtualised platforms: thousands of
sub-KB messages per iteration.
"""

from __future__ import annotations

import typing as _t

from repro.npb.base import NpbBenchmark, mixed_msg_time

#: Fraction of per-iteration work inside the two triangular sweeps.
SWEEP_WORK_FRACTION = 0.6


class LuBenchmark(NpbBenchmark):
    """NPB LU skeleton."""

    name = "lu"
    default_sim_iters = 3

    def _geometry(self, comm) -> tuple[int, int, int, int, float]:
        n = self.cfg.dims[0]
        px, py = self.grid2d(comm.size)
        col, row = comm.rank % px, comm.rank // px
        nx_loc = self.split_extent(n, px, col)
        ny_loc = self.split_extent(n, py, row)
        share = (nx_loc * ny_loc) / (n * n)
        return px, py, nx_loc, ny_loc, share

    def iteration(self, comm, it: int) -> _t.Generator:
        cfg = self.cfg
        n = cfg.dims[0]
        p = comm.size
        px, py, nx_loc, ny_loc, share = self._geometry(comm)

        # --- RHS update with ordinary halo exchange --------------------------
        rhs_frac = 1.0 - SWEEP_WORK_FRACTION
        yield from comm.compute(
            flops=cfg.flops_per_iter * share * rhs_frac,
            mem_bytes=cfg.mem_bytes_per_iter * share * rhs_frac,
            working_set=self.local_ws(comm),
        )
        if p > 1:
            face_x = 5 * 8 * ny_loc * n  # x-faces: 5 vars * ny_loc * nz
            face_y = 5 * 8 * nx_loc * n

            def halo_time(ctx, _n: float) -> float:
                return 2.0 * mixed_msg_time(ctx, face_x, 1) + 2.0 * mixed_msg_time(
                    ctx, face_y, px
                )

            yield from comm.composite("MPI_Sendrecv(exchange_3)", 2 * (face_x + face_y), halo_time)

        # --- Two pipelined triangular sweeps ---------------------------------
        sweep_flops = cfg.flops_per_iter * share * SWEEP_WORK_FRACTION
        sweep_mem = cfg.mem_bytes_per_iter * share * SWEEP_WORK_FRACTION
        yield from comm.compute(flops=sweep_flops, mem_bytes=sweep_mem, working_set=self.local_ws(comm))
        if p > 1:
            # Pipeline overheads: boundary line messages (5 doubles per
            # edge point) south (stride px) and east (stride 1).
            line_x = 5 * 8 * ny_loc
            line_y = 5 * 8 * nx_loc
            # Mean plane-compute time gates the pipeline fill; price it
            # with this rank's resolved compute model so the fill cost
            # scales with the platform, not a hardwired reference rate.
            plane_flops = sweep_flops / (2 * n)
            plane_t, _ = comm.world.platform.compute_model(
                comm.world_rank
            ).seconds(plane_flops, 0.0)

            def sweep_time(ctx, _n: float) -> float:
                msg = mixed_msg_time(ctx, line_x, 1) + mixed_msg_time(ctx, line_y, px)
                fill_stages = px + py - 2
                # Fill: idle stages at pipeline start; drain of messages
                # over all nz planes, twice (lower + upper sweep).
                return 2.0 * (fill_stages * (plane_t + msg) + n * msg)

            yield from comm.composite("MPI_Recv(pipeline)", 2 * n * (line_x + line_y), sweep_time)
        return None
