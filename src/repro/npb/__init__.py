"""NAS Parallel Benchmarks (NPB 3.3 MPI) on the simulated runtime.

All eight benchmarks of the suite the paper runs (class B, Figs 3-4 and
Table II) are implemented as *communication skeletons*: per-iteration
compute bursts sized from the calibrated work model plus the real
communication pattern of each benchmark (who talks to whom, with which
message sizes, as a function of the process count).  The skeletons run
unchanged on any platform model.

Five of the benchmarks additionally have *numeric kernels*
(:mod:`repro.npb.kernels`): real NumPy implementations of the
computational pattern at small scales, used to validate the skeletons'
structure (e.g. the distributed CG driver reproduces the serial solver's
answer bit-for-bit through simulated-MPI payload arithmetic).

Benchmark selection::

    from repro.npb import get_benchmark
    bench = get_benchmark("cg")          # CG class B by default
    result = bench.run(VAYU, nprocs=16)
    print(result.projected_time, result.comm_percent)
"""

from repro.npb.base import BenchResult, NpbBenchmark, STEADY_REGION
from repro.npb.classes import CLASS_NAMES, NpbClass, problem
from repro.npb.registry import BENCHMARK_NAMES, get_benchmark, valid_nprocs
from repro.npb.verification import VerificationRecord

__all__ = [
    "BENCHMARK_NAMES",
    "BenchResult",
    "CLASS_NAMES",
    "NpbBenchmark",
    "NpbClass",
    "STEADY_REGION",
    "VerificationRecord",
    "get_benchmark",
    "problem",
    "valid_nprocs",
]
