"""BT — Block-Tridiagonal ADI solver (multipartition decomposition).

BT requires a perfect-square process count (the paper runs 36 where the
other kernels run 32).  Each iteration computes the right-hand side
(with a six-face ghost exchange, ``copy_faces``) and then sweeps three
alternating-direction line solves; under the multipartition scheme each
solve stage ships a block boundary of ``5 x 5 x (n/sq)^2`` doubles to
the next cell owner, ``sq`` stages per direction.

The solves are priced as composites (see :mod:`repro.npb.lu` for the
rationale); ``copy_faces`` uses the mixed on/off-node neighbour model.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import ConfigError
from repro.npb.base import NpbBenchmark, mixed_msg_time

#: Fraction of per-iteration work in the RHS computation (rest: solves).
RHS_WORK_FRACTION = 0.35


class BtBenchmark(NpbBenchmark):
    """NPB BT skeleton."""

    name = "bt"
    default_sim_iters = 3
    solve_boundary_vars = 25  # 5x5 block per boundary point

    def valid_nprocs(self, nprocs: int) -> bool:
        if nprocs < 1:
            return False
        sq = math.isqrt(nprocs)
        return sq * sq == nprocs

    def _geometry(self, comm) -> tuple[int, int, int, float]:
        n = self.cfg.dims[0]
        sq = math.isqrt(comm.size)
        row, col = divmod(comm.rank, sq)
        ncell_x = self.split_extent(n, sq, col)
        ncell_y = self.split_extent(n, sq, row)
        share = (ncell_x * ncell_y) / (n * n)
        return sq, ncell_x, ncell_y, share

    def iteration(self, comm, it: int) -> _t.Generator:
        cfg = self.cfg
        n = cfg.dims[0]
        p = comm.size
        sq, ncx, ncy, share = self._geometry(comm)

        # --- compute_rhs + copy_faces -------------------------------------------
        yield from comm.compute(
            flops=cfg.flops_per_iter * share * RHS_WORK_FRACTION,
            mem_bytes=cfg.mem_bytes_per_iter * share * RHS_WORK_FRACTION,
            working_set=self.local_ws(comm),
        )
        if p > 1:
            # Ghost faces: 5 variables, 2 ghost planes, per direction.
            face_x = 5 * 8 * 2 * ncy * n
            face_y = 5 * 8 * 2 * ncx * n
            face_z = 5 * 8 * 2 * ncx * ncy  # z faces stay local per cell

            def faces_time(ctx, _n: float) -> float:
                return (
                    2.0 * mixed_msg_time(ctx, face_x, 1)
                    + 2.0 * mixed_msg_time(ctx, face_y, sq)
                    + 2.0 * mixed_msg_time(ctx, face_z, 1)
                )

            yield from comm.composite(
                "MPI_Isend(copy_faces)", 2 * (face_x + face_y + face_z), faces_time
            )

        # --- three ADI line solves ------------------------------------------------
        solve_frac = (1.0 - RHS_WORK_FRACTION) / 3.0
        boundary = self.solve_boundary_vars * 8 * (n // max(1, sq)) ** 2
        for axis, stride in (("x", 1), ("y", sq), ("z", 1)):
            yield from comm.compute(
                flops=cfg.flops_per_iter * share * solve_frac,
                mem_bytes=cfg.mem_bytes_per_iter * share * solve_frac,
                working_set=self.local_ws(comm),
            )
            if p > 1:

                def solve_time(ctx, _n: float, _stride=stride) -> float:
                    # sq pipeline stages, one boundary block each.
                    return sq * mixed_msg_time(ctx, boundary, _stride)

                yield from comm.composite(
                    f"MPI_Send({axis}_solve)", sq * boundary, solve_time
                )
        return None


class SpBenchmark(BtBenchmark):
    """SP — Scalar-Pentadiagonal ADI solver.

    Structurally identical decomposition and communication pattern to BT
    (square process grid, copy_faces, three line sweeps), but scalar
    penta-diagonal systems: more, cheaper iterations (400 vs 200) and
    thinner solve boundaries (5 variables rather than 5x5 blocks), which
    makes SP more latency-sensitive per unit of work.
    """

    name = "sp"
    solve_boundary_vars = 5
