"""NPB problem-class parameter tables.

Grid sizes and iteration counts are the official NPB 3.3 definitions.
The *work model* (total useful operations and memory traffic) is
calibrated rather than counted: the paper's Fig 3 gives absolute serial
class-B wall times on DCC, so each benchmark's class-B work is chosen to
reproduce exactly those times under the DCC node model, and other
classes scale by the official operation-count ratios.  The calibration
is twofold per benchmark:

* ``dcc_serial_seconds`` — the Fig 3 reference time;
* ``mem_fraction`` (mu) — what fraction of the serial time is
  memory-bandwidth-bound on DCC.  ``mu`` encodes each kernel's character
  (EP ~ 0: embarrassingly compute-bound; CG ~ 0.85: SpMV-dominated), and
  drives both the cross-platform serial ratios (Fig 3) and the
  within-node scaling loss as ranks share socket bandwidth (Fig 4).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError

CLASS_NAMES = ("S", "W", "A", "B", "C", "D")

#: DCC serial reference flop rate (flops/s): E5520 core model.
_DCC_FLOP_RATE = 2.27e9
#: DCC serial reference memory bandwidth (bytes/s): one rank, full socket.
_DCC_MEM_BW = 11.5e9


@dataclasses.dataclass(frozen=True, slots=True)
class NpbClass:
    """One (benchmark, class) working configuration."""

    bench: str
    klass: str
    #: Grid / problem dimensions (meaning depends on the benchmark).
    dims: tuple[int, ...]
    #: Outer iteration count of the timed section.
    iterations: int
    #: Total useful flops over the whole timed run.
    total_flops: float
    #: Total DRAM traffic (bytes) over the whole timed run.
    total_mem_bytes: float
    #: Resident memory footprint of the whole problem (bytes); a rank's
    #: working set is its share of this, which drives cache residency.
    footprint_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.total_flops <= 0 or self.iterations < 1:
            raise ConfigError(f"invalid NpbClass: {self}")

    @property
    def flops_per_iter(self) -> float:
        return self.total_flops / self.iterations

    @property
    def mem_bytes_per_iter(self) -> float:
        return self.total_mem_bytes / self.iterations


def _work(dcc_seconds: float, mem_fraction: float) -> tuple[float, float]:
    """Convert a DCC serial time + memory fraction into (flops, bytes).

    The serial run is flop-bound by construction (``mem_fraction < 1``),
    so ``flops = t * rate`` reproduces the Fig 3 time exactly, while
    ``bytes = mu * t * bw`` makes memory the binding resource once
    several ranks share a socket (at 4 ranks/socket the per-rank
    bandwidth share is a quarter, so memory binds whenever mu > 0.25).
    """
    if not (0.0 <= mem_fraction < 1.0):
        raise ConfigError(f"mem_fraction must be in [0,1): {mem_fraction}")
    return dcc_seconds * _DCC_FLOP_RATE, mem_fraction * dcc_seconds * _DCC_MEM_BW


# ---------------------------------------------------------------------------
# Class B: calibrated against the paper's Fig 3 serial DCC wall times.
# Other classes: official NPB size ratios applied to the class-B work.
# ---------------------------------------------------------------------------

#: (dcc_serial_seconds from Fig 3, mem_fraction) per benchmark, class B.
_FIG3_CALIBRATION: dict[str, tuple[float, float]] = {
    "bt": (1696.9, 0.45),
    "ep": (141.5, 0.02),
    "cg": (244.9, 0.85),
    "ft": (327.6, 0.45),
    "is": (8.6, 0.70),
    "lu": (1514.7, 0.50),
    "mg": (72.0, 0.60),
    "sp": (1936.1, 0.50),
}

#: Official problem dimensions and iteration counts per class.
_DIMS: dict[str, dict[str, tuple[tuple[int, ...], int]]] = {
    # BT/SP: cubic grid edge, iterations.
    "bt": {"S": ((12,), 60), "W": ((24,), 200), "A": ((64,), 200),
           "B": ((102,), 200), "C": ((162,), 200), "D": ((408,), 250)},
    "sp": {"S": ((12,), 100), "W": ((36,), 400), "A": ((64,), 400),
           "B": ((102,), 400), "C": ((162,), 400), "D": ((408,), 500)},
    # LU: cubic grid edge, iterations.
    "lu": {"S": ((12,), 50), "W": ((33,), 300), "A": ((64,), 250),
           "B": ((102,), 250), "C": ((162,), 250), "D": ((408,), 300)},
    # CG: (na, nonzer, shift), iterations.
    "cg": {"S": ((1400, 7, 10), 15), "W": ((7000, 8, 12), 15),
           "A": ((14000, 11, 20), 15), "B": ((75000, 13, 60), 75),
           "C": ((150000, 15, 110), 75), "D": ((1500000, 21, 500), 100)},
    # EP: (log2 of pair count,), 1 "iteration".
    "ep": {"S": ((24,), 1), "W": ((25,), 1), "A": ((28,), 1),
           "B": ((30,), 1), "C": ((32,), 1), "D": ((36,), 1)},
    # FT: (nx, ny, nz), iterations.
    "ft": {"S": ((64, 64, 64), 6), "W": ((128, 128, 32), 6),
           "A": ((256, 256, 128), 6), "B": ((512, 256, 256), 20),
           "C": ((512, 512, 512), 20), "D": ((2048, 1024, 1024), 25)},
    # IS: (log2 keys, log2 max key), iterations.
    "is": {"S": ((16, 11), 10), "W": ((20, 16), 10), "A": ((23, 19), 10),
           "B": ((25, 21), 10), "C": ((27, 23), 10), "D": ((31, 27), 10)},
    # MG: cubic grid edge, iterations.
    "mg": {"S": ((32,), 4), "W": ((128,), 4), "A": ((256,), 4),
           "B": ((256,), 20), "C": ((512,), 20), "D": ((1024,), 50)},
}

#: Approximate class-B resident memory footprints (bytes) — the scale of
#: the official NPB memory requirements; a rank's working set is its
#: share.  EP is register/cache resident by construction.
_FOOTPRINT_B: dict[str, float] = {
    "bt": 0.7e9,
    "sp": 0.7e9,
    "lu": 0.6e9,
    "cg": 0.4e9,
    "ep": 1e6,
    "ft": 1.7e9,
    "is": 0.3e9,
    "mg": 0.45e9,
}

#: Work of each class relative to class B (official Mop-count ratios,
#: rounded; class D ratios are approximate grid-scaling estimates; used
#: only for non-B classes).
_CLASS_WORK_RATIO: dict[str, dict[str, float]] = {
    "bt": {"S": 2.4e-4, "W": 4.3e-3, "A": 0.241, "B": 1.0, "C": 4.05, "D": 83.0},
    "sp": {"S": 2.9e-4, "W": 0.011, "A": 0.240, "B": 1.0, "C": 4.07, "D": 84.0},
    "lu": {"S": 1.7e-4, "W": 0.015, "A": 0.196, "B": 1.0, "C": 4.07, "D": 81.0},
    "cg": {"S": 2.4e-4, "W": 0.011, "A": 0.027, "B": 1.0, "C": 2.62, "D": 66.0},
    "ep": {"S": 0.0156, "W": 0.0312, "A": 0.25, "B": 1.0, "C": 4.0, "D": 64.0},
    "ft": {"S": 1.9e-3, "W": 4.2e-3, "A": 0.078, "B": 1.0, "C": 4.3, "D": 85.0},
    "is": {"S": 1.6e-3, "W": 0.026, "A": 0.21, "B": 1.0, "C": 4.2, "D": 67.0},
    "mg": {"S": 2.7e-4, "W": 0.012, "A": 0.20, "B": 1.0, "C": 9.2, "D": 165.0},
}


def problem(bench: str, klass: str = "B") -> NpbClass:
    """Build the :class:`NpbClass` for ``bench`` at problem ``klass``."""
    bench = bench.lower()
    if bench not in _FIG3_CALIBRATION:
        raise ConfigError(
            f"unknown NPB benchmark {bench!r}; expected one of "
            f"{sorted(_FIG3_CALIBRATION)}"
        )
    klass = klass.upper()
    if klass not in CLASS_NAMES:
        raise ConfigError(f"unknown NPB class {klass!r}; expected {CLASS_NAMES}")
    dcc_seconds, mu = _FIG3_CALIBRATION[bench]
    flops_b, bytes_b = _work(dcc_seconds, mu)
    ratio = _CLASS_WORK_RATIO[bench][klass]
    dims, iters = _DIMS[bench][klass]
    return NpbClass(
        bench=bench,
        klass=klass,
        dims=dims,
        iterations=iters,
        total_flops=flops_b * ratio,
        total_mem_bytes=bytes_b * ratio,
        footprint_bytes=_FOOTPRINT_B[bench] * ratio,
    )
