"""CG — Conjugate Gradient (smallest eigenvalue of a sparse SPD matrix).

Communication pattern (NPB 3.3 ``cg.f``): ranks form an
``nprows x npcols`` grid (``npcols >= nprows``, both powers of two).
Each of the 25 inner CG iterations per outer step performs

* a sum-reduction of the SpMV partial results across the process row
  (modelled as an all-reduce on the row sub-communicator, size
  ``8 * na / nprows`` bytes),
* an exchange with the transpose partner (``8 * na / p`` bytes), and
* two scalar dot-product reductions (8-byte all-reduces).

CG is the paper's NUMA showpiece: it is memory-bound
(``mem_fraction = 0.85``), so on DCC — where ESX masks the topology —
speedup "drops at 8 processes ... due [to] NUMA effects", before the
GigE hop adds the inter-node penalty at 16 (Fig 4, section V-B).
"""

from __future__ import annotations

import math
import typing as _t

from repro.npb.base import NpbBenchmark

#: Inner CG iterations per outer (power-method) step, per the NPB source.
CG_INNER_ITERS = 25


class CgBenchmark(NpbBenchmark):
    """NPB CG skeleton."""

    name = "cg"
    default_sim_iters = 2

    def proc_grid(self, p: int) -> tuple[int, int]:
        """NPB CG factorisation: ``npcols >= nprows``, both powers of 2."""
        log = p.bit_length() - 1
        npcols = 1 << ((log + 1) // 2)
        return p // npcols, npcols  # (nprows, npcols)

    def _shares(self, comm) -> tuple[float, int, int]:
        """(work share, nprows, npcols) for this rank."""
        na = self.cfg.dims[0]
        nprows, npcols = self.proc_grid(comm.size)
        row, col = divmod(comm.rank, npcols)
        local_rows = self.split_extent(na, nprows, row)
        local_cols = self.split_extent(na, npcols, col)
        share = (local_rows * local_cols) / (na * na)
        return share, nprows, npcols

    def setup(self, comm) -> _t.Generator:
        # Matrix generation (makea) costs roughly one outer iteration.
        share, nprows, npcols = self._shares(comm)
        yield from comm.compute(
            flops=self.cfg.flops_per_iter * share,
            mem_bytes=self.cfg.mem_bytes_per_iter * share,
            working_set=self.local_ws(comm),
        )
        # Row sub-communicator used by the SpMV sum-reduction (stored in
        # the rank-private cache: the benchmark object is shared).
        if comm.size > 1:
            comm.cache["cg_row"] = yield from comm.split(comm.rank // npcols)
        else:
            comm.cache["cg_row"] = comm

    def iteration(self, comm, it: int) -> _t.Generator:
        cfg = self.cfg
        na = cfg.dims[0]
        share, nprows, npcols = self._shares(comm)
        p = comm.size
        flops_inner = cfg.flops_per_iter * share * 0.95 / CG_INNER_ITERS
        mem_inner = cfg.mem_bytes_per_iter * share * 0.95 / CG_INNER_ITERS
        row_bytes = 8 * na // nprows
        transpose_bytes = max(8, 8 * na // p)
        # Transpose partner: the rank at the transposed grid position.
        row, col = divmod(comm.rank, npcols)
        t_row = col % nprows
        t_col = row + (col // nprows) * nprows
        partner = t_row * npcols + t_col
        row_comm = comm.cache["cg_row"]
        for _ in range(CG_INNER_ITERS):
            yield from comm.compute(flops=flops_inner, mem_bytes=mem_inner, working_set=self.local_ws(comm), access="random")
            if p > 1:
                yield from row_comm.allreduce(row_bytes, value=0.0)
                if partner != comm.rank:
                    yield from comm.sendrecv(partner, transpose_bytes, partner)
                yield from comm.allreduce(8, value=0.0)
                yield from comm.allreduce(8, value=0.0)
        # Residual norm of the outer (power method) step.
        yield from comm.compute(
            flops=cfg.flops_per_iter * share * 0.05,
            mem_bytes=cfg.mem_bytes_per_iter * share * 0.05,
            working_set=self.local_ws(comm),
        )
        if p > 1:
            yield from comm.allreduce(8, value=0.0)
        return None
