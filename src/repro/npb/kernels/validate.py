"""Run every numeric-kernel verification (the ``repro verify`` command).

One call exercises all five numeric kernels' invariants plus the
distributed-equals-serial checks through the simulated MPI, returning a
list of :class:`~repro.npb.verification.VerificationRecord` so callers
can render or assert on them.
"""

from __future__ import annotations

import typing as _t

from repro.npb.kernels import (
    cg_kernel,
    ep_kernel,
    ft_kernel,
    is_kernel,
    mg_kernel,
)
from repro.npb.kernels.distributed import distributed_cg, distributed_ep
from repro.npb.verification import VerificationRecord


def run_all_verifications(
    *, quick: bool = True, progress: _t.Callable[[str], None] | None = None
) -> list[VerificationRecord]:
    """Execute every kernel verification; raises on the first failure."""

    def note(name: str) -> None:
        if progress is not None:
            progress(name)

    records: list[VerificationRecord] = []

    note("ep")
    ep = ep_kernel(16 if quick else 20)
    records.append(ep.verify())

    note("cg")
    cg = cg_kernel(n=600 if quick else 1400, nonzer=6 if quick else 7, niter=12)
    records.append(cg.verify())

    note("ft")
    ft = ft_kernel((32, 32, 32) if quick else (64, 64, 64), niter=5)
    records.append(ft.verify())

    note("is")
    records.append(is_kernel(14 if quick else 16, 11).verify())

    note("mg")
    records.append(mg_kernel(32, cycles=4).verify())

    note("distributed-ep")
    from repro.platforms import VAYU

    serial = ep_kernel(14)
    dist = distributed_ep(VAYU, 4, 14)
    records.append(
        VerificationRecord(
            bench="ep",
            klass="dist",
            quantity="distributed_sx_equals_serial",
            computed=dist.value.sx,
            reference=serial.sx,
            tolerance=1e-12,
        ).check()
    )

    note("distributed-cg")
    serial_cg = cg_kernel(n=400, nonzer=5, niter=6)
    dist_cg = distributed_cg(VAYU, 4, n=400, nonzer=5, niter=6)
    records.append(
        VerificationRecord(
            bench="cg",
            klass="dist",
            quantity="distributed_zeta_equals_serial",
            computed=dist_cg.value,
            reference=serial_cg.zeta_history[5],
            tolerance=1e-9,
        ).check()
    )
    return records


def render_verifications(records: _t.Sequence[VerificationRecord]) -> str:
    """Aligned text table of verification outcomes."""
    lines = [f"{'bench':<6} {'class':<5} {'quantity':<36} {'status':<6} value"]
    for rec in records:
        status = "PASS" if rec.passed else "FAIL"
        lines.append(
            f"{rec.bench:<6} {rec.klass:<5} {rec.quantity:<36} {status:<6} "
            f"{rec.computed:.6g} (ref {rec.reference:.6g})"
        )
    return "\n".join(lines)
