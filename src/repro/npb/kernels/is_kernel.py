"""IS numeric kernel: integer bucket sort with ranking.

The NPB IS benchmark ranks ``2**n_log`` keys drawn from a triangular-ish
distribution (the average of four NPB uniform deviates scaled to the key
range), via bucket counting and prefix sums — the same structure the
communication skeleton models with its bucket-size all-reduce and key
``Alltoallv``.

Verified invariants: the computed ranks are a permutation, and gathering
keys by rank yields a non-decreasing sequence (full sortedness, stronger
than NPB's spot checks).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError
from repro.npb.kernels.randnpb import NpbRandom
from repro.npb.verification import VerificationRecord

#: NPB IS seed.
IS_SEED = 314159265


def generate_keys(n_log: int, max_key_log: int, *, seed: int = IS_SEED) -> np.ndarray:
    """NPB IS key sequence: ``(k/4) * (r1+r2+r3+r4)`` per key."""
    if n_log < 4 or max_key_log < 2:
        raise ConfigError(f"invalid IS sizes: {n_log}, {max_key_log}")
    n = 1 << n_log
    max_key = 1 << max_key_log
    rng = NpbRandom(seed)
    r = rng.randlc(4 * n).reshape(n, 4).sum(axis=1)
    return np.minimum((max_key / 4.0 * r).astype(np.int64), max_key - 1)


@dataclasses.dataclass(frozen=True, slots=True)
class IsResult:
    """Keys and their computed ranks."""

    keys: np.ndarray
    ranks: np.ndarray
    bucket_counts: np.ndarray

    def verify(self) -> VerificationRecord:
        """Ranks are a permutation and induce a sorted ordering."""
        n = self.keys.size
        order = np.empty(n, dtype=np.int64)
        order[self.ranks] = np.arange(n)
        sorted_keys = self.keys[order]
        is_perm = np.array_equal(np.sort(self.ranks), np.arange(n))
        is_sorted = bool(np.all(np.diff(sorted_keys) >= 0))
        return VerificationRecord(
            bench="is",
            klass="-",
            quantity="sorted_permutation",
            computed=float(is_perm and is_sorted),
            reference=1.0,
            tolerance=0.0,
        ).check()


def is_kernel(
    n_log: int = 16, max_key_log: int = 11, *, buckets: int = 1024
) -> IsResult:
    """Bucketed ranking of the NPB IS key sequence."""
    keys = generate_keys(n_log, max_key_log)
    max_key = 1 << max_key_log
    shift = max(0, max_key_log - int(np.log2(buckets)))
    bucket_of = keys >> shift
    bucket_counts = np.bincount(bucket_of, minlength=min(buckets, max_key))
    # Stable rank computation: position in the key-sorted order, with
    # ties broken by original index (what bucket-local counting yields).
    ranks = np.empty(keys.size, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    ranks[order] = np.arange(keys.size)
    return IsResult(keys=keys, ranks=ranks, bucket_counts=bucket_counts)
