"""Distributed numeric drivers: real arithmetic over simulated MPI.

These drivers execute the numeric kernels *in parallel* on the simulated
runtime, moving real NumPy payloads through the payload-carrying
collectives.  They validate that the communication skeletons'
structure — who reduces what with whom — is the correct one: the
distributed results must agree with the serial kernels (exactly for EP's
integer histogram, to rounding for CG's floating-point recurrences).

They also *price* the runs: each driver issues matching ``compute``
bursts, so a validation run doubles as a miniature performance
experiment.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.errors import ConfigError
from repro.npb.kernels.cg_kernel import CG_INNER, make_spd_matrix
from repro.npb.kernels.ep_kernel import EpResult, combine, ep_kernel
from repro.platforms.base import PlatformSpec
from repro.smpi import Placement, run_program


@dataclasses.dataclass(slots=True)
class DistributedOutcome:
    """Result of a distributed validation run."""

    value: _t.Any
    wall_time: float
    comm_percent: float


def distributed_ep(
    platform: PlatformSpec, nprocs: int, m: int = 16, *, seed: int = 0
) -> DistributedOutcome:
    """EP over ``nprocs`` simulated ranks; returns the combined result."""
    if m > 22:
        raise ConfigError(
            f"distributed EP is a validation path; m={m} would be slow (max 22)"
        )

    def program(comm) -> _t.Generator:
        local = ep_kernel(m, rank=comm.rank, nprocs=comm.size)
        # Price the pair generation: ~90 flops per pair.
        yield from comm.compute(flops=90.0 * local.pairs)
        sx = yield from comm.allreduce(8, value=local.sx)
        sy = yield from comm.allreduce(8, value=local.sy)
        q = yield from comm.allreduce(
            80, value=np.asarray(local.q), op=lambda a, b: a + b
        )
        acc = yield from comm.allreduce(8, value=local.accepted)
        return EpResult(
            pairs=1 << m, accepted=acc, sx=sx, sy=sy,
            q=tuple(int(v) for v in q),
        )

    result = run_program(platform, nprocs, program, seed=seed)
    report = result.report()
    return DistributedOutcome(
        value=result.rank_results[0],
        wall_time=result.wall_time,
        comm_percent=report.comm_percent,
    )


def distributed_cg(
    platform: PlatformSpec,
    nprocs: int,
    n: int = 800,
    nonzer: int = 6,
    niter: int = 10,
    shift: float = 10.0,
    *,
    lam_min: float = 0.1,
    seed: int = 0,
) -> DistributedOutcome:
    """CG power method with row-partitioned SpMV over simulated MPI.

    Each rank owns a contiguous row block; the mat-vec gathers the full
    iterate with an ``allgather`` and the dot products reduce partial
    sums — structurally the skeleton's pattern, with live data.
    """
    a = make_spd_matrix(n, nonzer, lam_min=lam_min, seed=7)

    def program(comm) -> _t.Generator:
        p = comm.size
        base, extra = divmod(n, p)
        lo = comm.rank * base + min(comm.rank, extra)
        hi = lo + base + (1 if comm.rank < extra else 0)
        a_local = a[lo:hi]
        nnz_local = a_local.nnz
        x_local = np.ones(hi - lo)

        def gather_full(v_local: np.ndarray) -> _t.Generator:
            parts = yield from comm.allgather(
                8 * v_local.size, value=v_local
            )
            return np.concatenate(parts)

        def pdot(u: np.ndarray, v: np.ndarray) -> _t.Generator:
            total = yield from comm.allreduce(8, value=float(u @ v))
            return total

        zeta = 0.0
        for _outer in range(niter):
            # CG solve of A z = x from z = 0, row-distributed.
            z = np.zeros_like(x_local)
            r = x_local.copy()
            pvec = r.copy()
            rho = yield from pdot(r, r)
            for _inner in range(CG_INNER):
                p_full = yield from gather_full(pvec)
                yield from comm.compute(flops=2.0 * nnz_local)
                q = a_local @ p_full
                pq = yield from pdot(pvec, q)
                alpha = rho / pq
                z += alpha * pvec
                r -= alpha * q
                rho_new = yield from pdot(r, r)
                beta = rho_new / rho
                rho = rho_new
                pvec = r + beta * pvec
            xz = yield from pdot(x_local, z)
            zeta = shift + 1.0 / xz
            znorm2 = yield from pdot(z, z)
            x_local = z / np.sqrt(znorm2)
        return zeta

    result = run_program(platform, nprocs, program, seed=seed)
    zetas = result.rank_results
    if any(abs(z - zetas[0]) > 1e-12 for z in zetas):
        raise ConfigError("ranks disagreed on zeta — collective semantics broken")
    return DistributedOutcome(
        value=zetas[0],
        wall_time=result.wall_time,
        comm_percent=result.report().comm_percent,
    )
