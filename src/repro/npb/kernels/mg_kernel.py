"""MG numeric kernel: multigrid V-cycles for the 3-D Poisson equation.

A working geometric multigrid solver on a periodic cubic grid: Jacobi
smoothing, full-weighting-style restriction, trilinear prolongation —
the computational pattern of NPB MG (whose operators are 27-point
stencils of the same structure).

Verified invariant: the residual norm contracts by a grid-independent
factor per V-cycle (textbook multigrid behaviour); the test demands at
least a 2.5x reduction per cycle, far below the typical ~5-10x but far
above what any broken cycle achieves.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError
from repro.npb.verification import VerificationRecord


def _laplacian(u: np.ndarray, h: float) -> np.ndarray:
    """Periodic 7-point Laplacian."""
    lap = -6.0 * u
    for axis in range(3):
        lap += np.roll(u, 1, axis) + np.roll(u, -1, axis)
    return lap / (h * h)


def _jacobi(u: np.ndarray, f: np.ndarray, h: float, sweeps: int) -> np.ndarray:
    """Weighted-Jacobi smoothing (omega = 2/3, the 3-D optimum)."""
    omega = 2.0 / 3.0
    for _ in range(sweeps):
        neigh = np.zeros_like(u)
        for axis in range(3):
            neigh += np.roll(u, 1, axis) + np.roll(u, -1, axis)
        u = (1 - omega) * u + omega * (neigh - h * h * f) / 6.0
    return u

def _restrict(r: np.ndarray) -> np.ndarray:
    """Cell-averaged coarsening by 2 in each dimension."""
    n = r.shape[0] // 2
    return (
        r.reshape(n, 2, n, 2, n, 2).mean(axis=(1, 3, 5))
    )


def _prolong(e: np.ndarray) -> np.ndarray:
    """Piecewise-constant refinement (adjoint of the cell average)."""
    return e.repeat(2, 0).repeat(2, 1).repeat(2, 2)


def _vcycle(u: np.ndarray, f: np.ndarray, h: float, pre: int = 2, post: int = 2) -> np.ndarray:
    n = u.shape[0]
    u = _jacobi(u, f, h, pre)
    if n > 4:
        r = f - _laplacian(u, h)
        e = _vcycle(np.zeros((n // 2,) * 3), _restrict(r), 2 * h)
        u = u + _prolong(e)
    u = _jacobi(u, f, h, post)
    return u


@dataclasses.dataclass(frozen=True, slots=True)
class MgResult:
    """Residual history of the V-cycle iteration."""

    residuals: tuple[float, ...]

    @property
    def contraction_factors(self) -> tuple[float, ...]:
        return tuple(
            b / a for a, b in zip(self.residuals, self.residuals[1:])
        )

    def verify(self, min_contraction: float = 0.4) -> VerificationRecord:
        """Mean per-cycle contraction must beat ``min_contraction``.

        Encoded as: the mean factor, compared against a reference of 0
        with absolute tolerance ``min_contraction`` — i.e. it must lie
        in [0, ``min_contraction``].
        """
        mean = float(np.mean(self.contraction_factors))
        return VerificationRecord(
            bench="mg",
            klass="-",
            quantity="residual_contraction",
            computed=mean,
            reference=0.0,
            tolerance=min_contraction,
        ).check()


def mg_kernel(n: int = 32, cycles: int = 4, *, seed: int = 11) -> MgResult:
    """Run ``cycles`` V-cycles on an ``n**3`` periodic Poisson problem."""
    if n < 8 or n & (n - 1):
        raise ConfigError(f"grid edge must be a power of two >= 8: {n}")
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((n, n, n))
    f -= f.mean()  # compatibility condition for the periodic problem
    h = 1.0 / n
    u = np.zeros_like(f)
    residuals = [float(np.linalg.norm(f - _laplacian(u, h)))]
    for _ in range(cycles):
        u = _vcycle(u, f, h)
        u -= u.mean()  # fix the constant nullspace
        residuals.append(float(np.linalg.norm(f - _laplacian(u, h))))
    return MgResult(residuals=tuple(residuals))
