"""CG numeric kernel: inverse power method with a conjugate-gradient solve.

The NPB CG benchmark estimates the smallest eigenvalue of a random
sparse symmetric positive-definite matrix by the shifted inverse power
method, solving ``A z = x`` with 25 CG iterations per outer step and
updating ``zeta = shift + 1 / (x . z)``.

The matrix here is generated with a documented construction (a sparse
symmetric diagonally-dominant matrix with a planted spectrum) rather
than NPB's ``makea`` routine, so the converged ``zeta`` is *analytically
known*: for ``A = Q diag(d) Q^T`` the inverse power method converges to
``shift + min(d)`` when started outside the nullspace.  Verification is
therefore exact rather than regression-based.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.npb.verification import VerificationRecord

#: Inner CG iterations per outer step (NPB constant).
CG_INNER = 25


def make_spd_matrix(
    n: int, nonzer: int, *, lam_min: float = 0.1, lam_max: float = 20.0, seed: int = 7
) -> sp.csr_matrix:
    """A sparse SPD matrix with extreme eigenvalues ~``lam_min``/``lam_max``.

    Construction: a random sparse symmetric ``S`` with zero row sums
    (graph-Laplacian-like, hence PSD) scaled into ``(0, lam_max -
    lam_min)``, plus ``lam_min * I``.  The smallest eigenvalue is exactly
    ``lam_min`` (the constant vector is ``S``'s nullspace), giving CG an
    analytic target.
    """
    if n < 4 or nonzer < 1:
        raise ConfigError(f"invalid matrix parameters: n={n}, nonzer={nonzer}")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nonzer)
    cols = rng.integers(0, n, size=n * nonzer)
    vals = rng.random(n * nonzer)
    a = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    s = (a + a.T).tocsr()
    s.setdiag(0.0)
    s.eliminate_zeros()
    # Laplacian of the weighted graph: PSD with nullspace = constants.
    lap = sp.diags(np.asarray(s.sum(axis=1)).ravel()) - s
    # Scale the Laplacian's spectrum into (0, lam_max - lam_min].
    top = float(
        sp.linalg.eigsh(lap, k=1, which="LA", return_eigenvectors=False)[0]
    )
    lap = lap * ((lam_max - lam_min) / top)
    return (lap + lam_min * sp.eye(n)).tocsr()


@dataclasses.dataclass(frozen=True, slots=True)
class CgResult:
    """Outcome of the CG power-method run."""

    zeta: float
    zeta_history: tuple[float, ...]
    final_residual: float
    lam_min: float
    shift: float

    def verify(self, tolerance: float = 1e-4) -> VerificationRecord:
        """``zeta`` must converge to ``shift + lam_min``."""
        return VerificationRecord(
            bench="cg",
            klass="-",
            quantity="zeta",
            computed=self.zeta,
            reference=self.shift + self.lam_min,
            tolerance=tolerance,
        ).check()


def cg_solve(
    matvec: _t.Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    iters: int = CG_INNER,
) -> tuple[np.ndarray, float]:
    """``iters`` conjugate-gradient steps for ``A z = b`` from ``z = 0``.

    Returns ``(z, ||r||)``.  Exposed separately so the distributed driver
    can substitute an smpi-backed ``matvec``/dot path.
    """
    z = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(iters):
        q = matvec(p)
        alpha = rho / float(p @ q)
        z += alpha * p
        r -= alpha * q
        rho_new = float(r @ r)
        beta = rho_new / rho
        rho = rho_new
        p = r + beta * p
    return z, float(np.sqrt(rho))


def cg_kernel(
    n: int = 1400,
    nonzer: int = 7,
    niter: int = 15,
    shift: float = 10.0,
    *,
    lam_min: float = 0.1,
    seed: int = 7,
) -> CgResult:
    """The full NPB CG driver (class-S-like defaults) in NumPy."""
    a = make_spd_matrix(n, nonzer, lam_min=lam_min, seed=seed)
    x = np.ones(n)
    history = []
    zeta = 0.0
    resid = 0.0
    for _ in range(niter):
        z, resid = cg_solve(lambda v: a @ v, x)
        zeta = shift + 1.0 / float(x @ z)
        history.append(zeta)
        x = z / float(np.linalg.norm(z))
    return CgResult(
        zeta=zeta,
        zeta_history=tuple(history),
        final_residual=resid,
        lam_min=lam_min,
        shift=shift,
    )
