"""The NPB pseudo-random number generator.

The suite's reference generator is the linear congruential scheme

``x_{k+1} = a * x_k  (mod 2**46)``,   ``a = 5**13``,

returning uniform deviates ``x_k * 2**-46`` in (0, 1).  Because
``x_k = x_0 * a**k (mod 2**46)``, a whole block of deviates is one
vectorised modular multiply of the current state by a precomputed table
of powers of ``a`` — the 46-bit modular product is decomposed into
23-bit halves so every intermediate fits comfortably in int64.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: NPB multiplier and modulus.
A = 5**13
MOD = 1 << 46
_SCALE = 2.0**-46
_MASK23 = (1 << 23) - 1
_BLOCK = 1 << 14


def _modmul_vec(a_arr: np.ndarray, b: int) -> np.ndarray:
    """Elementwise ``a_arr * b mod 2**46`` for int64 inputs < 2**46."""
    b_hi, b_lo = divmod(b, 1 << 23)
    a_hi = a_arr >> 23
    a_lo = a_arr & _MASK23
    t = b_hi * a_lo + b_lo * a_hi
    return (((t & _MASK23) << 23) + b_lo * a_lo) & (MOD - 1)


def _power_table(n: int) -> np.ndarray:
    """``[a^1, a^2, ..., a^n] mod 2**46`` as int64."""
    table = np.empty(n, dtype=np.int64)
    x = 1
    for i in range(n):
        x = (x * A) % MOD
        table[i] = x
    return table


_POWERS = _power_table(_BLOCK)


class NpbRandom:
    """Vectorised NPB LCG stream (bit-exact with the Fortran reference)."""

    def __init__(self, seed: int = 314159265) -> None:
        if not (0 < seed < MOD) or seed % 2 == 0:
            raise ConfigError(f"NPB seed must be odd and in (0, 2**46): {seed}")
        self._x = seed

    @property
    def state(self) -> int:
        """Current raw LCG state."""
        return self._x

    def randlc(self, n: int) -> np.ndarray:
        """Next ``n`` uniform deviates in (0, 1) as float64."""
        if n < 0:
            raise ConfigError(f"negative draw count: {n}")
        out = np.empty(n, dtype=np.float64)
        filled = 0
        while filled < n:
            m = min(_BLOCK, n - filled)
            xs = _modmul_vec(_POWERS[:m], self._x)
            out[filled : filled + m] = xs * _SCALE
            self._x = int(xs[-1])
            filled += m
        return out

    def randlc_pairs(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """``n`` pairs of deviates (EP consumes them two at a time)."""
        flat = self.randlc(2 * n)
        return flat[0::2], flat[1::2]

    def skip(self, count: int) -> None:
        """Advance the stream by ``count`` draws in O(log count)."""
        if count < 0:
            raise ConfigError(f"negative skip: {count}")
        self._x = (self._x * pow(A, count, MOD)) % MOD

    @staticmethod
    def jumped(seed: int, count: int) -> "NpbRandom":
        """A stream equal to ``NpbRandom(seed)`` advanced by ``count``
        draws — how EP/CG assign independent blocks to each rank."""
        rng = NpbRandom(seed)
        rng.skip(count)
        return rng
