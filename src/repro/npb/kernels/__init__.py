"""Real numeric kernels for the NPB computational patterns.

These are working NumPy implementations of the mathematics behind five
of the benchmarks, runnable at small problem classes.  They serve three
purposes:

1. **Skeleton validation** — the distributed drivers
   (:mod:`repro.npb.kernels.distributed`) run the same arithmetic
   *through the simulated MPI* (payload-carrying collectives) and must
   reproduce the serial kernels' answers exactly, proving the
   communication skeletons move the right data in the right pattern.
2. **Invariant checks** — each kernel verifies analytic properties
   (CG eigenvalue bounds, FFT energy conservation, sort permutation,
   multigrid residual contraction, EP's Marsaglia acceptance rate).
3. **Honest numerics** — the reproduction exercises real linear algebra
   and transforms, not only cost models.

The random-number generator is the official NPB linear congruential
generator (``a = 5**13``, modulo ``2**46``), so streams match the
reference implementation.
"""

from repro.npb.kernels.randnpb import NpbRandom
from repro.npb.kernels.ep_kernel import ep_kernel
from repro.npb.kernels.cg_kernel import cg_kernel, make_spd_matrix
from repro.npb.kernels.ft_kernel import ft_kernel
from repro.npb.kernels.is_kernel import is_kernel
from repro.npb.kernels.mg_kernel import mg_kernel

__all__ = [
    "NpbRandom",
    "cg_kernel",
    "ep_kernel",
    "ft_kernel",
    "is_kernel",
    "make_spd_matrix",
    "mg_kernel",
]
