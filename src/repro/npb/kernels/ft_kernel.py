"""FT numeric kernel: spectral solution of a 3-D heat-like PDE.

The NPB FT benchmark evolves ``u_t = alpha * Laplacian(u)`` in Fourier
space: one forward 3-D FFT of a random initial field, then per timestep
a pointwise multiply by the Gaussian evolution factor and an inverse
FFT, accumulating a checksum.

Verified invariants:

* **Parseval/energy decay** — the spectral energy after ``t`` steps
  equals ``sum |U_k|^2 * exp(-2 alpha t k^2)``, computable directly from
  the initial spectrum; the evolved field must match it to rounding.
* **Transform consistency** — ``ifft(fft(u)) == u``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError
from repro.npb.kernels.randnpb import NpbRandom
from repro.npb.verification import VerificationRecord

#: NPB FT seed and diffusivity.
FT_SEED = 314159265
ALPHA = 1e-6


def _wavenumbers(shape: tuple[int, int, int]) -> np.ndarray:
    """``k^2`` on the FFT grid (NPB's bar-squared exponent array)."""
    kx = np.fft.fftfreq(shape[0]) * shape[0]
    ky = np.fft.fftfreq(shape[1]) * shape[1]
    kz = np.fft.fftfreq(shape[2]) * shape[2]
    return (
        kx[:, None, None] ** 2 + ky[None, :, None] ** 2 + kz[None, None, :] ** 2
    )


@dataclasses.dataclass(frozen=True, slots=True)
class FtResult:
    """Checksums and energies of one FT run."""

    checksums: tuple[complex, ...]
    energy_initial: float
    energy_final: float
    energy_expected: float

    def verify(self, tolerance: float = 1e-10) -> VerificationRecord:
        """Spectral energy must follow the analytic decay law."""
        return VerificationRecord(
            bench="ft",
            klass="-",
            quantity="spectral_energy",
            computed=self.energy_final,
            reference=self.energy_expected,
            tolerance=tolerance,
        ).check()


def ft_kernel(
    shape: tuple[int, int, int] = (64, 64, 64), niter: int = 6
) -> FtResult:
    """Run the FT evolution on a ``shape`` grid for ``niter`` steps."""
    if any(s < 2 for s in shape) or niter < 1:
        raise ConfigError(f"invalid FT configuration: {shape}, {niter}")
    n = int(np.prod(shape))
    rng = NpbRandom(FT_SEED)
    flat = rng.randlc(2 * n)
    u0 = (flat[0::2] + 1j * flat[1::2]).reshape(shape)

    spectrum = np.fft.fftn(u0)
    k2 = _wavenumbers(shape)
    energy0 = float(np.sum(np.abs(spectrum) ** 2))

    checksums = []
    factor = np.exp(-4.0 * ALPHA * np.pi**2 * k2)
    evolved = spectrum.copy()
    for step in range(1, niter + 1):
        evolved *= factor
        u = np.fft.ifftn(evolved)
        # NPB checksum: sum of 1024 strided samples of the field.
        idx = (np.arange(1024) * 5 + step) % n
        checksums.append(complex(u.ravel()[idx].sum()))
    energy_final = float(np.sum(np.abs(evolved) ** 2))
    energy_expected = float(
        np.sum(np.abs(spectrum) ** 2 * np.exp(-8.0 * ALPHA * np.pi**2 * k2 * niter))
    )
    return FtResult(
        checksums=tuple(checksums),
        energy_initial=energy0,
        energy_final=energy_final,
        energy_expected=energy_expected,
    )
