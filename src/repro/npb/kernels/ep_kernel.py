"""EP numeric kernel: Gaussian deviates by the Marsaglia polar method.

Exactly the NPB EP computation: draw pairs ``(x, y)`` in (-1, 1)^2 from
the NPB LCG, accept when ``t = x^2 + y^2 <= 1``, transform to Gaussian
pairs, accumulate the sums and the count histogram of
``max(|X_k|, |Y_k|)`` bins.  The acceptance rate converges to ``pi / 4``,
which the verification checks analytically.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError
from repro.npb.kernels.randnpb import NpbRandom
from repro.npb.verification import VerificationRecord

#: NPB EP seed.
EP_SEED = 271828183


@dataclasses.dataclass(frozen=True, slots=True)
class EpResult:
    """Sums and histogram of one EP run."""

    pairs: int
    accepted: int
    sx: float
    sy: float
    q: tuple[int, ...]

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.pairs

    def verify(self) -> VerificationRecord:
        """Check the Marsaglia acceptance rate against ``pi / 4``.

        The tolerance scales with the binomial standard error, so the
        check is seed-independent and tight (5 sigma).
        """
        p = np.pi / 4.0
        sigma = float(np.sqrt(p * (1 - p) / self.pairs))
        return VerificationRecord(
            bench="ep",
            klass="-",
            quantity="acceptance_rate",
            computed=self.acceptance_rate,
            reference=p,
            tolerance=5.0 * sigma / p,
        ).check()


def ep_kernel(
    m: int, *, rank: int = 0, nprocs: int = 1, batch: int = 1 << 16
) -> EpResult:
    """Run EP for ``2**m`` pairs total, computing rank ``rank``'s block.

    With ``nprocs > 1`` each rank processes a contiguous block of the
    global stream (via the LCG's log-time skip), so the union over ranks
    equals the serial run — the property the distributed validation
    asserts.
    """
    if m < 4 or m > 34:
        raise ConfigError(f"EP m out of range: {m}")
    if not (0 <= rank < nprocs):
        raise ConfigError(f"invalid rank {rank} of {nprocs}")
    total_pairs = 1 << m
    base, extra = divmod(total_pairs, nprocs)
    my_pairs = base + (1 if rank < extra else 0)
    start_pair = rank * base + min(rank, extra)
    rng = NpbRandom.jumped(EP_SEED, 2 * start_pair)

    sx = sy = 0.0
    accepted = 0
    q = np.zeros(10, dtype=np.int64)
    remaining = my_pairs
    while remaining > 0:
        n = min(batch, remaining)
        xr, yr = rng.randlc_pairs(n)
        x = 2.0 * xr - 1.0
        y = 2.0 * yr - 1.0
        t = x * x + y * y
        ok = t <= 1.0
        tt = t[ok]
        factor = np.sqrt(-2.0 * np.log(tt) / tt)
        gx = x[ok] * factor
        gy = y[ok] * factor
        sx += float(gx.sum())
        sy += float(gy.sum())
        accepted += int(ok.sum())
        bins = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
        np.clip(bins, 0, 9, out=bins)
        q += np.bincount(bins, minlength=10)
        remaining -= n
    return EpResult(
        pairs=my_pairs, accepted=accepted, sx=sx, sy=sy, q=tuple(int(v) for v in q)
    )


def combine(results: list[EpResult], total_pairs: int) -> EpResult:
    """Combine per-rank results (what EP's final all-reduces compute)."""
    q = np.zeros(10, dtype=np.int64)
    sx = sy = 0.0
    accepted = 0
    for r in results:
        sx += r.sx
        sy += r.sy
        accepted += r.accepted
        q += np.asarray(r.q)
    return EpResult(
        pairs=total_pairs, accepted=accepted, sx=sx, sy=sy,
        q=tuple(int(v) for v in q),
    )
