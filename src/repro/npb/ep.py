"""EP — Embarrassingly Parallel (Gaussian deviates via Marsaglia polar).

The only communication is the final result combination: two 8-byte sums
and the ten-bin deviate histogram.  Its value in the study is as a pure
compute/jitter probe: the paper's Fig 4 shows near-linear speedup on
Vayu and DCC but fluctuation "with an upward trend" on EC2, caused by
Xen scheduling and HyperThreading noise — which here enters through the
platform's compute-jitter model accumulating over the chunked
compute loop.
"""

from __future__ import annotations

import typing as _t

from repro.npb.base import NpbBenchmark


class EpBenchmark(NpbBenchmark):
    """NPB EP skeleton."""

    name = "ep"
    default_sim_iters = 1
    #: Compute is issued in chunks so per-chunk jitter draws accumulate
    #: the way per-batch random-number generation does in the real code.
    chunks = 32

    def valid_nprocs(self, nprocs: int) -> bool:
        # EP accepts any process count.
        return nprocs >= 1

    def setup(self, comm) -> _t.Generator:
        # EP has no setup phase worth modelling (table initialisation).
        yield from comm.compute(flops=1e6)

    def iteration(self, comm, it: int) -> _t.Generator:
        cfg = self.cfg
        p = comm.size
        flops = cfg.total_flops / p / self.chunks
        mem = cfg.total_mem_bytes / p / self.chunks
        for _ in range(self.chunks):
            yield from comm.compute(flops=flops, mem_bytes=mem, working_set=self.local_ws(comm))
        # Combine sx, sy and the q histogram.
        yield from comm.allreduce(8, value=0.0)
        yield from comm.allreduce(8, value=0.0)
        yield from comm.allreduce(80, value=0.0)
        return None
