"""MG — Multigrid V-cycle on a 3-D Poisson problem.

Ranks form a 3-D grid.  Each V-cycle visits every grid level twice
(restriction down, prolongation up); at each visit a rank smooths its
local block (compute proportional to the level's point count) and
exchanges ghost faces with its six neighbours (``comm3`` in the NPB
source).  Face messages shrink by 4x per level, so the coarse levels are
pure latency — MG is the suite's mixed bandwidth/latency probe and one
of the kernels whose DCC speedup collapses when the job first spans two
GigE-connected nodes.

The per-level halo exchanges are priced analytically
(:func:`repro.npb.base.mixed_msg_time` blends on-node and off-node
neighbour links) as a synchronising composite per level visit; a
per-message simulation at 64 ranks x 8 levels x 20 iterations would cost
millions of events for no additional fidelity at this model order.
"""

from __future__ import annotations

import math
import typing as _t

from repro.npb.base import NpbBenchmark, mixed_msg_time


class MgBenchmark(NpbBenchmark):
    """NPB MG skeleton."""

    name = "mg"
    default_sim_iters = 3

    def _geometry(self, p: int) -> tuple[tuple[int, int, int], int]:
        n = self.cfg.dims[0]
        grid = self.grid3d(p)
        levels = int(math.log2(n))
        return grid, levels

    def _level_visit(self, comm, level: int, work_frac: float) -> _t.Generator:
        """Smooth + residual at one level plus the comm3 halo exchange.

        ``work_frac`` is this visit's share of the per-iteration work
        (proportional to the level's point count, normalised over the
        whole V-cycle by the caller).
        """
        cfg = self.cfg
        n = cfg.dims[0]
        p = comm.size
        (px, py, pz), levels = self._geometry(p)
        scale = 1 << (levels - level)  # coarsening factor at this level
        nloc = max(1, n // scale)
        yield from comm.compute(
            flops=cfg.flops_per_iter * work_frac / p,
            mem_bytes=cfg.mem_bytes_per_iter * work_frac / p,
            working_set=self.local_ws(comm),
        )
        if p == 1:
            return
        # Six ghost faces: bytes = 8 * (local face extents), neighbours at
        # rank strides 1 (x), px (y) and px*py (z).
        fx = 8 * max(1, nloc // py) * max(1, nloc // pz)
        fy = 8 * max(1, nloc // px) * max(1, nloc // pz)
        fz = 8 * max(1, nloc // px) * max(1, nloc // py)
        strides = (1, px, px * py)
        faces = (fx, fy, fz)

        def halo_time(ctx, _n: float) -> float:
            total = 0.0
            for stride, face in zip(strides, faces):
                total += 2.0 * mixed_msg_time(ctx, face, stride)
            return total

        yield from comm.composite("MPI_Sendrecv(comm3)", sum(faces) * 2, halo_time)

    def iteration(self, comm, it: int) -> _t.Generator:
        _grid, levels = self._geometry(comm.size)
        # Down sweep (restriction) then up sweep (prolongation): the fine
        # level dominates; per-visit work follows the 1/8-per-level point
        # decay, normalised so the cycle's visits sum to one iteration.
        visit_levels = list(range(levels, 0, -1)) + list(range(1, levels + 1))
        weights = [0.125 ** (levels - lev) for lev in visit_levels]
        norm = sum(weights)
        for lev, w in zip(visit_levels, weights):
            yield from self._level_visit(comm, lev, w / norm)
        if comm.size > 1:
            yield from comm.allreduce(8, value=0.0)  # residual norm
        return None
