"""IS — Integer Sort (bucketed key redistribution).

Per iteration: local key ranking (a cheap, memory-streaming pass), an
all-reduce of the 1024-entry bucket-size table, and an ``MPI_Alltoallv``
that redistributes essentially every key.  Total compute is tiny (class
B finishes in 8.6 s serially on DCC) while the redistribution volume is
large and latency-heavy, which is why the paper finds IS "communication
intensive and does not scale well on any of the clusters" — DCC spends
~98% of its wall time in MPI at 64 processes, and even Vayu reaches 45%
(Table II, Fig 4).
"""

from __future__ import annotations

import typing as _t

from repro.npb.base import NpbBenchmark

#: NPB IS bucket-table size (class A..C).
NUM_BUCKETS = 1024


class IsBenchmark(NpbBenchmark):
    """NPB IS skeleton."""

    name = "is"
    default_sim_iters = 3

    def setup(self, comm) -> _t.Generator:
        # Key generation: one streaming pass, ~a quarter of an iteration
        # (IS has only 10 timed iterations, so an over-weighted setup
        # would visibly distort the projected total).
        share = 0.25 / comm.size
        yield from comm.compute(
            flops=self.cfg.flops_per_iter * share,
            mem_bytes=self.cfg.mem_bytes_per_iter * share,
            working_set=self.local_ws(comm),
        )

    def iteration(self, comm, it: int) -> _t.Generator:
        cfg = self.cfg
        total_keys = 1 << cfg.dims[0]
        p = comm.size
        share = 1.0 / p
        # Local bucket counting pass.
        yield from comm.compute(
            flops=cfg.flops_per_iter * share * 0.5,
            mem_bytes=cfg.mem_bytes_per_iter * share * 0.5,
            working_set=self.local_ws(comm),
        )
        if p > 1:
            yield from comm.allreduce(4 * NUM_BUCKETS, value=0)
            # Redistribute all local keys (4-byte ints); bucket-size
            # variance makes the largest pairwise block ~2x the average.
            local_bytes = 4 * total_keys // p
            yield from comm.alltoallv(local_bytes, max_pair=2 * local_bytes / p)
        # Local ranking of the received keys: a random scatter.
        yield from comm.compute(
            flops=cfg.flops_per_iter * share * 0.5,
            mem_bytes=cfg.mem_bytes_per_iter * share * 0.5,
            working_set=self.local_ws(comm),
            access="random",
        )
        return None
