"""Verification support shared by the numeric kernels.

The :mod:`repro.npb.kernels` implementations verify against two kinds of
reference:

* *analytic* invariants (energy conservation for FT, sortedness and
  permutation for IS, residual contraction for MG, eigenvalue bounds
  for CG) — these hold for any correct implementation;
* *regression* values frozen from this implementation's own output,
  recorded here with the seed they were generated under.  (The official
  NPB epsilon tables apply to the exact Fortran RNG streams; offline we
  freeze our own and document them as self-generated.)
"""

from __future__ import annotations

import dataclasses

from repro.errors import VerificationError


@dataclasses.dataclass(frozen=True, slots=True)
class VerificationRecord:
    """Outcome of one kernel verification."""

    bench: str
    klass: str
    quantity: str
    computed: float
    reference: float
    tolerance: float

    @property
    def passed(self) -> bool:
        ref = self.reference
        if ref == 0.0:
            return abs(self.computed) <= self.tolerance
        return abs(self.computed - ref) / abs(ref) <= self.tolerance

    def check(self) -> "VerificationRecord":
        """Raise :class:`VerificationError` unless :attr:`passed`."""
        if not self.passed:
            raise VerificationError(
                f"{self.bench}.{self.klass} {self.quantity}: computed "
                f"{self.computed!r}, expected {self.reference!r} "
                f"(tol {self.tolerance:g})"
            )
        return self
