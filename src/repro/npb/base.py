"""Shared infrastructure for the NPB skeletons.

Iteration scaling
-----------------
The paper itself runs its application benchmarks "with the minimal number
of iterations required to accurately project long-term simulations"; the
NPB skeletons adopt the same methodology.  A benchmark simulates
``sim_iters`` steady-state iterations inside the :data:`STEADY_REGION`
IPM region and projects the full run as::

    projected_time = setup_time + (steady_time / sim_iters) * total_iters

Communication percentages (Table II) are computed over the steady region,
where they are iteration-count invariant.
"""

from __future__ import annotations

import abc
import dataclasses
import math
import typing as _t

from repro.errors import ConfigError
from repro.ipm.monitor import IpmMonitor
from repro.ipm.report import summarize
from repro.npb.classes import NpbClass, problem
from repro.platforms.base import PlatformSpec
from repro.smpi import Placement
from repro.smpi.world import run_program

#: IPM region name wrapping the timed steady-state iterations.
STEADY_REGION = "steady"


@dataclasses.dataclass(slots=True)
class BenchResult:
    """Outcome of one benchmark execution on one platform."""

    bench: str
    klass: str
    nprocs: int
    platform: str
    wall_time: float
    steady_time: float
    sim_iters: int
    total_iters: int
    monitor: IpmMonitor

    @property
    def per_iter_time(self) -> float:
        """Steady-state time per iteration."""
        return self.steady_time / self.sim_iters

    @property
    def setup_time(self) -> float:
        """Non-iterative time (initialisation, warm-up)."""
        return max(0.0, self.wall_time - self.steady_time)

    @property
    def projected_time(self) -> float:
        """Projected full-run elapsed time (the Fig 3/4 quantity)."""
        return self.setup_time + self.per_iter_time * self.total_iters

    @property
    def comm_percent(self) -> float:
        """Steady-state communication percentage (the Table II quantity)."""
        return summarize(self.monitor, STEADY_REGION).comm_percent

    def label(self) -> str:
        """Paper-style run label, e.g. ``CG.B.16``."""
        return f"{self.bench.upper()}.{self.klass}.{self.nprocs}"


class NpbBenchmark(abc.ABC):
    """Base class for the eight NPB skeletons."""

    #: Benchmark short name, e.g. ``"cg"`` (set by subclasses).
    name: str = ""
    #: Default number of simulated steady iterations.
    default_sim_iters: int = 3

    def __init__(self, klass: str = "B", sim_iters: int | None = None) -> None:
        self.cfg: NpbClass = problem(self.name, klass)
        if sim_iters is not None and sim_iters < 1:
            raise ConfigError(f"sim_iters must be >= 1: {sim_iters}")
        self.sim_iters = min(
            sim_iters if sim_iters is not None else self.default_sim_iters,
            self.cfg.iterations,
        )

    # -- to be provided by subclasses ---------------------------------------
    @abc.abstractmethod
    def iteration(self, comm, it: int) -> _t.Generator:
        """One steady-state iteration on one rank."""

    def setup(self, comm) -> _t.Generator:
        """Pre-loop initialisation (default: one untimed iteration)."""
        yield from self.iteration(comm, -1)

    def valid_nprocs(self, nprocs: int) -> bool:
        """Whether the benchmark accepts this process count (default:
        powers of two, the rule for CG/FT/IS/LU/MG/EP)."""
        return nprocs >= 1 and (nprocs & (nprocs - 1)) == 0

    # -- driver ---------------------------------------------------------------
    def make_program(self) -> _t.Callable[..., _t.Generator]:
        bench = self

        def program(comm) -> _t.Generator:
            yield from bench.setup(comm)
            yield from comm.barrier()
            with comm.region(STEADY_REGION):
                for it in range(bench.sim_iters):
                    yield from comm.iteration_scope(
                        it,
                        bench.sim_iters,
                        lambda it=it: bench.iteration(comm, it),
                        label=f"npb:{bench.name}",
                    )
            return None

        program.__name__ = f"npb_{bench.name}"
        return program

    def run(
        self,
        platform: PlatformSpec,
        nprocs: int,
        *,
        placement: Placement | None = None,
        seed: int = 0,
        reps: int = 1,
    ) -> BenchResult:
        """Execute the skeleton and return a :class:`BenchResult`."""
        if not self.valid_nprocs(nprocs):
            raise ConfigError(
                f"{self.name.upper()} does not support nprocs={nprocs}"
            )
        result = run_program(
            platform, nprocs, self.make_program(),
            placement=placement, seed=seed, reps=reps,
        )
        steady = max(
            p.regions[STEADY_REGION].wall_time
            for p in result.monitor.profiles
            if STEADY_REGION in p.regions
        )
        return BenchResult(
            bench=self.name,
            klass=self.cfg.klass,
            nprocs=nprocs,
            platform=platform.name,
            wall_time=result.wall_time,
            steady_time=steady,
            sim_iters=self.sim_iters,
            total_iters=self.cfg.iterations,
            monitor=result.monitor,
        )

    def local_ws(self, comm) -> float:
        """This rank's resident working set (its share of the footprint)."""
        return self.cfg.footprint_bytes / comm.size

    # -- shared decomposition helpers ------------------------------------------
    @staticmethod
    def grid2d(p: int) -> tuple[int, int]:
        """Near-square 2-D factorisation of a power-of-two ``p``:
        ``(px, py)`` with ``px <= py`` and ``px * py == p``."""
        if p < 1 or p & (p - 1):
            raise ConfigError(f"grid2d needs a power of two, got {p}")
        log = p.bit_length() - 1
        px = 1 << (log // 2)
        return px, p // px

    @staticmethod
    def grid3d(p: int) -> tuple[int, int, int]:
        """Near-cubic 3-D factorisation of a power-of-two ``p``."""
        if p < 1 or p & (p - 1):
            raise ConfigError(f"grid3d needs a power of two, got {p}")
        log = p.bit_length() - 1
        a = log // 3
        b = (log - a) // 2
        c = log - a - b
        dims = sorted([1 << a, 1 << b, 1 << c])
        return dims[0], dims[1], dims[2]

    @staticmethod
    def split_extent(n: int, parts: int, index: int) -> int:
        """Size of chunk ``index`` when ``n`` points split over ``parts``
        (first ``n % parts`` chunks get the extra point) — the source of
        the natural load imbalance of non-divisible grids."""
        if parts < 1 or not (0 <= index < parts):
            raise ConfigError(f"bad split: n={n} parts={parts} index={index}")
        base, extra = divmod(n, parts)
        return base + (1 if index < extra else 0)


def intra_fraction(stride: int, ranks_per_node: int) -> float:
    """Fraction of rank-``stride`` neighbour links that stay on-node under
    block placement (rank ``r`` lives on node ``r // rpn``)."""
    if ranks_per_node < 1:
        raise ConfigError(f"ranks_per_node must be >= 1: {ranks_per_node}")
    if stride <= 0:
        return 1.0
    return max(0.0, 1.0 - stride / ranks_per_node)


def mixed_msg_time(ctx, nbytes: float, stride: int) -> float:
    """Expected one-message time for a rank-``stride`` neighbour exchange:
    a blend of shared-memory and fabric paths by :func:`intra_fraction`."""
    frac = intra_fraction(stride, ctx.rpn)
    if frac >= 1.0:
        return ctx.shm_msg(nbytes)
    return frac * ctx.shm_msg(nbytes) + (1.0 - frac) * ctx.net_msg(
        nbytes, link_share=max(1, min(ctx.rpn, stride))
    )


def pow2_divisors_ok(n: int, parts: int) -> bool:
    """True when ``parts`` divides ``n`` exactly (grid divisibility)."""
    return parts >= 1 and n % parts == 0
