"""Benchmark registry and process-count validity helpers."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.npb.base import NpbBenchmark
from repro.npb.bt import BtBenchmark, SpBenchmark
from repro.npb.cg import CgBenchmark
from repro.npb.ep import EpBenchmark
from repro.npb.ft import FtBenchmark
from repro.npb.is_ import IsBenchmark
from repro.npb.lu import LuBenchmark
from repro.npb.mg import MgBenchmark

_BENCHMARKS: dict[str, type[NpbBenchmark]] = {
    "bt": BtBenchmark,
    "cg": CgBenchmark,
    "ep": EpBenchmark,
    "ft": FtBenchmark,
    "is": IsBenchmark,
    "lu": LuBenchmark,
    "mg": MgBenchmark,
    "sp": SpBenchmark,
}

#: Suite order as the paper's Fig 3 lists it.
BENCHMARK_NAMES = ("bt", "ep", "cg", "ft", "is", "lu", "mg", "sp")


def get_benchmark(
    name: str, klass: str = "B", sim_iters: int | None = None
) -> NpbBenchmark:
    """Instantiate benchmark ``name`` at problem class ``klass``."""
    try:
        cls = _BENCHMARKS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown NPB benchmark {name!r}; expected one of {sorted(_BENCHMARKS)}"
        ) from None
    return cls(klass=klass, sim_iters=sim_iters)


def valid_nprocs(name: str, max_procs: int = 64) -> list[int]:
    """Valid process counts for ``name`` up to ``max_procs``, mirroring
    the paper's Fig 4 x-axes (powers of two, or squares for BT/SP)."""
    bench = get_benchmark(name)
    return [p for p in range(1, max_procs + 1) if bench.valid_nprocs(p)]
