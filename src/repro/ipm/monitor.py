"""Raw per-rank accounting (the data IPM would gather via PMPI hooks)."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError

#: The implicit whole-program region every rank is always inside.
GLOBAL_REGION = "ipm_global"


@dataclasses.dataclass(frozen=True, slots=True)
class CallKey:
    """IPM-style hash key: an MPI call name and a message-size bucket."""

    call: str
    nbytes: int


class CallStats:
    """Count and total time for one :class:`CallKey`."""

    __slots__ = ("count", "time")

    def __init__(self) -> None:
        self.count = 0
        self.time = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.time += duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CallStats n={self.count} t={self.time:.6g}>"


class RegionStats:
    """Per-rank accounting for one code region."""

    __slots__ = ("name", "mpi", "compute_time", "io_time", "wall_time", "_entered_at")

    def __init__(self, name: str) -> None:
        self.name = name
        self.mpi: dict[CallKey, CallStats] = {}
        self.compute_time = 0.0
        self.io_time = 0.0
        self.wall_time = 0.0
        self._entered_at: float | None = None

    @property
    def mpi_time(self) -> float:
        """Total MPI time in this region."""
        return sum(s.time for s in self.mpi.values())

    @property
    def mpi_calls(self) -> int:
        """Total MPI call count in this region."""
        return sum(s.count for s in self.mpi.values())

    def mpi_bytes(self) -> int:
        """Total bytes moved by MPI calls in this region."""
        return sum(k.nbytes * s.count for k, s in self.mpi.items())

    def call_sizes(self, call: str) -> dict[int, CallStats]:
        """Message-size histogram for one MPI call name."""
        return {k.nbytes: s for k, s in self.mpi.items() if k.call == call}


class RankProfile:
    """All accounting for one rank: a region dictionary plus a stack."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.regions: dict[str, RegionStats] = {GLOBAL_REGION: RegionStats(GLOBAL_REGION)}
        self._stack: list[RegionStats] = []
        self.finish_time = 0.0
        #: Bumped on every region enter/exit.  External caches of
        #: :meth:`_targets`-derived buckets (the collective fast path)
        #: key on it so a region change invalidates them.
        self._stack_version = 0

    # -- region management -------------------------------------------------
    def region(self, name: str) -> RegionStats:
        """Get or create the stats bucket for region ``name``."""
        stats = self.regions.get(name)
        if stats is None:
            stats = RegionStats(name)
            self.regions[name] = stats
        return stats

    def enter(self, name: str, now: float) -> None:
        if name == GLOBAL_REGION:
            raise ConfigError(f"region name {GLOBAL_REGION!r} is reserved")
        stats = self.region(name)
        if stats._entered_at is not None:
            raise ConfigError(f"region {name!r} re-entered on rank {self.rank}")
        stats._entered_at = now
        self._stack.append(stats)
        self._stack_version += 1

    def exit(self, name: str, now: float) -> None:
        if not self._stack or self._stack[-1].name != name:
            top = self._stack[-1].name if self._stack else None
            raise ConfigError(
                f"region exit mismatch on rank {self.rank}: exiting {name!r}, "
                f"top of stack is {top!r}"
            )
        stats = self._stack.pop()
        self._stack_version += 1
        assert stats._entered_at is not None
        stats.wall_time += now - stats._entered_at
        stats._entered_at = None

    def _targets(self) -> tuple[RegionStats, ...]:
        """Buckets a sample is charged to: every open region + global.

        Charging the whole stack lets an enclosing region (``ATM_STEP``)
        report totals that include its phase sub-regions, as the paper's
        per-section analysis does.
        """
        if self._stack:
            return (*self._stack, self.regions[GLOBAL_REGION])
        return (self.regions[GLOBAL_REGION],)

    # -- sample recording ----------------------------------------------------
    def record_mpi(self, call: str, nbytes: int, duration: float) -> None:
        key = CallKey(call, nbytes)
        for stats in self._targets():
            bucket = stats.mpi.get(key)
            if bucket is None:
                bucket = CallStats()
                stats.mpi[key] = bucket
            bucket.add(duration)

    def record_compute(self, duration: float) -> None:
        for stats in self._targets():
            stats.compute_time += duration

    def record_io(self, duration: float) -> None:
        for stats in self._targets():
            stats.io_time += duration

    # -- snapshot / delta (iteration replay support) ---------------------------
    def snapshot(self) -> dict[str, tuple[float, float, float, dict[CallKey, tuple[int, float]]]]:
        """Freeze the current counters of every region.

        The shape — ``{region: (wall, compute, io, {CallKey: (count,
        time)})}`` — is what :meth:`delta_since` diffs against and
        :meth:`apply_delta` adds back, so one steady-loop iteration can
        be captured as a pure counter difference and replayed any number
        of times without re-simulating it (:mod:`repro.perf.replay`).
        Open regions contribute no wall time here: their wall accrues at
        :meth:`RegionStats.exit` from the (replay-advanced) clock.
        """
        return {
            name: (
                stats.wall_time,
                stats.compute_time,
                stats.io_time,
                {k: (s.count, s.time) for k, s in stats.mpi.items()},
            )
            for name, stats in self.regions.items()
        }

    def delta_since(
        self, snap: dict[str, tuple[float, float, float, dict[CallKey, tuple[int, float]]]]
    ) -> dict[str, tuple[float, float, float, dict[CallKey, tuple[int, float]]]]:
        """Counter growth since ``snap`` (regions with no growth omitted)."""
        delta: dict[str, tuple[float, float, float, dict[CallKey, tuple[int, float]]]] = {}
        empty: dict[CallKey, tuple[int, float]] = {}
        for name, stats in self.regions.items():
            base = snap.get(name)
            bw, bc, bio, bmpi = base if base is not None else (0.0, 0.0, 0.0, empty)
            mpi: dict[CallKey, tuple[int, float]] = {}
            for key, bucket in stats.mpi.items():
                prev = bmpi.get(key)
                dcount = bucket.count - (prev[0] if prev is not None else 0)
                dtime = bucket.time - (prev[1] if prev is not None else 0.0)
                if dcount or dtime:
                    mpi[key] = (dcount, dtime)
            dw = stats.wall_time - bw
            dc = stats.compute_time - bc
            dio = stats.io_time - bio
            if dw or dc or dio or mpi:
                delta[name] = (dw, dc, dio, mpi)
        return delta

    def apply_delta(
        self,
        delta: dict[str, tuple[float, float, float, dict[CallKey, tuple[int, float]]]],
        reps: int = 1,
    ) -> None:
        """Add ``delta`` to the counters ``reps`` times.

        Applied as ``reps`` sequential passes — not one pre-scaled pass —
        so the float accumulation order matches ``reps`` genuinely
        simulated iterations as closely as possible.
        """
        for _ in range(reps):
            for name, (dw, dc, dio, mpi) in delta.items():
                stats = self.region(name)
                stats.wall_time += dw
                stats.compute_time += dc
                stats.io_time += dio
                for key, (dcount, dtime) in mpi.items():
                    bucket = stats.mpi.get(key)
                    if bucket is None:
                        bucket = CallStats()
                        stats.mpi[key] = bucket
                    bucket.count += dcount
                    bucket.time += dtime

    # -- totals ---------------------------------------------------------------
    @property
    def total(self) -> RegionStats:
        """The whole-program accounting bucket."""
        return self.regions[GLOBAL_REGION]

    def finalize(self, now: float) -> None:
        """Close the implicit global region at program end."""
        if self._stack:
            open_names = [s.name for s in self._stack]
            raise ConfigError(
                f"rank {self.rank} finished with open regions: {open_names}"
            )
        self.finish_time = now
        self.total.wall_time = now


class IpmMonitor:
    """Collects :class:`RankProfile` objects for one MPI run."""

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ConfigError(f"nprocs must be >= 1, got {nprocs}")
        self.profiles = [RankProfile(r) for r in range(nprocs)]
        #: Fraction of communication time shown as system time in
        #: Fig-7-style breakdowns (set from the platform's hypervisor).
        self.system_time_share = 0.1

    @property
    def nprocs(self) -> int:
        return len(self.profiles)

    def __getitem__(self, rank: int) -> RankProfile:
        return self.profiles[rank]

    def wall_time(self) -> float:
        """Run wall time: the latest rank finish."""
        return max(p.finish_time for p in self.profiles)

    def region_names(self) -> list[str]:
        """All user region names observed on any rank (sorted)."""
        names: set[str] = set()
        for p in self.profiles:
            names.update(p.regions)
        names.discard(GLOBAL_REGION)
        return sorted(names)
