"""Machine-readable export of IPM profiles.

Real IPM emits an XML log per run that downstream tooling (plots,
ipm_parse) consumes; the work-alike exports the equivalent structure as
JSON-ready dictionaries — per rank, per region, per (call, size) bucket —
so study results can be archived or post-processed outside this library.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t

from repro.ipm.monitor import GLOBAL_REGION, IpmMonitor, RankProfile, RegionStats


def region_to_dict(stats: RegionStats) -> dict[str, _t.Any]:
    """One region's accounting as plain data."""
    return {
        "name": stats.name,
        "wall_time": stats.wall_time,
        "compute_time": stats.compute_time,
        "io_time": stats.io_time,
        "mpi_time": stats.mpi_time,
        "mpi_calls": stats.mpi_calls,
        "calls": [
            {
                "call": key.call,
                "bytes": key.nbytes,
                "count": cs.count,
                "time": cs.time,
            }
            for key, cs in sorted(
                stats.mpi.items(), key=lambda kv: (kv[0].call, kv[0].nbytes)
            )
        ],
    }


def profile_to_dict(profile: RankProfile) -> dict[str, _t.Any]:
    """One rank's full profile as plain data."""
    return {
        "rank": profile.rank,
        "finish_time": profile.finish_time,
        "regions": {
            name: region_to_dict(stats)
            for name, stats in sorted(profile.regions.items())
        },
    }


def monitor_to_dict(monitor: IpmMonitor) -> dict[str, _t.Any]:
    """A whole run's monitoring data as plain data (JSON-serialisable)."""
    return {
        "nprocs": monitor.nprocs,
        "wall_time": monitor.wall_time(),
        "system_time_share": monitor.system_time_share,
        "regions": monitor.region_names(),
        "ranks": [profile_to_dict(p) for p in monitor.profiles],
    }


def write_json(monitor: IpmMonitor, path: str | pathlib.Path) -> None:
    """Dump the monitor to a JSON file (the XML-log analogue)."""
    pathlib.Path(path).write_text(json.dumps(monitor_to_dict(monitor), indent=1) + "\n")


def load_json(path: str | pathlib.Path) -> dict[str, _t.Any]:
    """Read back a dumped profile (as plain data, not a live monitor)."""
    return json.loads(pathlib.Path(path).read_text())


def totals_by_call(monitor: IpmMonitor, region: str = GLOBAL_REGION) -> dict[str, float]:
    """Aggregate MPI seconds per call name across ranks (quick summary)."""
    out: dict[str, float] = {}
    for profile in monitor.profiles:
        stats = profile.regions.get(region)
        if stats is None:
            continue
        for key, cs in stats.mpi.items():
            out[key.call] = out.get(key.call, 0.0) + cs.time
    return out
