"""Derived IPM reports: run summaries and Fig-7-style breakdowns."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ipm.loadbalance import imbalance_percent
from repro.ipm.monitor import GLOBAL_REGION, IpmMonitor


@dataclasses.dataclass(frozen=True, slots=True)
class IpmReport:
    """Aggregate statistics for one run (whole program or one region).

    All times are totals across ranks except ``wall_time`` (the run's
    elapsed time) — mirroring IPM's banner output.
    """

    region: str
    nprocs: int
    wall_time: float
    comm_time: float
    compute_time: float
    io_time: float
    comm_percent: float
    imbalance_percent: float
    calls_by_name: dict[str, tuple[int, float]]

    def __str__(self) -> str:
        lines = [
            f"# IPM report  region={self.region}  ranks={self.nprocs}",
            f"#   wall      : {self.wall_time:12.4f} s",
            f"#   comm      : {self.comm_time:12.4f} s  ({self.comm_percent:5.1f} %)",
            f"#   compute   : {self.compute_time:12.4f} s",
            f"#   I/O       : {self.io_time:12.4f} s",
            f"#   %imbal    : {self.imbalance_percent:5.1f} %",
        ]
        if self.calls_by_name:
            lines.append("#   call                count        time(s)")
            for name, (count, time) in sorted(
                self.calls_by_name.items(), key=lambda kv: -kv[1][1]
            ):
                lines.append(f"#   {name:<18} {count:>9} {time:14.4f}")
        return "\n".join(lines)


def summarize(monitor: IpmMonitor, region: str = GLOBAL_REGION) -> IpmReport:
    """Build an :class:`IpmReport` for ``region`` (default: whole run)."""
    comm = compute = io = 0.0
    walls = []
    calls: dict[str, tuple[int, float]] = {}
    for profile in monitor.profiles:
        stats = profile.regions.get(region)
        if stats is None:
            walls.append(0.0)
            continue
        comm += stats.mpi_time
        compute += stats.compute_time
        io += stats.io_time
        walls.append(stats.wall_time)
        for key, cs in stats.mpi.items():
            count, time = calls.get(key.call, (0, 0.0))
            calls[key.call] = (count + cs.count, time + cs.time)
    wall = max(walls) if walls else 0.0
    total = comm + compute + io
    pct = 100.0 * comm / total if total > 0 else 0.0
    return IpmReport(
        region=region,
        nprocs=monitor.nprocs,
        wall_time=wall,
        comm_time=comm,
        compute_time=compute,
        io_time=io,
        comm_percent=pct,
        imbalance_percent=imbalance_percent(monitor, region),
        calls_by_name=calls,
    )


def comm_percent(monitor: IpmMonitor, region: str = GLOBAL_REGION) -> float:
    """Percentage of total rank time spent in MPI (paper Table II)."""
    return summarize(monitor, region).comm_percent


def fig7_breakdown(
    monitor: IpmMonitor, region: str = GLOBAL_REGION
) -> dict[str, np.ndarray]:
    """Per-process time breakdown for ``region`` (paper Fig 7).

    Returns arrays indexed by rank: ``compute``, ``comm_user``,
    ``comm_system`` and ``io``.  Communication is split into user and
    system shares with the platform hypervisor's attribution fraction —
    the paper's Fig 7b shows DCC's MPI time "is primarily in system
    time", whereas Vayu's is not.
    """
    n = monitor.nprocs
    compute = np.zeros(n)
    comm = np.zeros(n)
    io = np.zeros(n)
    for i, profile in enumerate(monitor.profiles):
        stats = profile.regions.get(region)
        if stats is None:
            continue
        compute[i] = stats.compute_time
        comm[i] = stats.mpi_time
        io[i] = stats.io_time
    share = monitor.system_time_share
    return {
        "compute": compute,
        "comm_user": comm * (1.0 - share),
        "comm_system": comm * share,
        "io": io,
    }


def render_fig7_ascii(
    monitor: IpmMonitor, region: str = GLOBAL_REGION, width: int = 60
) -> str:
    """ASCII rendering of the Fig-7 per-process stacked bars."""
    parts = fig7_breakdown(monitor, region)
    totals = parts["compute"] + parts["comm_user"] + parts["comm_system"] + parts["io"]
    peak = totals.max() if totals.size else 0.0
    if peak <= 0:
        return "(no samples)"
    lines = [f"per-process time breakdown, region={region}"]
    lines.append("  rank |" + " bar (#=compute, u=comm user, s=comm system, i=io)")
    for rank in range(monitor.nprocs):
        segs = []
        for label, key in (("#", "compute"), ("u", "comm_user"), ("s", "comm_system"), ("i", "io")):
            n = int(round(width * parts[key][rank] / peak))
            segs.append(label * n)
        lines.append(f"  {rank:4d} |{''.join(segs)}")
    return "\n".join(lines)
