"""Per-rank event timelines (Gantt-style traces).

IPM aggregates answer "how much"; a timeline answers "when".  Attach a
:class:`Timeline` to an :class:`~repro.smpi.world.MpiWorld` before
launching and every compute burst, MPI call and I/O operation is recorded
as a ``(start, end, kind, label)`` interval per rank — enough to render
ASCII Gantt charts of short runs or export JSON for external viewers.

Off by default: interval recording costs memory proportional to event
count, which the large sweeps cannot afford.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

from repro.errors import ConfigError

#: Interval kinds, in render precedence order.
KINDS = ("compute", "mpi", "io")


@dataclasses.dataclass(frozen=True, slots=True)
class Interval:
    """One traced activity on one rank."""

    start: float
    end: float
    kind: str
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Collects per-rank activity intervals for one run."""

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ConfigError(f"nprocs must be >= 1: {nprocs}")
        self.ranks: list[list[Interval]] = [[] for _ in range(nprocs)]

    def record(self, rank: int, start: float, end: float, kind: str, label: str) -> None:
        """Append one interval (engine-ordered, so lists stay sorted)."""
        if kind not in KINDS:
            raise ConfigError(f"unknown interval kind {kind!r}; expected {KINDS}")
        if end < start:
            raise ConfigError(f"interval ends before it starts: {start}..{end}")
        self.ranks[rank].append(Interval(start, end, kind, label))

    # -- queries -----------------------------------------------------------
    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all ranks."""
        starts = [iv.start for rank in self.ranks for iv in rank]
        ends = [iv.end for rank in self.ranks for iv in rank]
        if not starts:
            return (0.0, 0.0)
        return (min(starts), max(ends))

    def busy_fraction(self, rank: int, kind: str | None = None) -> float:
        """Fraction of the run's span rank spent in ``kind`` (or any)."""
        lo, hi = self.span()
        if hi <= lo:
            return 0.0
        total = sum(
            iv.duration
            for iv in self.ranks[rank]
            if kind is None or iv.kind == kind
        )
        return total / (hi - lo)

    # -- export ------------------------------------------------------------
    def to_dict(self) -> dict[str, _t.Any]:
        """JSON-ready structure (Chrome-trace-like, simplified)."""
        return {
            "nprocs": len(self.ranks),
            "span": self.span(),
            "ranks": [
                [
                    {"start": iv.start, "end": iv.end, "kind": iv.kind,
                     "label": iv.label}
                    for iv in rank
                ]
                for rank in self.ranks
            ],
        }

    def write_json(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict()) + "\n")

    def render_ascii(self, width: int = 72, max_ranks: int = 32) -> str:
        """A Gantt chart: one row per rank, ``#``=compute, ``m``=MPI,
        ``i``=I/O, ``.``=idle."""
        lo, hi = self.span()
        if hi <= lo:
            return "(empty timeline)"
        glyph = {"compute": "#", "mpi": "m", "io": "i"}
        lines = [f"timeline {lo:.6g}s .. {hi:.6g}s  (#=compute m=mpi i=io .=idle)"]
        for rank, intervals in enumerate(self.ranks[:max_ranks]):
            row = ["."] * width
            for iv in intervals:
                a = int((iv.start - lo) / (hi - lo) * (width - 1))
                b = int((iv.end - lo) / (hi - lo) * (width - 1))
                for col in range(a, b + 1):
                    row[col] = glyph[iv.kind]
            lines.append(f"{rank:4d} |{''.join(row)}|")
        if len(self.ranks) > max_ranks:
            lines.append(f"  ... ({len(self.ranks) - max_ranks} more ranks)")
        return "\n".join(lines)
