"""IPM-style performance monitoring for the simulated MPI runtime.

IPM (Integrated Performance Monitoring) is the low-overhead MPI profiling
layer the paper uses for all its analysis: per-region communication
percentages (Table II), computation/communication ratios and load
imbalance (Table III), and per-process time-breakdown profiles (Fig 7).

This work-alike records, for every rank:

* per *region* (user-defined code section, e.g. ``ATM_STEP`` or ``KSp``)
  and per *(MPI call, message size)* bucket: call count and total time —
  the same hashing scheme real IPM uses, which is how the paper can state
  that KSp communication "consists entirely of 4-byte all-reduce
  operations";
* compute time (from the workload's compute bursts) and I/O time;
* wall-clock per region.

Reports are derived, never accumulated twice: :mod:`repro.ipm.report`
renders Table-II/III-style summaries and Fig-7-style per-process
breakdowns from the raw profiles.
"""

from repro.ipm.monitor import (
    GLOBAL_REGION,
    CallKey,
    CallStats,
    IpmMonitor,
    RankProfile,
    RegionStats,
)
from repro.ipm.loadbalance import (
    imbalance_irregularity,
    imbalance_percent,
    imbalance_profile,
)
from repro.ipm.report import (
    IpmReport,
    comm_percent,
    fig7_breakdown,
    render_fig7_ascii,
    summarize,
)

__all__ = [
    "GLOBAL_REGION",
    "CallKey",
    "CallStats",
    "IpmMonitor",
    "IpmReport",
    "RankProfile",
    "RegionStats",
    "comm_percent",
    "fig7_breakdown",
    "imbalance_irregularity",
    "imbalance_percent",
    "imbalance_profile",
    "render_fig7_ascii",
    "summarize",
]
