"""Load-imbalance metrics.

The paper reports a "% imbal" figure per run (Table III) and discusses
"a greater degree and a higher irregularity of load imbalance on DCC".
We expose both notions:

* :func:`imbalance_percent` — the scalar
  ``100 * (max - mean) / max`` over per-rank compute times, i.e. the
  fraction of the critical path the busiest rank spends ahead of the
  average (0 = perfectly balanced);
* :func:`imbalance_profile` — the full per-rank compute-time vector for
  a region, from which "irregularity" (its coefficient of variation) is
  derived.
"""

from __future__ import annotations

import numpy as np

from repro.ipm.monitor import GLOBAL_REGION, IpmMonitor


def _compute_vector(monitor: IpmMonitor, region: str) -> np.ndarray:
    values = []
    for profile in monitor.profiles:
        stats = profile.regions.get(region)
        values.append(stats.compute_time if stats is not None else 0.0)
    return np.asarray(values, dtype=float)


def imbalance_percent(monitor: IpmMonitor, region: str = GLOBAL_REGION) -> float:
    """Scalar imbalance (percent) over per-rank compute time in ``region``.

    Normalised by the region's *wall* time (IPM convention): the excess
    of the busiest rank over the average, as a share of elapsed time.
    On communication-dominated runs the same absolute compute spread
    therefore reads as a smaller percentage — which is how the paper's
    Table III can report DCC's overall imbalance as the *lowest* (4%)
    while describing its imbalance as more irregular.
    """
    comp = _compute_vector(monitor, region)
    walls = [
        p.regions[region].wall_time if region in p.regions else 0.0
        for p in monitor.profiles
    ]
    denom = max(walls) if walls else 0.0
    if denom <= 0:
        denom = comp.max()
    if denom <= 0:
        return 0.0
    return float(100.0 * (comp.max() - comp.mean()) / denom)


def imbalance_profile(monitor: IpmMonitor, region: str = GLOBAL_REGION) -> np.ndarray:
    """Per-rank compute times for ``region`` (one entry per rank)."""
    return _compute_vector(monitor, region)


def imbalance_irregularity(monitor: IpmMonitor, region: str = GLOBAL_REGION) -> float:
    """Coefficient of variation of per-rank compute time (dimensionless).

    The paper's qualitative "more irregular on DCC" claim is tested by
    comparing this figure across platforms.
    """
    comp = _compute_vector(monitor, region)
    mean = comp.mean()
    if mean <= 0:
        return 0.0
    return float(comp.std() / mean)
