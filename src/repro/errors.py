"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with one handler while still being able
to discriminate simulation problems from configuration problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """A problem detected inside the discrete-event engine.

    Raised, for example, when a simulated process deadlocks (the event
    queue drains while processes are still waiting) or when a process
    yields an object the engine does not understand.
    """


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked."""

    def __init__(self, waiting: int, message: str | None = None) -> None:
        self.waiting = waiting
        super().__init__(
            message
            or f"simulation deadlock: event queue empty with {waiting} "
            "process(es) still waiting"
        )


class MpiError(ReproError):
    """Misuse of the simulated MPI API (bad rank, truncated recv, ...)."""


class ConfigError(ReproError):
    """Invalid platform, benchmark or experiment configuration."""


class VerificationError(ReproError):
    """A benchmark's numerical verification failed."""


class CloudError(ReproError):
    """Simulated cloud-provisioning failure (boot error, capacity, ...)."""


class SchedulerError(ReproError):
    """Batch-scheduler misuse or inconsistent job state."""
