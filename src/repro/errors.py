"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with one handler while still being able
to discriminate simulation problems from configuration problems.
"""

from __future__ import annotations

import typing as _t


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """A problem detected inside the discrete-event engine.

    Raised, for example, when a simulated process deadlocks (the event
    queue drains while processes are still waiting) or when a process
    yields an object the engine does not understand.
    """


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked.

    When the run executed under the MPI sanitizer
    (:mod:`repro.analysis.sanitizer`), the error also carries
    ``pending_ops`` — one human-readable description per operation the
    blocked ranks were stuck in — and, if the blocked operations form a
    wait-for cycle, ``cycle`` names the ranks along it (first rank
    repeated at the end).  Both are empty for bare engine-level
    deadlocks detected without the sanitizer.
    """

    def __init__(
        self,
        waiting: int,
        message: str | None = None,
        pending_ops: _t.Sequence[str] = (),
        cycle: _t.Sequence[int] | None = None,
    ) -> None:
        self.waiting = waiting
        self.pending_ops = tuple(pending_ops)
        self.cycle = tuple(cycle) if cycle is not None else None
        if message is None:
            message = (
                f"simulation deadlock: event queue empty with {waiting} "
                "process(es) still waiting"
            )
            if self.cycle:
                message += "; wait-for cycle: " + " -> ".join(
                    f"rank {r}" for r in self.cycle
                )
            if self.pending_ops:
                message += "\npending operations:\n" + "\n".join(
                    f"  {op}" for op in self.pending_ops
                )
        super().__init__(message)


class RankFailedError(DeadlockError):
    """Ranks were killed by an injected fault (node crash, spot reclaim).

    Raised by :meth:`~repro.smpi.world.MpiWorld.launch` when a
    :class:`~repro.faults.FaultSchedule` kills ranks mid-run — either
    immediately at the end of the run, or earlier through the engine's
    ``deadlock_factory`` plumbing when surviving ranks block on an
    operation against a dead rank (which distinguishes an injected
    failure from a genuine protocol deadlock).  Carries the killed world
    ranks, the simulated failure time and the fault kind so a resilience
    harness can account for wasted work and restart cost.
    """

    def __init__(
        self,
        failed_ranks: _t.Sequence[int],
        waiting: int = 0,
        message: str | None = None,
        pending_ops: _t.Sequence[str] = (),
        failed_at: float | None = None,
        kind: str = "node-crash",
    ) -> None:
        self.failed_ranks = tuple(failed_ranks)
        self.failed_at = failed_at
        self.kind = kind
        if message is None:
            ranks = ",".join(map(str, self.failed_ranks))
            at = f" at t={failed_at:.6g}" if failed_at is not None else ""
            message = (
                f"injected {kind}{at} killed rank(s) {ranks}"
                + (f"; {waiting} surviving process(es) blocked" if waiting else "")
            )
            if pending_ops:
                message += "\npending operations:\n" + "\n".join(
                    f"  {op}" for op in pending_ops
                )
        super().__init__(waiting, message=message, pending_ops=pending_ops)


class MpiError(ReproError):
    """Misuse of the simulated MPI API (bad rank, truncated recv, ...)."""


class SanitizerError(MpiError):
    """The runtime MPI sanitizer detected a correctness violation.

    Carries the structured :class:`~repro.analysis.sanitizer.Diagnostic`
    records behind the message, so tests and tooling can assert on the
    check name, the ranks involved and the details rather than parsing
    text.
    """

    def __init__(self, message: str, diagnostics: _t.Sequence[_t.Any] = ()) -> None:
        self.diagnostics = tuple(diagnostics)
        super().__init__(message)


class CellExecutionError(ReproError):
    """One sweep cell ultimately failed under the parallel harness.

    Carries the cell ``key`` and registered ``worker`` name, the number
    of execution ``attempts`` made, the classified ``cause`` — one of
    ``"timeout"`` (no completion within the supervisor's watchdog
    window), ``"worker-death"`` (the pool process hosting the cell
    died), or ``"worker-exception"`` (the worker function raised) — and
    ``detail`` (traceback text or a one-line explanation).

    Raised directly by :func:`repro.harness.parallel.run_cells` when an
    unsupervised process pool breaks, so callers see the offending cell
    instead of an opaque ``concurrent.futures`` traceback; under
    supervision (:mod:`repro.harness.supervisor`) one instance per
    exhausted cell is collected onto the
    :class:`~repro.harness.supervisor.SweepReport` instead of aborting
    the sweep.
    """

    #: The recognised failure classifications.
    CAUSES = ("timeout", "worker-death", "worker-exception")

    def __init__(
        self,
        key: _t.Sequence[_t.Any],
        worker: str,
        attempts: int,
        cause: str,
        detail: str = "",
        message: str | None = None,
    ) -> None:
        self.key = tuple(key)
        self.worker = worker
        self.attempts = attempts
        self.cause = cause
        self.detail = detail
        if message is None:
            message = (
                f"cell {self.key!r} [{worker}] failed after {attempts} "
                f"attempt(s): {cause}"
            )
            if detail:
                message += f"\n{detail}"
        super().__init__(message)


class RemoteCellError(ReproError):
    """A cell failed *deterministically* on a remote work-queue worker.

    Raised coordinator-side by :mod:`repro.harness.netqueue` when a
    remote worker reports a :class:`ReproError` (other than
    :class:`ConfigError`, which is reconstructed as itself): the failure
    is a property of the cell, not of the transport, so the supervisor
    must treat it exactly like a local deterministic failure — record
    it, never retry it.  Carries the remote exception's class name and
    formatted traceback for the failure report.
    """

    def __init__(
        self, remote_type: str, remote_message: str, remote_traceback: str = ""
    ) -> None:
        self.remote_type = remote_type
        self.remote_message = remote_message
        self.remote_traceback = remote_traceback
        message = f"remote worker raised {remote_type}: {remote_message}"
        if remote_traceback:
            message += f"\n{remote_traceback.rstrip()}"
        super().__init__(message)


class UnavailableError(ReproError):
    """A networked endpoint could not be reached within the resilience bounds.

    Raised by :func:`repro.harness.resilience.retry_call` when every
    deadline-bounded attempt against an endpoint failed (connection
    refused, reset, timed out).  Callers that can degrade gracefully —
    the remote cell-store client above all — catch this family, flip
    into offline mode and keep the sweep running; callers that cannot
    let it surface as a fatal error.
    """


class CircuitOpenError(UnavailableError):
    """A call was refused because the endpoint's circuit breaker is open.

    No network I/O was attempted: the breaker has seen too many
    consecutive failures and is absorbing calls until its cooldown
    elapses (see :class:`repro.harness.resilience.CircuitBreaker`).
    Semantically the endpoint is just as unavailable as a refused
    connection, hence the parentage.
    """


class StoreUnavailableError(UnavailableError):
    """The remote cell store is unreachable (degraded mode engaged).

    Internal to :mod:`repro.harness.netstore`: the client converts it
    into graceful degradation (serve misses, spool publishes) rather
    than letting it abort a sweep, so user code normally never sees it.
    """


class ConfigError(ReproError):
    """Invalid platform, benchmark or experiment configuration."""


class VerificationError(ReproError):
    """A benchmark's numerical verification failed."""


class CloudError(ReproError):
    """Simulated cloud-provisioning failure (boot error, capacity, ...)."""


class SchedulerError(ReproError):
    """Batch-scheduler misuse or inconsistent job state."""
