"""Compatibility shim — this module moved to :mod:`repro.analysis.stats`.

The derived-statistics helpers (speedups, normalisation, Table III)
now live in the :mod:`repro.analysis` correctness-and-analysis package
alongside the MPI sanitizer and the determinism linter.  Import from
``repro.analysis`` (or ``repro.analysis.stats``) in new code; this shim
keeps the historical ``repro.core.analysis`` import path working.
"""

from repro.analysis.stats import (
    SectionStats,
    normalized_times,
    render_stats_table,
    speedup_series,
    table3_stats,
)

__all__ = [
    "SectionStats",
    "normalized_times",
    "render_stats_table",
    "speedup_series",
    "table3_stats",
]
