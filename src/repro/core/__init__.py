"""The study API — the paper's primary contribution as a library.

The paper's contribution is a *methodology*: build application codes in
a traditional HPC environment, package the environment into VMs, run the
same workloads on HPC / private-cloud / public-cloud resources, and
analyse the results with IPM.  This package is that methodology's
programmatic surface:

* :class:`~repro.core.study.ScalingStudy` — run one workload across
  process counts on one platform (a Fig 4/5/6 curve);
* :class:`~repro.core.study.PlatformComparison` — the same workload
  across platforms (a Fig 3 bar group / Table II row);
* :mod:`repro.analysis.stats` — speedups, normalisation, the Table III
  statistics (rcomp/rcomm/%comm/%imbal/I/O); re-exported here (the old
  ``repro.core.analysis`` location remains as a shim).

Typical use::

    from repro.core import ScalingStudy
    from repro.platforms import VAYU

    study = ScalingStudy.npb("cg", platform=VAYU)
    curve = study.run([1, 2, 4, 8, 16, 32, 64])
    print(curve.speedups())
"""

from repro.analysis.stats import (
    SectionStats,
    normalized_times,
    speedup_series,
    table3_stats,
)
from repro.core.study import PlatformComparison, ScalingCurve, ScalingStudy

__all__ = [
    "PlatformComparison",
    "ScalingCurve",
    "ScalingStudy",
    "SectionStats",
    "normalized_times",
    "speedup_series",
    "table3_stats",
]
