"""High-level study drivers: scaling curves and platform comparisons."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.analysis import normalized_times, speedup_series
from repro.errors import ConfigError
from repro.platforms.base import PlatformSpec
from repro.platforms.registry import all_platforms


class _Workload(_t.Protocol):
    """Anything runnable at a (platform, nprocs) point."""

    def run(self, platform: PlatformSpec, nprocs: int, **kw: _t.Any) -> _t.Any: ...


def _time_of(result: _t.Any) -> float:
    """Extract the elapsed-time figure from any result flavour."""
    for attr in ("projected_time", "warmed_time", "total_time", "wall_time"):
        value = getattr(result, attr, None)
        if value is not None:
            return float(value)
    raise ConfigError(f"result {type(result).__name__} exposes no time attribute")


@dataclasses.dataclass(slots=True)
class ScalingCurve:
    """One workload's times across process counts on one platform."""

    workload: str
    platform: str
    times: dict[int, float]
    results: dict[int, _t.Any]

    def speedups(self, base_procs: int | None = None) -> dict[int, float]:
        """The Fig 4/5/6 quantity."""
        return speedup_series(self.times, base_procs)

    def comm_percents(self) -> dict[int, float]:
        """The Table II quantity, where the workload exposes it."""
        out = {}
        for p, r in self.results.items():
            pct = getattr(r, "comm_percent", None)
            if pct is None:
                continue
            out[p] = pct() if callable(pct) else float(pct)
        return out


class ScalingStudy:
    """Runs one workload over a list of process counts."""

    def __init__(
        self,
        workload: _Workload,
        name: str,
        platform: PlatformSpec,
        run_kwargs: dict[str, _t.Any] | None = None,
    ) -> None:
        self.workload = workload
        self.name = name
        self.platform = platform
        self.run_kwargs = run_kwargs or {}

    @classmethod
    def npb(
        cls,
        bench: str,
        platform: PlatformSpec,
        klass: str = "B",
        sim_iters: int | None = None,
        **run_kwargs: _t.Any,
    ) -> "ScalingStudy":
        """A study over one NPB benchmark."""
        from repro.npb import get_benchmark

        workload = get_benchmark(bench, klass=klass, sim_iters=sim_iters)
        return cls(workload, f"{bench.upper()}.{klass}", platform, run_kwargs)

    @classmethod
    def metum(
        cls, platform: PlatformSpec, sim_steps: int = 3, **run_kwargs: _t.Any
    ) -> "ScalingStudy":
        """A study over the MetUM application."""
        from repro.apps.metum import MetumBenchmark

        return cls(MetumBenchmark(sim_steps=sim_steps), "MetUM", platform, run_kwargs)

    @classmethod
    def chaste(
        cls, platform: PlatformSpec, sim_steps: int = 3, **run_kwargs: _t.Any
    ) -> "ScalingStudy":
        """A study over the Chaste application."""
        from repro.apps.chaste import ChasteBenchmark

        return cls(
            ChasteBenchmark(sim_steps=sim_steps), "Chaste", platform, run_kwargs
        )

    def run(self, proc_counts: _t.Sequence[int], seed: int = 0) -> ScalingCurve:
        """Execute the sweep and collect a :class:`ScalingCurve`."""
        if not proc_counts:
            raise ConfigError("empty process-count list")
        times: dict[int, float] = {}
        results: dict[int, _t.Any] = {}
        for p in proc_counts:
            result = self.workload.run(self.platform, p, seed=seed, **self.run_kwargs)
            results[p] = result
            times[p] = _time_of(result)
        return ScalingCurve(
            workload=self.name,
            platform=self.platform.name,
            times=times,
            results=results,
        )


class PlatformComparison:
    """Runs one workload at a fixed process count across platforms."""

    def __init__(
        self,
        workload: _Workload,
        name: str,
        platforms: _t.Sequence[PlatformSpec] | None = None,
    ) -> None:
        self.workload = workload
        self.name = name
        self.platforms = list(platforms) if platforms is not None else all_platforms()

    def run(
        self, nprocs: int, seed: int = 0, **run_kwargs: _t.Any
    ) -> dict[str, _t.Any]:
        """``{platform name: result}`` for the workload at ``nprocs``."""
        return {
            spec.name: self.workload.run(spec, nprocs, seed=seed, **run_kwargs)
            for spec in self.platforms
        }

    def normalized(self, nprocs: int, reference: str = "DCC", seed: int = 0) -> dict[str, float]:
        """Times normalised to ``reference`` (the Fig 3 quantity)."""
        results = self.run(nprocs, seed=seed)
        times = {name: _time_of(r) for name, r in results.items()}
        return normalized_times(times, reference)
