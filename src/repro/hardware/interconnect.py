"""Interconnect fabric models.

A fabric answers two questions for an ``n``-byte message:

* ``wire_time(n)`` — serialisation + propagation once the message is on
  the link;
* ``latency`` / ``overhead_*`` — fixed per-message costs (NIC + software
  stack on each side).

The measured curves of the OSU benchmarks (paper Figs 1-2) are then an
*output* of the model: the latency test sees
``o_send + extra + latency + n / bw_eff(n) + o_recv``
per one-way trip, and the windowed bandwidth test sees roughly
``n / max(o_send, n / bw_eff(n))``.

Bandwidth as a function of message size follows the classic
half-power-point form ``bw(n) = peak * n / (n + n_half)``, optionally
with a large-message decline term (observed on EC2's virtualised 10 GigE
past ~1 MB).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True, slots=True)
class BandwidthCurve:
    """Effective bandwidth vs message size.

    ``peak`` is the asymptotic bandwidth (bytes/s); ``n_half`` the message
    size achieving half of it; ``decline`` an optional fractional loss of
    peak approached for messages much larger than ``decline_scale``
    (models TCP window / copy effects on virtualised Ethernet).

    Note that ``serialize_time(n) = n / at(n)`` tends to ``n_half / peak``
    as ``n -> 0``, i.e. ``n_half`` encodes a fixed *per-packet processing
    cost beyond the fabric latency* (which :class:`FabricSpec` charges
    separately).  Keep ``n_half`` small — the small-message shape of the
    measured curves comes from latency and overheads, not from here.
    """

    peak: float
    n_half: float = 4096.0
    decline: float = 0.0
    decline_scale: float = 1 << 20

    def __post_init__(self) -> None:
        if self.peak <= 0 or self.n_half <= 0:
            raise ConfigError(f"invalid BandwidthCurve: {self}")
        if not (0.0 <= self.decline < 1.0):
            raise ConfigError(f"decline must be in [0,1): {self.decline}")

    def at(self, nbytes: float) -> float:
        """Effective bandwidth (bytes/s) for an ``nbytes`` message."""
        if nbytes <= 0:
            return self.peak
        bw = self.peak * nbytes / (nbytes + self.n_half)
        if self.decline:
            loss = self.decline * nbytes / (nbytes + self.decline_scale)
            bw *= 1.0 - loss
        return bw


@dataclasses.dataclass(frozen=True, slots=True)
class FabricSpec:
    """A point-to-point communication fabric.

    Parameters
    ----------
    name:
        Display name ("QDR IB", "10 GigE", ...).
    latency:
        One-way propagation + switch latency for a minimal message (s).
    bw:
        Effective-bandwidth curve.
    o_send / o_recv:
        CPU time consumed on the sender / receiver per message (s).
    eager_threshold:
        Messages at or below this size use the eager protocol; larger
        ones use rendezvous (adds a handshake round trip).
    duplex:
        Whether send and receive directions contend for the same link
        capacity (half duplex) or not (full duplex).
    """

    name: str
    latency: float
    bw: BandwidthCurve
    o_send: float = 1e-6
    o_recv: float = 1e-6
    eager_threshold: int = 12 * 1024
    duplex: bool = True
    #: Goodput-loss multiplier (>= 1) on transfer time when several
    #: concurrent streams share the link — TCP incast/contention on
    #: commodity Ethernet; lossless fabrics keep 1.0.
    congestion_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.o_send < 0 or self.o_recv < 0:
            raise ConfigError(f"invalid FabricSpec: {self}")
        if self.eager_threshold < 0:
            raise ConfigError(f"invalid eager threshold: {self.eager_threshold}")

    # -- derived times ---------------------------------------------------
    def serialize_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` through the NIC onto the wire."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.bw.at(nbytes)

    def wire_time(self, nbytes: int) -> float:
        """Serialisation plus propagation for one message."""
        return self.latency + self.serialize_time(nbytes)

    def oneway_time(self, nbytes: int) -> float:
        """Full one-way cost including both end-host overheads.

        This is the quantity the OSU latency test reports (it halves a
        round trip, which for symmetric fabrics equals the one-way time).
        """
        return self.o_send + self.wire_time(nbytes) + self.o_recv

    def uses_rendezvous(self, nbytes: int) -> bool:
        """True when ``nbytes`` exceeds the eager threshold."""
        return nbytes > self.eager_threshold


def loss_retransmit_factor(loss_rate: float) -> float:
    """Expected transmission-count multiplier under packet loss.

    With independent per-packet loss probability ``p`` and stop-and-wait
    retransmission, each packet is sent ``1 / (1 - p)`` times in
    expectation; the fault layer multiplies wire time by this during a
    link-degradation window.  (TCP's congestion response makes real loss
    costlier still; this is the optimistic lower bound, consistent with
    the rest of the first-order fabric model.)
    """
    if not (0.0 <= loss_rate < 1.0):
        raise ConfigError(f"loss_rate must be in [0,1): {loss_rate}")
    return 1.0 / (1.0 - loss_rate)


def EthernetFabric(
    name: str,
    *,
    latency: float,
    peak_bw: float,
    n_half: float = 16 * 1024,
    decline: float = 0.0,
    o_send: float = 6e-6,
    o_recv: float = 6e-6,
    eager_threshold: int = 64 * 1024,
    congestion_factor: float = 1.5,
) -> FabricSpec:
    """Ethernet/TCP fabric: higher per-message CPU overheads, late
    half-power point, eager (TCP-buffered) up to a large threshold,
    and goodput loss under concurrent streams (incast)."""
    return FabricSpec(
        name=name,
        latency=latency,
        bw=BandwidthCurve(peak=peak_bw, n_half=n_half, decline=decline),
        o_send=o_send,
        o_recv=o_recv,
        eager_threshold=eager_threshold,
        congestion_factor=congestion_factor,
    )


def InfinibandFabric(
    name: str = "QDR IB",
    *,
    latency: float = 1.3e-6,
    peak_bw: float = 3.2e9,
    n_half: float = 3 * 1024,
    o_send: float = 0.3e-6,
    o_recv: float = 0.3e-6,
    eager_threshold: int = 12 * 1024,
) -> FabricSpec:
    """RDMA-class fabric: microsecond latency, tiny CPU overheads,
    rendezvous beyond the typical 12 KiB eager limit."""
    return FabricSpec(
        name=name,
        latency=latency,
        bw=BandwidthCurve(peak=peak_bw, n_half=n_half),
        o_send=o_send,
        o_recv=o_recv,
        eager_threshold=eager_threshold,
    )


def SharedMemoryFabric(
    name: str = "shm",
    *,
    latency: float = 0.5e-6,
    peak_bw: float = 3.0e9,
    n_half: float = 2 * 1024,
    o_send: float = 0.2e-6,
    o_recv: float = 0.2e-6,
    eager_threshold: int = 32 * 1024,
) -> FabricSpec:
    """Intra-node path through shared memory (per pair of ranks)."""
    return FabricSpec(
        name=name,
        latency=latency,
        bw=BandwidthCurve(peak=peak_bw, n_half=n_half),
        o_send=o_send,
        o_recv=o_recv,
        eager_threshold=eager_threshold,
    )
