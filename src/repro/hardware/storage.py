"""Shared-filesystem performance models (NFS and Lustre).

The applications in the study are not I/O intensive, but the paper's
Table III shows the filesystem matters: reading the MetUM 1.6 GB dump
takes 4.5 s on Vayu's Lustre and 37.8 s on DCC's NFS.  The model is a
server with an aggregate bandwidth shared by concurrent clients, a
per-client bandwidth cap, and a per-operation latency.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True, slots=True)
class FilesystemSpec:
    """A shared filesystem seen from the compute nodes.

    Parameters
    ----------
    name:
        "Lustre", "NFS", ... (echoed in Table-I reports).
    client_bw:
        Maximum read bandwidth one client can sustain (bytes/s).
    aggregate_bw:
        Server-side ceiling shared by all concurrent clients (bytes/s).
    op_latency:
        Fixed latency per operation (open + first byte), seconds.
    write_penalty:
        Multiplier on transfer time for writes (NFS sync writes are much
        slower than reads; Chaste's output section shows this on DCC).
    """

    name: str
    client_bw: float
    aggregate_bw: float
    op_latency: float = 2e-3
    write_penalty: float = 2.0

    def __post_init__(self) -> None:
        if self.client_bw <= 0 or self.aggregate_bw <= 0:
            raise ConfigError(f"invalid FilesystemSpec: {self}")
        if self.op_latency < 0 or self.write_penalty < 1.0:
            raise ConfigError(f"invalid FilesystemSpec: {self}")

    def read_time(self, nbytes: float, concurrent_clients: int = 1) -> float:
        """Seconds for one client to read ``nbytes`` while
        ``concurrent_clients`` clients (including itself) hit the server."""
        if nbytes < 0:
            raise ConfigError(f"negative read size: {nbytes}")
        clients = max(1, concurrent_clients)
        bw = min(self.client_bw, self.aggregate_bw / clients)
        return self.op_latency + nbytes / bw

    def write_time(self, nbytes: float, concurrent_clients: int = 1) -> float:
        """Seconds for one client to write ``nbytes`` (see ``read_time``)."""
        return (
            self.op_latency
            + (self.read_time(nbytes, concurrent_clients) - self.op_latency)
            * self.write_penalty
        )


class TimeVaryingFilesystem:
    """A filesystem whose operation times scale with simulated time.

    Wraps a :class:`FilesystemSpec` and multiplies every operation's
    duration by ``factor_fn(engine.now)`` — how the fault layer models
    NFS brown-outs (server overload, failover) without touching the
    frozen spec.  With a factor of 1 the wrapper is numerically
    transparent.
    """

    def __init__(
        self,
        base: FilesystemSpec,
        engine,
        factor_fn,
    ) -> None:
        self.base = base
        self.engine = engine
        self._factor_fn = factor_fn

    @property
    def name(self) -> str:
        return self.base.name

    def read_time(self, nbytes: float, concurrent_clients: int = 1) -> float:
        """See :meth:`FilesystemSpec.read_time`; scaled by the factor at
        the operation's start time."""
        return self.base.read_time(nbytes, concurrent_clients) * self._factor_fn(
            self.engine.now
        )

    def write_time(self, nbytes: float, concurrent_clients: int = 1) -> float:
        """See :meth:`FilesystemSpec.write_time`; scaled like reads."""
        return self.base.write_time(nbytes, concurrent_clients) * self._factor_fn(
            self.engine.now
        )


#: Vayu's Lustre over QDR IB: striped, high per-client throughput.
#: Calibrated so a 1.6 GB serial read costs ~4.5 s (paper Table III).
LUSTRE_VAYU = FilesystemSpec(
    name="Lustre",
    client_bw=382e6,
    aggregate_bw=10e9,
    op_latency=1e-3,
    write_penalty=1.2,
)

#: DCC's NFS mount from the external storage cluster through the ESX
#: vSwitch: ~42 MB/s effective (1.6 GB in ~37.8 s, Table III).
NFS_DCC = FilesystemSpec(
    name="NFS",
    client_bw=43e6,
    aggregate_bw=60e6,
    op_latency=5e-3,
    write_penalty=3.0,
)

#: EC2 StarCluster NFS export from the master over 10 GigE: ~176 MB/s
#: (1.6 GB in ~9.1 s, Table III).
NFS_EC2 = FilesystemSpec(
    name="NFS",
    client_bw=178e6,
    aggregate_bw=400e6,
    op_latency=3e-3,
    write_penalty=2.0,
)
