"""Cluster topology: which fabric connects a pair of ranks.

For the cluster sizes in this study (4-8 nodes on the cloud platforms, a
handful of fat-tree-connected nodes on Vayu) switch-level contention is
second-order; the topology model therefore resolves a (src node, dst
node) pair to a fabric and an optional cross-socket discount, and exposes
simple aggregate queries (node count, ranks per node) that the collective
algorithms use to split rounds into inter- and intra-node parts.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigError
from repro.hardware.interconnect import FabricSpec
from repro.hardware.node import Node


class ClusterTopology:
    """Resolves rank pairs to communication paths.

    Parameters
    ----------
    nodes:
        Runtime :class:`~repro.hardware.node.Node` objects.
    fabric:
        Inter-node fabric.
    shm:
        Intra-node (shared-memory) fabric.
    cross_socket_bw_factor:
        Multiplier (<= 1) on shared-memory bandwidth when the two ranks
        sit on different sockets of the same node.
    """

    def __init__(
        self,
        nodes: _t.Sequence[Node],
        fabric: FabricSpec,
        shm: FabricSpec,
        cross_socket_bw_factor: float = 0.7,
    ) -> None:
        if not nodes:
            raise ConfigError("topology requires at least one node")
        if not (0.0 < cross_socket_bw_factor <= 1.0):
            raise ConfigError(
                f"cross_socket_bw_factor must be in (0,1]: {cross_socket_bw_factor}"
            )
        self.nodes = list(nodes)
        self.fabric = fabric
        self.shm = shm
        self.cross_socket_bw_factor = cross_socket_bw_factor
        #: rank -> node, built by the placement policy.
        self.rank_node: dict[int, Node] = {}

    # -- placement bookkeeping -------------------------------------------
    def register(self, rank: int, node: Node) -> None:
        """Record that ``rank`` lives on ``node``."""
        if rank in self.rank_node:
            raise ConfigError(f"rank {rank} already placed")
        self.rank_node[rank] = node

    def node_of(self, rank: int) -> Node:
        """The node hosting ``rank``."""
        try:
            return self.rank_node[rank]
        except KeyError:
            raise ConfigError(f"rank {rank} has not been placed") from None

    def same_node(self, a: int, b: int) -> bool:
        """True when ranks ``a`` and ``b`` share a node."""
        return self.node_of(a) is self.node_of(b)

    def fabric_between(self, a: int, b: int) -> FabricSpec:
        """The fabric a message from ``a`` to ``b`` traverses."""
        return self.shm if self.same_node(a, b) else self.fabric

    def cross_socket(self, a: int, b: int) -> bool:
        """True for an intra-node pair on different sockets."""
        node = self.node_of(a)
        if node is not self.node_of(b):
            return False
        return node.rank_socket[a] != node.rank_socket[b]

    # -- aggregate queries (used by collective cost models) ---------------
    def occupied_nodes(self, ranks: _t.Iterable[int]) -> int:
        """Number of distinct nodes hosting ``ranks``."""
        return len({id(self.rank_node[r]) for r in ranks})

    def max_ranks_per_node(self, ranks: _t.Iterable[int]) -> int:
        """Largest per-node rank count among ``ranks``."""
        counts: dict[int, int] = {}
        for r in ranks:
            key = id(self.rank_node[r])
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values()) if counts else 0
