"""Node specifications and per-run node state.

A :class:`NodeSpec` is the declarative description used by platform
definitions; a :class:`Node` is the runtime object created per
simulation, holding the NIC serialisation resources and the census of
ranks resident on each socket (which drives memory-bandwidth sharing).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigError
from repro.hardware.cpu import CpuSpec
from repro.sim.resources import Resource

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


@dataclasses.dataclass(frozen=True, slots=True)
class NodeSpec:
    """Static description of one compute node."""

    name: str
    cpu: CpuSpec
    dram_bytes: int
    nics: int = 1

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0 or self.nics < 1:
            raise ConfigError(f"invalid NodeSpec: {self}")


class Node:
    """Per-run state for one node.

    Tracks which ranks live on which socket (set up by the placement
    policy before the run starts) and owns the NIC transmit/receive
    resources used to serialise concurrent inter-node transfers.
    """

    def __init__(self, engine: "Engine", spec: NodeSpec, index: int) -> None:
        self.engine = engine
        self.spec = spec
        self.index = index
        #: rank ids resident on this node, in placement order.
        self.ranks: list[int] = []
        #: socket index for each resident rank (parallel to :attr:`ranks`).
        self.rank_socket: dict[int, int] = {}
        #: ranks per socket, filled by the placement policy.
        self.socket_load: list[int] = [0] * spec.cpu.sockets
        # Full-duplex NIC: independent tx and rx serialisation.
        self.nic_tx = Resource(engine, capacity=spec.nics, name=f"{spec.name}{index}.tx")
        self.nic_rx = Resource(engine, capacity=spec.nics, name=f"{spec.name}{index}.rx")

    # -- placement --------------------------------------------------------
    def place_rank(self, rank: int, socket: int | None = None) -> int:
        """Assign ``rank`` to a socket (least-loaded by default).

        Returns the socket index chosen.  Placement is a *model* of
        process binding: with NUMA affinity enforced (Vayu's OpenMPI) the
        least-loaded-socket policy mirrors round-robin binding; when the
        hypervisor masks NUMA the socket assignment still happens but the
        memory-locality penalty is applied by the platform's compute
        model instead.
        """
        nsock = self.spec.cpu.sockets
        if socket is None:
            socket = min(range(nsock), key=lambda s: (self.socket_load[s], s))
        if not (0 <= socket < nsock):
            raise ConfigError(f"socket {socket} out of range on {self.spec.name}")
        self.ranks.append(rank)
        self.rank_socket[rank] = socket
        self.socket_load[socket] += 1
        return socket

    @property
    def nranks(self) -> int:
        """Number of ranks resident on this node."""
        return len(self.ranks)

    def ranks_on_socket(self, socket: int) -> int:
        """Resident rank count for one socket."""
        return self.socket_load[socket]

    def spans_sockets(self) -> bool:
        """True when resident ranks occupy more than one socket."""
        return sum(1 for load in self.socket_load if load > 0) > 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.spec.name}#{self.index} ranks={self.ranks}>"
