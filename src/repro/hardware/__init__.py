"""Hardware models: CPUs, nodes, interconnect fabrics and filesystems.

Everything in this subpackage is a *performance model*, not a functional
emulator: a :class:`~repro.hardware.interconnect.FabricSpec` answers "how
long does an N-byte transfer take", a
:class:`~repro.hardware.cpu.CpuSpec` answers "how fast does this core
retire work".  The specs are plain frozen dataclasses so platform
definitions are declarative and hashable; runtime state (NIC queues,
resident-rank counts) lives in the thin wrapper classes built per
simulation run.
"""

from repro.hardware.cpu import CoreSpec, CpuSpec, SocketSpec
from repro.hardware.interconnect import (
    BandwidthCurve,
    EthernetFabric,
    FabricSpec,
    InfinibandFabric,
    SharedMemoryFabric,
)
from repro.hardware.node import Node, NodeSpec
from repro.hardware.storage import FilesystemSpec, LUSTRE_VAYU, NFS_DCC, NFS_EC2
from repro.hardware.topology import ClusterTopology

__all__ = [
    "BandwidthCurve",
    "ClusterTopology",
    "CoreSpec",
    "CpuSpec",
    "EthernetFabric",
    "FabricSpec",
    "FilesystemSpec",
    "InfinibandFabric",
    "LUSTRE_VAYU",
    "NFS_DCC",
    "NFS_EC2",
    "Node",
    "NodeSpec",
    "SharedMemoryFabric",
    "SocketSpec",
]
