"""CPU performance models.

The model is a two-parameter roofline per core: an effective flop rate
(clock x effective flops/cycle) and a share of the socket memory
bandwidth.  "Effective flops/cycle" is a *sustained* figure for the
workload mix in this study (CFD kernels, sparse solvers), not the SIMD
peak — the calibration notes in :mod:`repro.platforms` explain the values
chosen for each machine.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True, slots=True)
class CoreSpec:
    """One CPU core.

    Parameters
    ----------
    clock_hz:
        Core clock frequency.
    flops_per_cycle:
        Sustained double-precision flops retired per cycle for the
        workload family under study (calibration constant).
    sse4:
        Whether the core implements SSE4.  The paper's packaging workflow
        hit exactly this pitfall: binaries built with SSE4 enabled on
        Vayu would not run on hosts lacking it, so the flag participates
        in the :mod:`repro.cloud.packaging` compatibility check.
    """

    clock_hz: float
    flops_per_cycle: float = 1.0
    sse4: bool = True

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.flops_per_cycle <= 0:
            raise ConfigError(f"invalid CoreSpec: {self}")

    @property
    def flop_rate(self) -> float:
        """Sustained flop/s of one core with no memory or SMT pressure."""
        return self.clock_hz * self.flops_per_cycle


@dataclasses.dataclass(frozen=True, slots=True)
class SocketSpec:
    """One CPU socket: cores plus the shared cache and memory channel.

    ``mem_bw`` is the *sustained* socket memory bandwidth (bytes/s) —
    stream-like, shared by all ranks resident on the socket.
    """

    cores: int
    core: CoreSpec
    l2_cache_bytes: int
    mem_bw: float

    def __post_init__(self) -> None:
        if self.cores < 1 or self.l2_cache_bytes <= 0 or self.mem_bw <= 0:
            raise ConfigError(f"invalid SocketSpec: {self}")


@dataclasses.dataclass(frozen=True, slots=True)
class CpuSpec:
    """A whole CPU package complement for one node.

    Parameters
    ----------
    model:
        Marketing name, echoed in Table-I style reports.
    sockets / socket:
        Socket count and per-socket description.
    smt:
        Hardware threads per core.  ``smt=2`` with
        ``smt_enabled=True`` doubles the *schedulable* slots but SMT
        siblings share the core pipeline: the aggregate throughput of a
        2-way SMT core is ``smt_yield`` x one thread, so each of two
        co-resident threads runs at ``smt_yield / 2`` of a full core.
    """

    model: str
    sockets: int
    socket: SocketSpec
    smt: int = 2
    smt_enabled: bool = False
    smt_yield: float = 1.25

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.smt < 1:
            raise ConfigError(f"invalid CpuSpec: {self}")
        if not (1.0 <= self.smt_yield <= float(self.smt)):
            raise ConfigError(
                f"smt_yield must lie in [1, smt]={self.smt}, got {self.smt_yield}"
            )

    @property
    def physical_cores(self) -> int:
        """Physical cores on the node."""
        return self.sockets * self.socket.cores

    @property
    def schedulable_slots(self) -> int:
        """Hardware threads the OS (or hypervisor) exposes as 'cores'."""
        if self.smt_enabled:
            return self.physical_cores * self.smt
        return self.physical_cores

    @property
    def total_mem_bw(self) -> float:
        """Aggregate sustained memory bandwidth across all sockets."""
        return self.sockets * self.socket.mem_bw

    def core_throughput_factor(self, ranks_on_node: int) -> float:
        """Per-rank pipeline-throughput factor for ``ranks_on_node`` ranks.

        Below the physical core count every rank gets a full core
        (factor 1).  Beyond it, SMT sharing kicks in: with ``r`` ranks on
        ``c`` physical cores, total node throughput interpolates from
        ``c`` (at ``r = c``) towards ``c * smt_yield`` (at ``r = c*smt``),
        so each rank gets ``throughput / r`` of a core.  This is what
        makes the EC2 cluster's 16-"core" nodes lose per-rank speed past
        8 ranks (paper section V-B, Fig 4 and the EC2 vs EC2-4 UM runs).
        """
        if ranks_on_node < 1:
            raise ConfigError(f"ranks_on_node must be >= 1, got {ranks_on_node}")
        c = self.physical_cores
        if ranks_on_node <= c:
            return 1.0
        slots = self.schedulable_slots
        if ranks_on_node > slots:
            # Oversubscription beyond hardware threads: pure timesharing.
            node_throughput = c * self.smt_yield if self.smt_enabled else c
            return node_throughput / ranks_on_node
        # Linear interpolation of aggregate throughput between c and
        # c * smt_yield as SMT siblings fill up.
        frac = (ranks_on_node - c) / (slots - c)
        node_throughput = c + (c * self.smt_yield - c) * frac
        return node_throughput / ranks_on_node
