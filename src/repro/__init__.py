"""repro — a cross-platform HPC/cloud performance-study framework.

A full reproduction of Strazdins, Cai, Atif & Antony, *"Scientific
Application Performance on HPC, Private and Public Cloud Resources: A
Case Study Using Climate, Cardiac Model Codes and the NPB Benchmark
Suite"* (IPDPSW 2012), built on a deterministic discrete-event
performance simulator (the paper's three platforms are not available,
so they are modelled — see DESIGN.md for the substitution argument).

Package map
-----------
=====================  ====================================================
:mod:`repro.sim`        discrete-event engine
:mod:`repro.hardware`   CPU / fabric / filesystem models
:mod:`repro.virt`       hypervisors (ESX, Xen), OS noise, VM images
:mod:`repro.platforms`  the calibrated Vayu / DCC / EC2 platforms
:mod:`repro.smpi`       simulated MPI runtime (mpi4py-style API)
:mod:`repro.ipm`        IPM-style monitoring and reports
:mod:`repro.osu`        OSU micro-benchmarks
:mod:`repro.npb`        NPB 3.3 skeletons + real numeric kernels
:mod:`repro.apps`       MetUM and Chaste application models
:mod:`repro.cloud`      EC2 / StarCluster / packaging / pricing
:mod:`repro.faults`     deterministic fault injection + resilience
:mod:`repro.sched`      ANUPBS scheduler + cloudburst policy
:mod:`repro.arrivef`    ARRIVE-F profiling / prediction / relocation
:mod:`repro.core`       the study API (scaling studies, comparisons)
:mod:`repro.harness`    per-figure/table experiment registry
=====================  ====================================================
"""

from repro.core import PlatformComparison, ScalingStudy
from repro.faults import FaultSchedule
from repro.platforms import DCC, EC2, VAYU, get_platform
from repro.smpi import run_program

__version__ = "1.0.0"

__all__ = [
    "DCC",
    "EC2",
    "FaultSchedule",
    "PlatformComparison",
    "ScalingStudy",
    "VAYU",
    "__version__",
    "get_platform",
    "run_program",
]
