"""Legacy setup shim.

The environment this project targets may lack the ``wheel`` package, which
PEP 660 editable installs require; keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``develop`` path.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
