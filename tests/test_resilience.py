"""Tests for the network-resilience primitives.

Backoff determinism (same seed/token → same schedule), the circuit
breaker's closed/open/half-open lifecycle under an injected clock, and
``retry_call``'s contract: bounded attempts, breaker accounting, fast
refusal while open, and non-transport exceptions passing straight
through.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigError,
    StoreUnavailableError,
    UnavailableError,
)
from repro.harness.resilience import (
    CircuitBreaker,
    RetryPolicy,
    connect_with_retry,
    retry_call,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_ladder_is_bounded_and_deterministic(self):
        policy = RetryPolicy(attempts=6, base_delay=0.1, max_delay=0.4,
                             jitter=0.5, seed=7)
        once = policy.delays("endpoint-a")
        again = policy.delays("endpoint-a")
        assert once == again  # pure function of (policy, token)
        assert len(once) == 5  # one delay per retry, none after the last
        # Jitter shaves at most `jitter` off each rung, never adds.
        raw = [0.1, 0.2, 0.4, 0.4, 0.4]
        for got, ceiling in zip(once, raw):
            assert ceiling * 0.5 <= got <= ceiling

    def test_token_and_seed_move_the_jitter(self):
        policy = RetryPolicy(attempts=4, jitter=0.5, seed=1)
        other_seed = RetryPolicy(attempts=4, jitter=0.5, seed=2)
        assert policy.delays("a") != policy.delays("b")
        assert policy.delays("a") != other_seed.delays("a")

    def test_zero_jitter_is_the_raw_ladder(self):
        policy = RetryPolicy(attempts=4, base_delay=0.05, max_delay=10.0,
                             jitter=0.0)
        assert policy.delays("x") == [0.05, 0.1, 0.2]

    @pytest.mark.parametrize("kwargs", [
        {"attempts": 0},
        {"base_delay": -1.0},
        {"base_delay": 2.0, "max_delay": 1.0},
        {"jitter": 1.5},
        {"deadline": 0.0},
    ])
    def test_rejects_bad_bounds(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker("ep", threshold=3, cooldown=5.0, clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"  # not yet: threshold is 3
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened == 1
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # failures were not consecutive

    def test_half_open_probe_single_flight_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 10.0  # cooldown elapsed
        assert breaker.state == "half-open"
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # concurrent callers wait it out
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_for_a_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        assert breaker.opened == 2
        clock.now = 19.0
        assert not breaker.allow()  # fresh cooldown from the probe failure
        clock.now = 20.0
        assert breaker.allow()

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(cooldown=0.0)


# ---------------------------------------------------------------------------
# retry_call
# ---------------------------------------------------------------------------

class TestRetryCall:
    def test_retries_then_succeeds(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionRefusedError("not yet")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.0)
        assert retry_call(flaky, policy=policy, token="t",
                          sleep=slept.append) == "ok"
        assert len(calls) == 3
        assert slept == [0.1, 0.2]  # only the failed attempts back off

    def test_exhausted_attempts_raise_unavailable_with_cause(self):
        def dead():
            raise ConnectionRefusedError("nope")

        policy = RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(UnavailableError) as err:
            retry_call(dead, policy=policy, token="ep", sleep=lambda s: None)
        assert isinstance(err.value.__cause__, ConnectionRefusedError)
        assert "3 attempt(s)" in str(err.value)

    def test_breaker_accounting_and_fast_refusal(self):
        clock = FakeClock()
        breaker = CircuitBreaker("ep", threshold=4, cooldown=60.0, clock=clock)
        policy = RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0)

        def dead():
            raise ConnectionResetError("gone")

        with pytest.raises(UnavailableError):
            retry_call(dead, policy=policy, breaker=breaker,
                       sleep=lambda s: None)
        with pytest.raises(UnavailableError):
            retry_call(dead, policy=policy, breaker=breaker,
                       sleep=lambda s: None)
        assert breaker.state == "open"  # 4 consecutive failures across calls

        calls = []
        with pytest.raises(CircuitOpenError):
            retry_call(lambda: calls.append(1), policy=policy,
                       breaker=breaker, sleep=lambda s: None)
        assert calls == []  # refused without touching the "network"

    def test_success_closes_the_loop_via_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker("ep", threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        policy = RetryPolicy(attempts=1)
        assert retry_call(lambda: "ok", policy=policy, breaker=breaker,
                          sleep=lambda s: None) == "ok"
        assert breaker.state == "closed"

    def test_non_transport_exceptions_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("a bug, not a flaky wire")

        with pytest.raises(ValueError):
            retry_call(broken, policy=RetryPolicy(attempts=5),
                       sleep=lambda s: None)
        assert len(calls) == 1

    def test_error_hierarchy(self):
        # Degradation code catches UnavailableError once for all three.
        assert issubclass(CircuitOpenError, UnavailableError)
        assert issubclass(StoreUnavailableError, UnavailableError)


# ---------------------------------------------------------------------------
# connect_with_retry
# ---------------------------------------------------------------------------

class TestConnectWithRetry:
    def test_connects_after_listener_appears(self):
        # The coordinator/worker startup race in miniature: grab a port,
        # close it (nothing listening), and only start listening after
        # the first attempt has already failed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        listener = socket.socket()
        attempts = []

        def open_listener_late(attempt, exc):
            attempts.append(attempt)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)

        policy = RetryPolicy(attempts=4, base_delay=0.0, jitter=0.0,
                             deadline=2.0)
        sock = connect_with_retry("127.0.0.1", port, policy=policy,
                                  sleep=lambda s: None,
                                  on_retry=open_listener_late)
        try:
            assert attempts == [1]  # failed once, then the retry connected
        finally:
            sock.close()
            listener.close()

    def test_refused_forever_raises_unavailable(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        policy = RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0,
                             deadline=0.5)
        with pytest.raises(UnavailableError):
            connect_with_retry("127.0.0.1", port, policy=policy,
                               sleep=lambda s: None)
