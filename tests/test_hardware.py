"""Unit tests for CPU, fabric, node, topology and storage models."""

import pytest

from repro.errors import ConfigError
from repro.hardware import (
    BandwidthCurve,
    ClusterTopology,
    CoreSpec,
    CpuSpec,
    EthernetFabric,
    FabricSpec,
    InfinibandFabric,
    LUSTRE_VAYU,
    NFS_DCC,
    Node,
    NodeSpec,
    SharedMemoryFabric,
    SocketSpec,
)
from repro.hardware.storage import FilesystemSpec
from repro.sim import Engine


def _cpu(smt_enabled=False, smt_yield=1.25):
    core = CoreSpec(clock_hz=2.93e9, flops_per_cycle=1.0)
    socket = SocketSpec(cores=4, core=core, l2_cache_bytes=8 << 20, mem_bw=16e9)
    return CpuSpec(model="test", sockets=2, socket=socket, smt=2,
                   smt_enabled=smt_enabled, smt_yield=smt_yield)


class TestCpuSpec:
    def test_core_flop_rate(self):
        core = CoreSpec(clock_hz=2e9, flops_per_cycle=2.0)
        assert core.flop_rate == pytest.approx(4e9)

    def test_invalid_core_rejected(self):
        with pytest.raises(ConfigError):
            CoreSpec(clock_hz=-1)

    def test_physical_vs_schedulable(self):
        assert _cpu(False).schedulable_slots == 8
        assert _cpu(True).schedulable_slots == 16

    def test_throughput_full_core_below_capacity(self):
        cpu = _cpu(True)
        for r in (1, 4, 8):
            assert cpu.core_throughput_factor(r) == pytest.approx(1.0)

    def test_smt_throughput_at_full_subscription(self):
        cpu = _cpu(True, smt_yield=1.25)
        # 16 ranks on 8 cores: node throughput 8*1.25 => per-rank 0.625.
        assert cpu.core_throughput_factor(16) == pytest.approx(0.625)

    def test_smt_interpolation_monotone_decreasing(self):
        cpu = _cpu(True)
        factors = [cpu.core_throughput_factor(r) for r in range(8, 17)]
        assert all(a >= b for a, b in zip(factors, factors[1:]))

    def test_timesharing_beyond_slots(self):
        cpu = _cpu(False)
        # 16 ranks on 8 physical cores without SMT: everyone halves.
        assert cpu.core_throughput_factor(16) == pytest.approx(0.5)

    def test_invalid_rank_count(self):
        with pytest.raises(ConfigError):
            _cpu().core_throughput_factor(0)

    def test_invalid_smt_yield(self):
        with pytest.raises(ConfigError):
            _cpu(smt_yield=3.0)


class TestBandwidthCurve:
    def test_half_power_point(self):
        c = BandwidthCurve(peak=1e9, n_half=4096)
        assert c.at(4096) == pytest.approx(0.5e9)

    def test_monotone_without_decline(self):
        c = BandwidthCurve(peak=1e9, n_half=4096)
        sizes = [2**k for k in range(4, 24)]
        vals = [c.at(n) for n in sizes]
        assert all(a <= b for a, b in zip(vals, vals[1:]))

    def test_decline_reduces_large_messages(self):
        plain = BandwidthCurve(peak=1e9, n_half=1024)
        drop = BandwidthCurve(peak=1e9, n_half=1024, decline=0.3)
        assert drop.at(16 << 20) < plain.at(16 << 20)
        assert drop.at(16 << 20) > 0.69e9  # bounded by (1 - decline)

    def test_zero_size_returns_peak(self):
        c = BandwidthCurve(peak=1e9)
        assert c.at(0) == 1e9

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            BandwidthCurve(peak=0)
        with pytest.raises(ConfigError):
            BandwidthCurve(peak=1e9, decline=1.0)


class TestFabricSpec:
    def test_oneway_time_components(self):
        f = FabricSpec("t", latency=10e-6, bw=BandwidthCurve(peak=1e9, n_half=1),
                       o_send=1e-6, o_recv=2e-6)
        n = 1_000_000
        expected = 1e-6 + 10e-6 + n / f.bw.at(n) + 2e-6
        assert f.oneway_time(n) == pytest.approx(expected)

    def test_rendezvous_threshold(self):
        f = InfinibandFabric()
        assert not f.uses_rendezvous(12 * 1024)
        assert f.uses_rendezvous(12 * 1024 + 1)

    def test_factories_produce_distinct_regimes(self):
        ib = InfinibandFabric()
        eth = EthernetFabric("gige", latency=25e-6, peak_bw=196e6)
        shm = SharedMemoryFabric()
        assert ib.oneway_time(1) < eth.oneway_time(1)
        assert shm.oneway_time(1) < ib.oneway_time(8192)
        assert ib.bw.peak > eth.bw.peak

    def test_zero_bytes_serialize_free(self):
        assert InfinibandFabric().serialize_time(0) == 0.0


class TestNodePlacement:
    def _node(self):
        eng = Engine()
        return Node(eng, NodeSpec(name="n", cpu=_cpu(), dram_bytes=24 << 30), 0)

    def test_least_loaded_socket_round_robin(self):
        node = self._node()
        sockets = [node.place_rank(r) for r in range(4)]
        assert sockets == [0, 1, 0, 1]
        assert node.socket_load == [2, 2]

    def test_spans_sockets(self):
        node = self._node()
        node.place_rank(0, socket=0)
        assert not node.spans_sockets()
        node.place_rank(1, socket=1)
        assert node.spans_sockets()

    def test_explicit_socket_out_of_range(self):
        node = self._node()
        with pytest.raises(ConfigError):
            node.place_rank(0, socket=5)


class TestTopology:
    def _topology(self, nranks_per_node=2, nnodes=2):
        eng = Engine()
        spec = NodeSpec(name="n", cpu=_cpu(), dram_bytes=24 << 30)
        nodes = [Node(eng, spec, i) for i in range(nnodes)]
        topo = ClusterTopology(nodes, InfinibandFabric(), SharedMemoryFabric())
        rank = 0
        for node in nodes:
            for _ in range(nranks_per_node):
                node.place_rank(rank)
                topo.register(rank, node)
                rank += 1
        return topo

    def test_same_node_detection(self):
        topo = self._topology()
        assert topo.same_node(0, 1)
        assert not topo.same_node(0, 2)

    def test_fabric_selection(self):
        topo = self._topology()
        assert topo.fabric_between(0, 1) is topo.shm
        assert topo.fabric_between(0, 3) is topo.fabric

    def test_cross_socket_detection(self):
        topo = self._topology()
        # ranks 0,1 placed round-robin onto sockets 0,1 of node 0.
        assert topo.cross_socket(0, 1)
        assert not topo.cross_socket(0, 2)  # different nodes

    def test_aggregate_queries(self):
        topo = self._topology(nranks_per_node=3, nnodes=2)
        ranks = list(range(6))
        assert topo.occupied_nodes(ranks) == 2
        assert topo.max_ranks_per_node(ranks) == 3
        assert topo.occupied_nodes([0, 1]) == 1

    def test_double_register_rejected(self):
        topo = self._topology()
        with pytest.raises(ConfigError):
            topo.register(0, topo.nodes[1])

    def test_unplaced_rank_rejected(self):
        topo = self._topology()
        with pytest.raises(ConfigError):
            topo.node_of(99)


class TestFilesystem:
    def test_lustre_matches_paper_io_time(self):
        # MetUM 1.6 GB dump read: 4.5 s on Vayu (Table III).
        t = LUSTRE_VAYU.read_time(1.6e9, concurrent_clients=1)
        assert t == pytest.approx(4.5, rel=0.1)

    def test_nfs_dcc_matches_paper_io_time(self):
        # 37.8 s on DCC (Table III).
        t = NFS_DCC.read_time(1.6e9, concurrent_clients=1)
        assert t == pytest.approx(37.8, rel=0.1)

    def test_aggregate_bandwidth_shared(self):
        fs = FilesystemSpec(name="t", client_bw=100e6, aggregate_bw=200e6)
        solo = fs.read_time(1e9, 1)
        crowded = fs.read_time(1e9, 8)
        assert crowded > solo
        assert crowded == pytest.approx(2e-3 + 1e9 / 25e6)

    def test_write_penalty(self):
        fs = FilesystemSpec(name="t", client_bw=100e6, aggregate_bw=1e9,
                            write_penalty=3.0)
        assert fs.write_time(1e9) > fs.read_time(1e9) * 2.5

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            NFS_DCC.read_time(-1)
