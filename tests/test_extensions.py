"""Tests for the extension surface: collective OSU benchmarks, scan/exscan,
Cartesian helpers, IPM export, NPB class D and kernel validation."""

import json

import pytest

from repro.errors import ConfigError, MpiError
from repro.ipm.export import load_json, monitor_to_dict, totals_by_call, write_json
from repro.npb import get_benchmark, problem
from repro.npb.kernels.validate import render_verifications, run_all_verifications
from repro.osu import osu_allreduce, osu_alltoall
from repro.platforms import DCC, EC2, VAYU
from repro.smpi import run_program


class TestOsuCollectives:
    def test_allreduce_latency_platform_ordering(self):
        sizes = [8]
        lat = {
            s.name: osu_allreduce(s, 16, sizes, iterations=20)[8]
            for s in (DCC, EC2, VAYU)
        }
        assert lat["Vayu"] < lat["EC2"] < lat["DCC"]

    def test_allreduce_monotone_in_size(self):
        out = osu_allreduce(VAYU, 8, [8, 4096, 1 << 20], iterations=10)
        assert out[8] <= out[4096] <= out[1 << 20]

    def test_alltoall_grows_with_pairs_size(self):
        out = osu_alltoall(DCC, 16, [64, 65536], iterations=5)
        assert out[65536] > out[64]

    def test_needs_two_ranks(self):
        with pytest.raises(ConfigError):
            osu_allreduce(VAYU, 1)


class TestScanExscan:
    def test_scan_prefix_sums(self):
        def prog(comm):
            v = yield from comm.scan(8, value=comm.rank + 1)
            return v

        res = run_program(VAYU, 4, prog)
        assert res.rank_results == [1, 3, 6, 10]

    def test_exscan_excludes_self(self):
        def prog(comm):
            v = yield from comm.exscan(8, value=comm.rank + 1)
            return v

        res = run_program(VAYU, 4, prog)
        assert res.rank_results == [None, 1, 3, 6]

    def test_scan_custom_op(self):
        def prog(comm):
            v = yield from comm.scan(8, value=comm.rank, op=max)
            return v

        res = run_program(VAYU, 3, prog)
        assert res.rank_results == [0, 1, 2]


class TestCartesianHelpers:
    def _with_comm(self, size, fn):
        def prog(comm):
            yield from comm.barrier()
            return fn(comm)

        return run_program(VAYU, size, prog).rank_results

    def test_coords_roundtrip(self):
        def check(comm):
            dims = (2, 4)
            coords = comm.cart_coords(dims)
            return comm.cart_rank(dims, coords) == comm.rank

        assert all(self._with_comm(8, check))

    def test_row_major_layout(self):
        def coords(comm):
            return comm.cart_coords((2, 4))

        res = self._with_comm(8, coords)
        assert res[0] == (0, 0)
        assert res[3] == (0, 3)
        assert res[4] == (1, 0)

    def test_shift_periodic(self):
        def shift(comm):
            return comm.cart_shift((2, 4), axis=1)

        res = self._with_comm(8, shift)
        assert res[0] == (3, 1)   # wraps west to rank 3
        assert res[3] == (2, 0)   # wraps east to rank 0

    def test_bad_dims_rejected(self):
        def bad(comm):
            yield from comm.barrier()
            comm.cart_coords((3, 3))

        with pytest.raises(MpiError):
            run_program(VAYU, 8, bad)


class TestIpmExport:
    def _monitor(self):
        def prog(comm):
            with comm.region("work"):
                yield from comm.compute(flops=1e7)
                yield from comm.allreduce(8, value=1.0)
            return None

        return run_program(VAYU, 4, prog).monitor

    def test_dict_structure(self):
        data = monitor_to_dict(self._monitor())
        assert data["nprocs"] == 4
        assert "work" in data["regions"]
        rank0 = data["ranks"][0]
        calls = rank0["regions"]["work"]["calls"]
        assert calls[0]["call"] == "MPI_Allreduce" and calls[0]["bytes"] == 8

    def test_json_roundtrip(self, tmp_path):
        mon = self._monitor()
        path = tmp_path / "ipm.json"
        write_json(mon, path)
        loaded = load_json(path)
        assert loaded["nprocs"] == 4
        json.dumps(loaded)  # fully serialisable

    def test_totals_by_call(self):
        totals = totals_by_call(self._monitor())
        assert set(totals) == {"MPI_Allreduce"}
        assert totals["MPI_Allreduce"] > 0


class TestClassD:
    def test_class_d_defined_for_all(self):
        from repro.npb import BENCHMARK_NAMES

        for name in BENCHMARK_NAMES:
            cfg = problem(name, "D")
            assert cfg.total_flops > problem(name, "C").total_flops

    def test_class_d_runs(self):
        r = get_benchmark("cg", klass="D").run(VAYU, 64, seed=1)
        assert r.label() == "CG.D.64"
        assert r.projected_time > get_benchmark("cg").run(VAYU, 64, seed=1).projected_time

    def test_ft_class_d_slab_limit(self):
        bench = get_benchmark("ft", klass="D")
        assert bench.valid_nprocs(1024)  # nz = 1024 slabs


class TestKernelValidation:
    def test_all_verifications_pass(self):
        records = run_all_verifications(quick=True)
        assert len(records) == 7
        assert all(r.passed for r in records)

    def test_render_contains_status(self):
        text = render_verifications(run_all_verifications(quick=True))
        assert "PASS" in text and "FAIL" not in text

    def test_cli_verify(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 0
        assert "acceptance_rate" in capsys.readouterr().out
