"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hardware.cpu import CoreSpec, CpuSpec, SocketSpec
from repro.hardware.interconnect import BandwidthCurve, FabricSpec
from repro.hardware.storage import FilesystemSpec
from repro.npb.base import NpbBenchmark, intra_fraction
from repro.npb.kernels.randnpb import MOD, NpbRandom
from repro.sim import Engine, Resource, Store
from repro.smpi.collectives.algorithms import (
    CollectiveContext,
    allgather_time,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

sizes = st.integers(min_value=0, max_value=1 << 26)
pos_sizes = st.integers(min_value=1, max_value=1 << 26)
procs = st.integers(min_value=1, max_value=256)


@st.composite
def fabrics(draw):
    peak = draw(st.floats(min_value=1e7, max_value=1e10))
    n_half = draw(st.floats(min_value=64.0, max_value=65536.0))
    latency = draw(st.floats(min_value=1e-7, max_value=1e-3))
    return FabricSpec(
        name="f",
        latency=latency,
        bw=BandwidthCurve(peak=peak, n_half=n_half),
        o_send=draw(st.floats(min_value=0.0, max_value=1e-5)),
        o_recv=draw(st.floats(min_value=0.0, max_value=1e-5)),
        eager_threshold=draw(st.integers(min_value=0, max_value=1 << 20)),
    )


@st.composite
def contexts(draw):
    p = draw(st.integers(min_value=1, max_value=128))
    nnodes = draw(st.integers(min_value=1, max_value=p))
    rpn = max(1, -(-p // nnodes))
    rpn = min(rpn, p)
    return CollectiveContext(
        p=p, nnodes=nnodes, rpn=rpn,
        net=draw(fabrics()),
        shm=draw(fabrics()),
        extra_latency=draw(st.floats(min_value=0.0, max_value=1e-3)),
    )


# ---------------------------------------------------------------------------
# Fabric / bandwidth-curve invariants
# ---------------------------------------------------------------------------


class TestFabricProperties:
    @given(fabrics(), sizes)
    def test_oneway_time_nonnegative_and_finite(self, fabric, n):
        t = fabric.oneway_time(n)
        assert t >= 0.0 and math.isfinite(t)

    @given(fabrics(), pos_sizes, pos_sizes)
    def test_oneway_monotone_in_size(self, fabric, a, b):
        lo, hi = sorted((a, b))
        assert fabric.oneway_time(lo) <= fabric.oneway_time(hi) + 1e-15

    @given(st.floats(min_value=1e6, max_value=1e11), pos_sizes)
    def test_effective_bw_bounded_by_peak(self, peak, n):
        curve = BandwidthCurve(peak=peak, n_half=1024)
        assert 0 < curve.at(n) <= peak

    @given(pos_sizes)
    def test_decline_curve_bounded_below(self, n):
        curve = BandwidthCurve(peak=1e9, n_half=1024, decline=0.4)
        assert curve.at(n) >= 1e9 * 0.59 * n / (n + 1024)


# ---------------------------------------------------------------------------
# Collective cost-model invariants
# ---------------------------------------------------------------------------


class TestCollectiveProperties:
    @given(contexts(), sizes)
    @settings(max_examples=60)
    def test_all_costs_nonnegative_finite(self, ctx, n):
        for fn in (allreduce_time, allgather_time, alltoall_time, bcast_time):
            t = fn(ctx, float(n))
            assert t >= 0.0 and math.isfinite(t)
        assert barrier_time(ctx) >= 0.0

    @given(contexts(), pos_sizes, pos_sizes)
    @settings(max_examples=60)
    def test_alltoall_monotone_in_volume(self, ctx, a, b):
        lo, hi = sorted((a, b))
        assert alltoall_time(ctx, lo) <= alltoall_time(ctx, hi) + 1e-12

    @given(contexts())
    @settings(max_examples=60)
    def test_single_rank_free(self, ctx):
        solo = CollectiveContext(p=1, nnodes=1, rpn=1, net=ctx.net, shm=ctx.shm)
        assert allreduce_time(solo, 4096.0) == 0.0
        assert alltoall_time(solo, 4096.0) == 0.0

    @given(contexts(), st.floats(min_value=0, max_value=1e-3))
    @settings(max_examples=60)
    def test_extra_latency_never_speeds_up(self, ctx, extra):
        slower = CollectiveContext(
            p=ctx.p, nnodes=ctx.nnodes, rpn=ctx.rpn, net=ctx.net, shm=ctx.shm,
            extra_latency=ctx.extra_latency + extra,
        )
        assert allreduce_time(slower, 8.0) >= allreduce_time(ctx, 8.0) - 1e-15


# ---------------------------------------------------------------------------
# CPU model invariants
# ---------------------------------------------------------------------------


@st.composite
def cpus(draw):
    cores = draw(st.integers(min_value=1, max_value=16))
    smt = draw(st.integers(min_value=1, max_value=4))
    smt_yield = draw(st.floats(min_value=1.0, max_value=float(smt)))
    return CpuSpec(
        model="m",
        sockets=draw(st.integers(min_value=1, max_value=4)),
        socket=SocketSpec(
            cores=cores,
            core=CoreSpec(clock_hz=2e9),
            l2_cache_bytes=8 << 20,
            mem_bw=1e10,
        ),
        smt=smt,
        smt_enabled=draw(st.booleans()),
        smt_yield=smt_yield,
    )


class TestCpuProperties:
    @given(cpus(), st.integers(min_value=1, max_value=512))
    def test_throughput_factor_in_unit_interval(self, cpu, ranks):
        f = cpu.core_throughput_factor(ranks)
        assert 0.0 < f <= 1.0

    @given(cpus(), st.integers(min_value=1, max_value=255))
    def test_throughput_factor_monotone_nonincreasing(self, cpu, ranks):
        assert cpu.core_throughput_factor(ranks + 1) <= cpu.core_throughput_factor(
            ranks
        ) + 1e-12

    @given(cpus(), st.integers(min_value=1, max_value=512))
    def test_node_throughput_never_exceeds_smt_ceiling(self, cpu, ranks):
        total = ranks * cpu.core_throughput_factor(ranks)
        ceiling = cpu.physical_cores * (cpu.smt_yield if cpu.smt_enabled else 1.0)
        assert total <= ceiling + 1e-9


# ---------------------------------------------------------------------------
# Filesystem invariants
# ---------------------------------------------------------------------------


class TestFilesystemProperties:
    @given(
        st.floats(min_value=1e6, max_value=1e9),
        st.floats(min_value=1e6, max_value=1e10),
        st.floats(min_value=0, max_value=1e9),
        st.integers(min_value=1, max_value=512),
    )
    def test_read_time_positive_and_monotone_in_clients(self, cbw, abw, n, clients):
        fs = FilesystemSpec(name="f", client_bw=cbw, aggregate_bw=abw)
        t1 = fs.read_time(n, 1)
        tc = fs.read_time(n, clients)
        assert tc >= t1 - 1e-12
        assert fs.write_time(n, clients) >= tc - 1e-12


# ---------------------------------------------------------------------------
# NPB helpers
# ---------------------------------------------------------------------------


class TestNpbHelperProperties:
    @given(st.integers(min_value=0, max_value=9))
    def test_grid2d_product(self, k):
        p = 1 << k
        px, py = NpbBenchmark.grid2d(p)
        assert px * py == p and px <= py <= 2 * px * 2

    @given(st.integers(min_value=0, max_value=9))
    def test_grid3d_product_and_balance(self, k):
        p = 1 << k
        a, b, c = NpbBenchmark.grid3d(p)
        assert a * b * c == p
        assert c <= 2 * a * 2  # near-cubic: max/min factor bounded

    @given(st.integers(min_value=1, max_value=100000),
           st.integers(min_value=1, max_value=64))
    def test_split_extent_partition(self, n, parts):
        chunks = [NpbBenchmark.split_extent(n, parts, i) for i in range(parts)]
        assert sum(chunks) == n
        assert max(chunks) - min(chunks) <= 1

    @given(st.integers(min_value=0, max_value=64), st.integers(min_value=1, max_value=64))
    def test_intra_fraction_unit_interval(self, stride, rpn):
        f = intra_fraction(stride, rpn)
        assert 0.0 <= f <= 1.0


# ---------------------------------------------------------------------------
# NPB LCG properties
# ---------------------------------------------------------------------------


class TestLcgProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_skip_composes(self, a, b):
        one = NpbRandom(314159265)
        one.skip(a)
        one.skip(b)
        two = NpbRandom(314159265)
        two.skip(a + b)
        assert one.state == two.state

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=30)
    def test_draw_count_matches(self, n):
        vals = NpbRandom().randlc(n)
        assert vals.shape == (n,)
        assert np.all((vals > 0) & (vals < 1))

    @given(st.integers(min_value=0, max_value=MOD - 1).filter(lambda s: s % 2 == 1 and s > 0))
    @settings(max_examples=30)
    def test_state_stays_in_modulus(self, seed):
        rng = NpbRandom(seed)
        rng.randlc(100)
        assert 0 < rng.state < MOD


# ---------------------------------------------------------------------------
# Engine invariants
# ---------------------------------------------------------------------------


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                    max_size=30))
    @settings(max_examples=50)
    def test_dispatch_order_is_time_sorted(self, delays):
        eng = Engine()
        seen = []
        for d in delays:
            eng.timeout(d).add_callback(lambda _e, d=d: seen.append(eng.now))
        eng.run()
        assert seen == sorted(seen)
        assert eng.now == pytest.approx(max(delays))

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=30)
    def test_resource_never_overcommits(self, capacity, workers):
        eng = Engine()
        res = Resource(eng, capacity=capacity)
        peak = 0

        def worker():
            nonlocal peak
            yield res.request()
            peak = max(peak, res.in_use)
            yield eng.timeout(1.0)
            res.release()

        for _ in range(workers):
            eng.process(worker())
        eng.run()
        assert peak <= capacity
        assert res.in_use == 0

    @given(st.lists(st.integers(), min_size=0, max_size=40))
    @settings(max_examples=50)
    def test_store_is_fifo(self, items):
        eng = Engine()
        store = Store(eng)
        for item in items:
            store.put(item)
        got = []

        def getter():
            for _ in items:
                got.append((yield store.get()))

        eng.process(getter())
        eng.run()
        assert got == items
