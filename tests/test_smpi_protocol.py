"""Deeper protocol tests for the simulated MPI wire layer."""

import pytest

from repro.errors import ConfigError
from repro.platforms import DCC, VAYU
from repro.smpi import MpiWorld, Placement, run_program
from repro.smpi.mapping import ranks_per_node_used
from repro.smpi.message import Message, Request


def two_nodes():
    return Placement(num_nodes=2, ranks_per_node=1)


class TestRequests:
    def test_request_complete_transitions(self):
        captured = {}

        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(1, 64)
                captured["before"] = req.complete
                yield from comm.wait(req)
                captured["after"] = req.complete
            else:
                yield from comm.recv(0)
            return None

        run_program(VAYU, 2, prog, placement=two_nodes())
        assert captured == {"before": False, "after": True}

    def test_message_metadata(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1, 256, tag=7, payload=b"x")
                return None
            msg = yield from comm.recv(0)
            return (msg.source, msg.dest, msg.tag, msg.nbytes, msg.arrival_time > 0)

        res = run_program(VAYU, 2, prog, placement=two_nodes())
        assert res.rank_results[1] == (0, 1, 7, 256, True)

    def test_wait_returns_message_for_recv(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1, 32, payload="p")
                return None
            req = comm.irecv(0)
            msg = yield from comm.wait(req)
            return isinstance(msg, Message) and msg.payload == "p"

        res = run_program(VAYU, 2, prog)
        assert res.rank_results[1] is True


class TestRendezvousProtocol:
    def test_out_of_order_rendezvous_and_eager(self):
        """An eager message posted after a rendezvous one can still be
        received first (tag matching, not arrival order)."""
        big = VAYU.fabric.eager_threshold * 2

        def prog(comm):
            if comm.rank == 0:
                big_req = comm.isend(1, big, tag=1, payload="big")
                small_req = comm.isend(1, 16, tag=2, payload="small")
                yield from comm.waitall([big_req, small_req])
                return None
            small = yield from comm.recv(0, tag=2)
            bigm = yield from comm.recv(0, tag=1)
            return (small.payload, bigm.payload)

        res = run_program(VAYU, 2, prog, placement=two_nodes())
        assert res.rank_results[1] == ("small", "big")

    def test_two_rendezvous_sends_same_peer(self):
        big = VAYU.fabric.eager_threshold * 4

        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.isend(1, big, tag=i) for i in range(2)]
                yield from comm.waitall(reqs)
                return None
            first = yield from comm.recv(0, tag=0)
            second = yield from comm.recv(0, tag=1)
            return (first.nbytes, second.nbytes)

        res = run_program(VAYU, 2, prog, placement=two_nodes())
        assert res.rank_results[1] == (big, big)

    def test_intranode_large_message_pays_handshake(self):
        big = VAYU.shm.eager_threshold * 8
        small = 256

        def timed(nbytes):
            def prog(comm):
                t0 = comm.wtime()
                if comm.rank == 0:
                    yield from comm.send(1, nbytes)
                else:
                    yield from comm.recv(0)
                return comm.wtime() - t0

            return run_program(VAYU, 2, prog).rank_results[1]

        assert timed(big) > timed(small)


class TestAccountingSemantics:
    def test_comm_time_includes_collective_wait(self):
        """IPM semantics: a rank that arrives early charges the wait."""

        def prog(comm):
            if comm.rank == 0:
                yield from comm.compute(flops=1e9)  # straggler
            yield from comm.barrier()
            return None

        res = run_program(VAYU, 4, prog)
        waiter = res.monitor[1].total
        straggler = res.monitor[0].total
        assert waiter.mpi_time > 0.1
        assert straggler.mpi_time < waiter.mpi_time / 10

    def test_isend_overhead_not_charged_to_caller_region(self):
        def prog(comm):
            with comm.region("post"):
                req = comm.isend(1, 128) if comm.rank == 0 else comm.irecv(0)
            with comm.region("wait"):
                yield from comm.wait(req)
            return None

        res = run_program(VAYU, 2, prog, placement=two_nodes())
        post = res.monitor[1].regions["post"]
        wait = res.monitor[1].regions["wait"]
        assert post.mpi_time == 0.0
        assert wait.mpi_time > 0.0

    def test_io_charged_to_io_not_comm(self):
        def prog(comm):
            yield from comm.io_read(1e6)
            return None

        res = run_program(DCC, 2, prog)
        total = res.monitor[0].total
        assert total.io_time > 0 and total.mpi_time == 0


class TestMappingHelpers:
    def test_ranks_per_node_used(self):
        world = MpiWorld(VAYU, 12, placement=Placement(strategy="block"))
        assert ranks_per_node_used(world.platform) == 8

    def test_world_size_one_allowed(self):
        def prog(comm):
            yield from comm.barrier()
            v = yield from comm.allreduce(8, value=3)
            return v

        res = run_program(VAYU, 1, prog)
        assert res.rank_results == [3]

    def test_invalid_world_size(self):
        with pytest.raises(ConfigError):
            MpiWorld(VAYU, 0)
