"""Tests for the CLI and the batch runner/export."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.harness.runner import run_batch


class TestRunner:
    def test_batch_runs_selection(self):
        batch = run_batch(["tab1", "fig3"], quick=True, seed=1)
        assert set(batch.outputs) == {"tab1", "fig3"}
        assert "NPB class B serial" in batch.render()

    def test_unknown_ids_rejected(self):
        with pytest.raises(ConfigError):
            run_batch(["nope"])

    def test_comparison_rows_have_deltas(self):
        batch = run_batch(["fig3"], quick=True, seed=1)
        rows = batch.comparison_rows()
        assert rows and all("delta_pct" in r for r in rows)

    def test_json_and_csv_export(self, tmp_path):
        batch = run_batch(["fig3"], quick=True, seed=1)
        jpath = tmp_path / "out.json"
        cpath = tmp_path / "out.csv"
        tpath = tmp_path / "out.txt"
        batch.write_json(jpath)
        batch.write_csv(cpath)
        batch.write_text(tpath)
        data = json.loads(jpath.read_text())
        assert data[0]["experiment"] == "fig3"
        assert cpath.read_text().startswith("experiment,metric")
        assert "fig3" in tpath.read_text()

    def test_progress_callback(self):
        seen = []
        run_batch(["tab1"], progress=seen.append)
        assert seen == ["tab1"]


class TestCli:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        assert "Vayu" in capsys.readouterr().out

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "tab3" in out

    def test_npb_point(self, capsys):
        assert main(["npb", "ep", "vayu", "4"]) == 0
        out = capsys.readouterr().out
        assert "EP.B.4" in out and "projected" in out

    def test_run_exports(self, tmp_path, capsys):
        jpath = tmp_path / "c.json"
        assert main(["run", "tab1", "fig3", "--json", str(jpath)]) == 0
        assert jpath.exists()
        assert "fig3" in capsys.readouterr().out

    def test_error_reported_cleanly(self, capsys):
        # Fatal errors exit 1 (0 = all ok, 3 = partial supervised sweep).
        assert main(["run", "bogus"]) == 1
        assert "error:" in capsys.readouterr().err
